"""Ablations of the design choices DESIGN.md calls out.

Not experiments from the paper — these quantify how much each mechanism
contributes inside this reproduction:

- how much of click-fastclassifier's win comes from the BPF+-style tree
  optimization versus from compilation alone;
- what adjacent-classifier combination buys;
- how much of the Base router's forwarding cost is branch
  misprediction (the simple_action shared-dispatch effect);
- what the devirtualizer's exclusion list costs when the hottest
  element is excluded.
"""

import pytest

from paper_targets import emit, table
from repro.classifier.ipfilter import compile_filter_rules
from repro.classifier.optimize import optimize
from repro.configs.firewall import dns5_packet, firewall_rule_strings
from repro.sim import cost
from repro.sim.testbed import Testbed


def test_tree_optimization_ablation(benchmark):
    """Raw tree vs BPF+-optimized tree on the §4 firewall."""
    raw = compile_filter_rules(firewall_rule_strings())
    optimized = benchmark(lambda: optimize(raw))
    packet = dns5_packet()
    rows = [
        ("nodes", len(raw.exprs), len(optimized.exprs)),
        ("DNS-5 steps", raw.steps(packet), optimized.steps(packet)),
    ]
    emit("ablation_tree_optimization", table(["metric", "raw", "optimized"], rows))
    assert len(optimized.exprs) < 0.7 * len(raw.exprs)
    assert optimized.steps(packet) < 0.6 * raw.steps(packet)
    assert optimized.match(packet) == raw.match(packet)


def test_adjacent_combination_ablation(benchmark):
    """Two chained classifiers: combined vs separate."""
    from repro.core.fastclassifier import fastclassifier
    from repro.lang.build import parse_graph

    text = (
        "f :: Idle; f -> a; a :: Classifier(12/0800, -);"
        "b :: Classifier(14/45, -);"
        "a [0] -> b; a [1] -> Discard; b [0] -> Discard; b [1] -> Discard;"
    )
    combined = benchmark(lambda: fastclassifier(parse_graph(text), combine=True))
    separate = fastclassifier(parse_graph(text), combine=False)
    combined_classifiers = [
        d for d in combined.elements.values() if "FastClassifier" in d.class_name
    ]
    separate_classifiers = [
        d for d in separate.elements.values() if "FastClassifier" in d.class_name
    ]
    rows = [
        ("classifier elements", len(combined_classifiers), len(separate_classifiers)),
        ("total elements", len(combined.elements), len(separate.elements)),
    ]
    emit("ablation_adjacent_combination", table(["metric", "combined", "separate"], rows))
    assert len(combined_classifiers) == 1
    assert len(separate_classifiers) == 2


def test_branch_prediction_ablation(benchmark):
    """Re-measure Base with the misprediction penalty removed: the
    difference is the predictor's share of the forwarding path."""
    testbed = Testbed(2)
    normal = benchmark.pedantic(
        lambda: testbed.measure_cpu("base", packets=400), rounds=1, iterations=1
    )
    saved = cost.CYCLES_VIRTUAL_CALL_MISPREDICTED
    try:
        cost.CYCLES_VIRTUAL_CALL_MISPREDICTED = cost.CYCLES_VIRTUAL_CALL_PREDICTED
        oracle = testbed.measure_cpu("base", packets=400)
    finally:
        cost.CYCLES_VIRTUAL_CALL_MISPREDICTED = saved
    delta = normal.forwarding_ns - oracle.forwarding_ns
    rows = [
        ("modelled BTB", "%.0f" % normal.forwarding_ns),
        ("oracle predictor", "%.0f" % oracle.forwarding_ns),
        ("misprediction share", "%.0f ns (%.0f%%)" % (delta, 100 * delta / normal.forwarding_ns)),
    ]
    emit("ablation_branch_prediction", table(["configuration", "fwd path (ns)"], rows))
    # §3 argues mispredictions are "significant in percentage terms".
    assert 0.05 <= delta / normal.forwarding_ns <= 0.20


def test_devirtualize_exclusion_ablation(benchmark):
    """Excluding the per-interface paths' elements from devirtualization
    gives back part of DV's win — quantify one exclusion."""
    from repro.core.devirtualize import devirtualize
    from repro.core.toolchain import load_config, save_config

    testbed = Testbed(2)

    def measure(exclude):
        graph = load_config(save_config(devirtualize(testbed.base_graph(), exclude=exclude)))
        meter_report = None
        from repro.sim.cpu import CycleMeter
        from repro.elements.devices import PollDevice

        meter = CycleMeter()
        router, devices = testbed.build_router(graph, meter=meter)
        frames = testbed.evaluation_frames(400)
        for device, frame in frames:
            devices[device].receive_frame(frame)
        router.run_tasks(400 // PollDevice.BURST + 16)
        forwarded = sum(len(d.transmitted) for d in devices.values())
        return meter.report(forwarded, clock_mhz=testbed.platform.clock_mhz)

    full = benchmark.pedantic(lambda: measure(()), rounds=1, iterations=1)
    # Exclude every element on the input-side chains (Paint/Strip/... are
    # anonymous; exclude by discovered name).
    graph = testbed.base_graph()
    excluded = [d.name for d in graph.elements.values() if d.class_name == "CheckIPHeader"]
    partial = measure(excluded)
    rows = [
        ("full devirtualization", "%.0f" % full.forwarding_ns),
        ("CheckIPHeader excluded", "%.0f" % partial.forwarding_ns),
    ]
    emit("ablation_devirtualize_exclusion", table(["configuration", "fwd path (ns)"], rows))
    assert partial.forwarding_ns > full.forwarding_ns
