"""Wall-clock benchmark: the tiered adaptive engine vs. the static fast path.

The adaptive engine's bet is that real traffic is skewed — a router
mostly forwards to a few destinations, a firewall mostly passes one
flow — so recompiling the hot chains around the observed profile
(hot-arm-first classifiers, constant-folded route and ARP results
behind guards) beats the profile-blind static fast path.  This
benchmark measures that bet on 90/10 skewed traffic:

- ``iprouter``: the Figure 10 IP router; 90% of packets arrive on eth0
  for the host behind eth1, 10% flow the other way — one hot route arm.
- ``firewall``: the §4 screened-subnet firewall; 90% of packets match
  rule DNS-5, 10% are UDP queries taking a different filter path.

Modes:

- ``reference``: the per-port interpreter, the semantic oracle;
- ``fast``: the static compiled chains (``ExecutionProfile.fast()``);
- ``adaptive_cold``: the tiered engine from packet zero — profiling
  overhead and the tier-2 recompile land inside the measurement;
- ``adaptive_warm``: the same engine after the hot chains promoted.

Results go to ``BENCH_adaptive.json``; ``adaptive_warm_over_fast`` is
the headline number (the warmed engine must beat the static fast path).
Runs standalone (no pytest):

    python benchmarks/bench_adaptive.py              # full run
    python benchmarks/bench_adaptive.py --quick      # CI smoke
    python benchmarks/bench_adaptive.py --check      # validate output

Methodology matches bench_fastpath.py: best-of-N fresh-router runs,
each fast mode checked byte-for-byte against the reference first.
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.configs.firewall import dns5_packet, firewall_graph  # noqa: E402
from repro.elements.devices import LoopbackDevice, PollDevice  # noqa: E402
from repro.elements.runtime import Router  # noqa: E402
from repro.net.headers import IP_PROTO_UDP, IPHeader, build_ether_udp_packet  # noqa: E402
from repro.runtime import ExecutionProfile  # noqa: E402
from repro.runtime.adaptive import AdaptiveConfig  # noqa: E402
from repro.sim.testbed import HOST_ETHERS, Testbed, host_ip  # noqa: E402

MODES = ["reference", "fast", "adaptive_cold", "adaptive_warm"]
SKEW = 10  # 1 in SKEW packets takes the cold path

# Promotion thresholds low enough that the warmup burst (and most of a
# cold run) reaches tier 2, but high enough to exercise real profiling.
ADAPTIVE = dict(threshold=512, sample=16, min_samples=64)


def build_iprouter(mode, adaptive_config=None):
    testbed = Testbed(2)
    router, devices = testbed.build_router(
        testbed.variant_graph("base"), mode=mode, adaptive_config=adaptive_config
    )

    def frames(count):
        # 90% of the traffic flows eth0 -> host 1: one route arm and one
        # ARP entry dominate, which is what tier 2 speculates on.
        result = []
        for seq in range(count):
            rx = 1 if seq % SKEW == SKEW - 1 else 0
            tx = (rx + 1) % 2
            result.append(
                (
                    testbed.interfaces[rx].device,
                    build_ether_udp_packet(
                        HOST_ETHERS[rx],
                        testbed.interfaces[rx].ether,
                        host_ip(rx),
                        host_ip(tx),
                        src_port=1000 + seq % 7,
                        dst_port=2000,
                        payload=b"\x00" * 14,
                        identification=seq & 0xFFFF,
                    ),
                )
            )
        return result

    return router, devices, frames


def _dns_query_packet():
    """A UDP DNS query — matches a different firewall rule than the
    DNS-5 reply, so 10% of the traffic leaves the speculated hot arm."""
    ip = IPHeader(src="10.0.0.99", dst="170.0.0.2", protocol=IP_PROTO_UDP, total_length=36)
    udp = (
        (3456).to_bytes(2, "big")
        + (53).to_bytes(2, "big")
        + (16).to_bytes(2, "big")
        + bytes(2)
        + bytes(8)
    )
    return ip.pack() + udp


def build_firewall(mode, adaptive_config=None):
    devices = {
        "eth0": LoopbackDevice("eth0", tx_capacity=1 << 30),
        "eth1": LoopbackDevice("eth1", tx_capacity=1 << 30),
    }
    if mode == "adaptive":
        profile = ExecutionProfile.tiered(config=adaptive_config)
    elif mode == "fdd":
        profile = ExecutionProfile.fdd(config=adaptive_config)
    else:
        profile = ExecutionProfile(mode=mode)
    router = Router(firewall_graph(), devices=devices, profile=profile)
    ether = b"\x00\x50\x56\x00\x00\x01" + b"\x00\x50\x56\x00\x00\x02" + b"\x08\x00"
    hot = ether + dns5_packet()
    cold = ether + _dns_query_packet()

    def frames(count):
        return [
            ("eth0", cold if seq % SKEW == SKEW - 1 else hot) for seq in range(count)
        ]

    return router, devices, frames


CONFIGS = {"iprouter": build_iprouter, "firewall": build_firewall}


def build(builder, mode):
    if mode.startswith("adaptive"):
        return builder("adaptive", adaptive_config=AdaptiveConfig(**ADAPTIVE))
    return builder(mode)


def drive(router, devices, frames, count):
    for device_name, frame in frames(count):
        devices[device_name].receive_frame(frame)
    router.run_tasks(count // PollDevice.BURST + 16)


def transmitted(devices):
    return {name: list(device.transmitted) for name, device in devices.items()}


def measure(builder, mode, packets, reps, warmup=256):
    """Best-of-``reps`` pps on fresh routers.  ``adaptive_cold`` keeps
    the warmup tiny so profiling and the tier-2 recompile are inside the
    timed window; ``adaptive_warm`` warms until the hot chains promote."""
    if mode == "adaptive_warm":
        warmup = max(warmup, 4096)
    best = None
    promoted = None
    for _ in range(reps):
        router, devices, frames = build(builder, mode)
        drive(router, devices, frames, warmup)
        for device_name, frame in frames(packets):
            devices[device_name].receive_frame(frame)
        start = time.perf_counter()
        router.run_tasks(packets // PollDevice.BURST + 16)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
        if router.adaptive is not None:
            chains = router.adaptive.profile_report().as_dict()["chains"]
            promoted = sum(1 for chain in chains.values() if chain["tier"] == 2)
    return packets / best, promoted


def check_equivalence(builder, packets=512):
    """Every mode must forward byte-identical traffic.  The adaptive
    run uses eager promotion thresholds so the check crosses the tier-1
    -> tier-2 transition, not just tier 1."""
    router, devices, frames = builder("reference")
    drive(router, devices, frames, packets)
    reference = transmitted(devices)
    for mode in ("fast", "adaptive"):
        if mode == "adaptive":
            router, devices, frames = builder(
                "adaptive",
                adaptive_config=AdaptiveConfig(threshold=64, sample=4, min_samples=16),
            )
        else:
            router, devices, frames = builder(mode)
        drive(router, devices, frames, packets)
        if transmitted(devices) != reference:
            raise AssertionError("%s output differs from reference" % mode)


def run(packets, reps, quick):
    results = {"quick": quick, "packets": packets, "reps": reps, "skew": SKEW,
               "adaptive_config": dict(ADAPTIVE), "configs": {}}
    for config_name, builder in CONFIGS.items():
        check_equivalence(builder)
        entry = {}
        for mode in MODES:
            pps, promoted = measure(builder, mode, packets, reps)
            entry[mode] = {
                "pps": round(pps, 1),
                "ns_per_packet": round(1e9 / pps, 1),
            }
            if promoted is not None:
                entry[mode]["promoted_chains"] = promoted
        baseline = entry["reference"]["pps"]
        for stats in entry.values():
            stats["speedup"] = round(stats["pps"] / baseline, 3)
        entry["adaptive_warm_over_fast"] = round(
            entry["adaptive_warm"]["pps"] / entry["fast"]["pps"], 3
        )
        results["configs"][config_name] = entry
        for mode in MODES:
            stats = entry[mode]
            print(
                "%-10s %-14s %10.0f pps  %8.0f ns/pkt  %5.2fx"
                % (config_name, mode, stats["pps"], stats["ns_per_packet"], stats["speedup"])
            )
        print(
            "%-10s warm adaptive over static fast: %.2fx"
            % (config_name, entry["adaptive_warm_over_fast"])
        )
    return results


def check_file(path):
    """Validate an existing results file: well-formed, adaptive chains
    promoted, and the warmed engine not slower than the static fast
    path (the CI smoke criterion)."""
    with open(path) as fh:
        results = json.load(fh)
    configs = results["configs"]
    if not configs:
        raise SystemExit("%s: no configs measured" % path)
    for config_name, entry in configs.items():
        for mode in MODES:
            stats = entry[mode]
            if not (stats["pps"] > 0 and stats["ns_per_packet"] > 0):
                raise SystemExit("%s: %s/%s has bogus numbers" % (path, config_name, mode))
        if entry["adaptive_warm"].get("promoted_chains", 0) < 1:
            raise SystemExit("%s: %s warmed without promoting any chain" % (path, config_name))
        if entry["adaptive_warm_over_fast"] < 1.0:
            raise SystemExit(
                "%s: %s warmed adaptive is slower than the static fast path (%.2fx)"
                % (path, config_name, entry["adaptive_warm_over_fast"])
            )
    print("%s: ok (%s)" % (path, ", ".join(sorted(configs))))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small run for CI smoke")
    parser.add_argument("--reps", type=int, default=None, help="repetitions per mode")
    parser.add_argument("--packets", type=int, default=None, help="timed packets per rep")
    parser.add_argument(
        "--out",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_adaptive.json"),
        help="result file (default: repo-root BENCH_adaptive.json)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate an existing --out file instead of measuring",
    )
    args = parser.parse_args(argv)
    if args.check:
        check_file(args.out)
        return
    packets = args.packets or (2000 if args.quick else 20000)
    reps = args.reps or (2 if args.quick else 3)
    results = run(packets, reps, args.quick)
    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print("wrote %s" % os.path.abspath(args.out))


if __name__ == "__main__":
    main()
