"""§3's virtual-call / branch-predictor analysis.

Paper: "when correctly predicted, a virtual function call takes about 7
cycles, comparable to a conventional function call.  Incorrectly
predicted calls, however, take dozens of cycles" — and Figure 2's
configuration (two same-class elements transferring to different-class
targets through one shared call site) defeats the predictor whenever
packets alternate between them.
"""

import pytest

from paper_targets import emit, table
from repro.elements import Router
from repro.lang.build import parse_graph
from repro.net.packet import Packet
from repro.sim import cost
from repro.sim.cpu import CycleMeter

# Figure 2's shape: two ARPQueriers (same class, one call site) whose
# packets go to different downstream classes.
FIGURE2 = """
f1 :: Idle; f2 :: Idle; g1 :: Idle; g2 :: Idle;
arpq1 :: ARPQuerier(1.0.0.1, 00:00:C0:AA:00:00);
arpq2 :: ARPQuerier(2.0.0.1, 00:00:C0:BB:00:01);
f1 -> arpq1; g1 -> [1] arpq1;
f2 -> arpq2; g2 -> [1] arpq2;
arpq1 -> q :: Queue -> u :: Unqueue -> Discard;
arpq2 -> Counter -> q2 :: Queue -> u2 :: Unqueue -> Discard;
"""


def run_alternating(alternate):
    """Meter Figure 2 under alternating or batched traffic."""
    meter = CycleMeter()
    router = Router(parse_graph(FIGURE2), meter=meter)
    router["arpq1"].insert("1.0.0.9", "00:20:6F:00:00:01")
    router["arpq2"].insert("2.0.0.9", "00:20:6F:00:00:02")

    def packet(dst):
        from repro.net.headers import build_udp_packet

        p = Packet(build_udp_packet("9.9.9.9", dst, payload=b"\x00" * 14))
        p.set_dest_ip_anno(dst)
        return p

    n = 200
    if alternate:
        order = [("arpq1", "1.0.0.9"), ("arpq2", "2.0.0.9")] * (n // 2)
    else:
        order = [("arpq1", "1.0.0.9")] * (n // 2) + [("arpq2", "2.0.0.9")] * (n // 2)
    for element, dst in order:
        router.push_packet(element, 0, packet(dst))
    return meter


def test_figure2_alternation_defeats_the_predictor(benchmark):
    alternating = benchmark.pedantic(lambda: run_alternating(True), rounds=3, iterations=1)
    batched = run_alternating(False)
    rows = [
        ("alternating flows", alternating.btb.misses, alternating.btb.hits),
        ("batched flows", batched.btb.misses, batched.btb.hits),
    ]
    text = table(["traffic", "BTB misses", "BTB hits"], rows)
    text += (
        "\n\npredicted call: %d cycles; mispredicted: %d cycles; direct: %d"
        % (
            cost.CYCLES_VIRTUAL_CALL_PREDICTED,
            cost.CYCLES_VIRTUAL_CALL_MISPREDICTED,
            cost.CYCLES_DIRECT_CALL,
        )
    )
    emit("branch_predictor", text)

    # Alternating packets mispredict the shared ARPQuerier call site on
    # nearly every transfer; batched traffic only misses at batch turns.
    assert alternating.btb.misses > 5 * batched.btb.misses
    assert alternating.totals.forwarding > batched.totals.forwarding


def test_call_cost_constants_match_paper(benchmark):
    benchmark(lambda: cost.CYCLES_VIRTUAL_CALL_PREDICTED)
    assert cost.CYCLES_VIRTUAL_CALL_PREDICTED == 7
    assert 24 <= cost.CYCLES_VIRTUAL_CALL_MISPREDICTED <= 48  # "dozens"
    assert cost.CYCLES_DIRECT_CALL < cost.CYCLES_VIRTUAL_CALL_PREDICTED


def test_misprediction_share_of_forwarding_path(benchmark):
    """§3: at ~7 cycles per transfer, 16 elements put ~9% of the
    forwarding path in call overhead; mispredictions push it higher."""
    from repro.sim.testbed import Testbed

    report = benchmark.pedantic(
        lambda: Testbed(2).measure_cpu("base", packets=300), rounds=1, iterations=1
    )
    call_cycles = report.transfers_per_packet * cost.CYCLES_VIRTUAL_CALL_PREDICTED
    path_cycles = report.forwarding_ns * 0.7  # ns -> cycles at 700 MHz
    share = call_cycles / path_cycles
    assert 0.05 <= share <= 0.15  # "9% of this router's forwarding path cost"
