"""Control-plane churn benchmark: incremental updates vs. full hot-swaps.

Drives the Figure 10 IP router under sustained traffic while a seeded
schedule of control-plane updates lands — route-table rewrites and
ACL (classifier) rule changes, the churn a real router sees from BGP
flaps and policy pushes.  The same schedule is installed twice:

- ``incremental``: through :class:`repro.control.ControlPlane`, which
  patches pure-data deltas into the live compiled tables in place;
- ``full_swap``: through the transactional hot-swap, rebuilding the
  router for every update (chains untouched by the delta are spliced
  from the old compile, but the build/transfer/commit cost is paid in
  full).

Correctness is part of the measurement, not a side check: both runs
must transmit byte-identical traffic, and every frame fed must come out
the other side — zero packets dropped by any of the installs.  A short
churn trace is then chaos-verified (seeded fault plan, all four
execution modes, supervised) through the differential oracle.

Results go to ``BENCH_churn.json``.  Runs standalone (no pytest):

    python benchmarks/bench_churn.py              # full run
    python benchmarks/bench_churn.py --quick      # CI smoke
    python benchmarks/bench_churn.py --check      # validate output

The headline numbers: incremental updates per second (thousands — each
patch is table staging plus an adaptive deopt, no recompile), p99
incremental update latency, and the speedup over full hot-swaps
(acceptance floor: 5x)."""

import argparse
import json
import os
import random
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.control import ControlPlane  # noqa: E402
from repro.elements.devices import PollDevice  # noqa: E402
from repro.elements.hotswap import hotswap  # noqa: E402
from repro.lang.lexer import split_config_args  # noqa: E402
from repro.runtime import ExecutionProfile  # noqa: E402
from repro.sim.testbed import Testbed  # noqa: E402

SEED = 0xC1C0
SPEEDUP_FLOOR = 5.0

# Traffic between updates: enough to keep queues and the fast path hot,
# small enough that install latency dominates the loop.
FRAMES_PER_UPDATE = 8


def build(profile=None):
    testbed = Testbed(2)
    router, devices = testbed.build_router(
        testbed.variant_graph("base"), profile=profile or ExecutionProfile.fast()
    )
    return testbed, router, devices


def update_schedule(graph, count, rng):
    """``count`` pure-data updates: ``(element, kind, config_args)``.

    Route updates shuffle the table and append never-matching /24
    routes (longest-prefix semantics keep the evaluation traffic's
    forwarding identical); ACL updates swap the two ARP rule arms of a
    classifier (the evaluation traffic is IP, so its path is
    unchanged).  Behaviour-preserving by construction — that is what
    makes the zero-drop assertion meaningful under churn."""
    routes = split_config_args(graph.elements["rt"].config)
    ports = sorted({route.split()[-1] for route in routes})
    schedule = []
    for index in range(count):
        if index % 2 == 0:
            table = list(routes)
            rng.shuffle(table)
            table.append(
                "203.0.%d.0/24 %s" % (rng.randrange(1, 250), rng.choice(ports))
            )
            schedule.append(("rt", "routes", table))
        else:
            name = "c%d" % (index // 2 % 2)
            rules = split_config_args(graph.elements[name].config)
            # Swap the ARP-request/ARP-reply arms; IP traffic still
            # lands on the same output port either way.
            rules[0], rules[1] = rules[1], rules[0]
            if rng.random() < 0.5:
                rules[0], rules[1] = rules[1], rules[0]
            schedule.append((name, "rules", rules))
    return schedule


def drive(router, devices, frames):
    for device_name, frame in frames:
        devices[device_name].receive_frame(frame)
    router.run_tasks(len(frames) // PollDevice.BURST + 4)


def drain(router, devices):
    router.run_tasks(64)
    return {
        name: [bytes(f) for f in device.transmitted]
        for name, device in sorted(devices.items())
    }


def run_incremental(updates):
    """The same schedule through ControlPlane; per-update latencies."""
    testbed, router, devices = build()
    plane = ControlPlane(router)
    schedule = update_schedule(router.graph, updates, random.Random(SEED))
    traffic = testbed.evaluation_frames(FRAMES_PER_UPDATE * updates)
    latencies = []
    kinds = {}
    fed = 0
    for index, (name, kind, args) in enumerate(schedule):
        chunk = traffic[index * FRAMES_PER_UPDATE : (index + 1) * FRAMES_PER_UPDATE]
        drive(plane.router, devices, chunk)
        fed += len(chunk)
        start = time.perf_counter()
        if kind == "routes":
            report = plane.update_routes(name, args)
        else:
            report = plane.update_rules(name, args)
        latencies.append(time.perf_counter() - start)
        kinds[report.kind] = kinds.get(report.kind, 0) + 1
    wire = drain(plane.router, devices)
    return latencies, kinds, fed, wire


def run_full_swap(updates):
    """The same schedule, each update installed as a transactional
    hot-swap of the whole configuration."""
    testbed, router, devices = build()
    schedule = update_schedule(router.graph, updates, random.Random(SEED))
    traffic = testbed.evaluation_frames(FRAMES_PER_UPDATE * updates)
    latencies = []
    reused = recompiled = 0
    fed = 0
    for index, (name, kind, args) in enumerate(schedule):
        chunk = traffic[index * FRAMES_PER_UPDATE : (index + 1) * FRAMES_PER_UPDATE]
        drive(router, devices, chunk)
        fed += len(chunk)
        new_graph = router.graph.copy()
        new_graph.elements[name].config = ", ".join(args)
        start = time.perf_counter()
        result = hotswap(router, new_graph)
        latencies.append(time.perf_counter() - start)
        router = result.router
        reused += result.report.chains_reused
        recompiled += result.report.chains_recompiled
    wire = drain(router, devices)
    return latencies, {"reused": reused, "recompiled": recompiled}, fed, wire


def percentile(latencies, fraction):
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(fraction * (len(ordered) - 1) + 0.5))]


def stats(latencies):
    mean = sum(latencies) / len(latencies)
    return {
        "updates": len(latencies),
        "updates_per_second": round(1.0 / mean, 1),
        "mean_ms": round(mean * 1e3, 4),
        "p50_ms": round(percentile(latencies, 0.50) * 1e3, 4),
        "p99_ms": round(percentile(latencies, 0.99) * 1e3, 4),
        "max_ms": round(max(latencies) * 1e3, 4),
    }


def chaos_verify(events=32):
    """A short churn trace (traffic + interleaved incremental updates)
    through the chaos harness: every execution mode, supervised, under
    a seeded fault plan, must agree on the wire and never crash."""
    from repro.verify.chaos import compare_chaos, seeded_plan
    from repro.verify.genconfig import stock_cases

    cases = {case["name"]: case for case in stock_cases(events_count=events)}
    case = cases["iprouter-mtu1500"]
    graph_events = list(case["events"])
    testbed, router, _devices = build()
    schedule = update_schedule(router.graph, 2, random.Random(SEED + 1))
    from repro.core.toolchain import save_config

    for index, (name, kind, args) in enumerate(schedule):
        graph = router.graph.copy()
        graph.elements[name].config = ", ".join(args)
        position = (index + 1) * len(graph_events) // (len(schedule) + 1)
        graph_events.insert(position, ["update", save_config(graph)])
    churn_case = dict(case, events=graph_events, name="churn-chaos", optimize=False)
    plan = seeded_plan(churn_case, 7)
    result = compare_chaos(churn_case, plan)
    return {
        "status": result["status"],
        "modes": sorted(result.get("reports", {})),
        "failures": result.get("failures", []),
    }


def run(updates, quick):
    latencies, kinds, fed, wire = run_incremental(updates)
    swap_latencies, chain_totals, swap_fed, swap_wire = run_full_swap(updates)

    transmitted = sum(len(frames) for frames in wire.values())
    swap_transmitted = sum(len(frames) for frames in swap_wire.values())
    zero_drop = transmitted == fed and swap_transmitted == swap_fed
    wire_identical = wire == swap_wire
    speedup = (sum(swap_latencies) / len(swap_latencies)) / (
        sum(latencies) / len(latencies)
    )
    chaos = chaos_verify()

    results = {
        "quick": quick,
        "seed": SEED,
        "frames_per_update": FRAMES_PER_UPDATE,
        "incremental": dict(stats(latencies), kinds=kinds),
        "full_swap": dict(stats(swap_latencies), chains=chain_totals),
        "speedup": round(speedup, 2),
        "packets_fed": fed,
        "packets_transmitted": transmitted,
        "zero_dropped_by_swap": zero_drop,
        "wire_identical_to_full_rebuild": wire_identical,
        "chaos": chaos,
    }
    print(
        "incremental: %(updates_per_second).0f updates/s, p99 %(p99_ms).3f ms"
        % results["incremental"]
    )
    print(
        "full swap:   %(updates_per_second).1f updates/s, p99 %(p99_ms).1f ms"
        % results["full_swap"]
    )
    print(
        "speedup %.1fx; zero-drop=%s; wire-identical=%s; chaos=%s"
        % (speedup, zero_drop, wire_identical, chaos["status"])
    )
    return results


def check_file(path):
    """Validate an existing results file: the acceptance criteria the
    CI gate holds (speedup floor, zero drops, identical wire, chaos)."""
    with open(path) as fh:
        results = json.load(fh)
    failures = []
    if results["speedup"] < SPEEDUP_FLOOR:
        failures.append(
            "incremental speedup %.2fx is below the %.0fx floor"
            % (results["speedup"], SPEEDUP_FLOOR)
        )
    if not results["zero_dropped_by_swap"]:
        failures.append("packets were dropped by an install")
    if not results["wire_identical_to_full_rebuild"]:
        failures.append("incremental wire output differs from the full rebuild's")
    if results["chaos"]["status"] != "ok":
        failures.append("chaos verification failed: %s" % results["chaos"]["failures"])
    if results["incremental"]["updates_per_second"] < 1000:
        failures.append(
            "incremental rate %.0f updates/s is not control-plane grade"
            % results["incremental"]["updates_per_second"]
        )
    if failures:
        raise SystemExit("%s: churn regression:\n  %s" % (path, "\n  ".join(failures)))
    print(
        "%s: ok (%.0f updates/s incremental, %.1fx over full swaps)"
        % (path, results["incremental"]["updates_per_second"], results["speedup"])
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small run for CI smoke")
    parser.add_argument("--updates", type=int, default=None, help="updates per run")
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_churn.json"
        ),
        help="result file (default: repo-root BENCH_churn.json)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate an existing --out file instead of measuring",
    )
    args = parser.parse_args(argv)
    if args.check:
        check_file(args.out)
        return
    updates = args.updates or (24 if args.quick else 120)
    results = run(updates, args.quick)
    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print("wrote %s" % os.path.abspath(args.out))


if __name__ == "__main__":
    main()
