"""Figure 3: the code click-fastclassifier generates.

Paper: for ``Classifier(12/0800, -)`` the generated packet-handling
function is a single masked comparison against an inlined constant with
two exits — versus the generic classifier's memory-walking loop
(Figure 3a).  This bench regenerates the code, checks its shape, and
times the whole tool pipeline (harness extraction through code
generation), which the paper notes "runs quickly".
"""

import pytest

from paper_targets import emit
from repro.core.fastclassifier import fastclassifier
from repro.core.toolchain import load_config, save_config
from repro.lang.archive import read_archive
from repro.lang.build import parse_graph

CONFIG = """
feeder :: Idle; feeder -> c;
c :: Classifier(12/0800, -);
c [0] -> Discard; c [1] -> Discard;
"""


def generated_source():
    result = fastclassifier(parse_graph(CONFIG))
    members = read_archive(save_config(result))
    (code_member,) = [m for m in members if m.endswith(".py")]
    return members[code_member]


def test_figure3_generated_code(benchmark):
    source = benchmark(generated_source)
    emit("fig3_generated_code", source)

    # Shape of Figure 3b: one comparison, constants inlined, two exits.
    assert source.count("int.from_bytes") == 1
    assert "0x08000000" in source  # the ethertype constant, inlined
    assert "return 0" in source
    assert "return 1" in source
    # No tree traversal loop in the generated handler.
    assert "while" not in source


def test_tool_pipeline_round_trips(benchmark):
    def pipeline():
        text = save_config(fastclassifier(parse_graph(CONFIG)))
        return load_config(text)

    graph = benchmark(pipeline)
    assert graph.elements["c"].class_name == "FastClassifier@@c"


def test_generated_code_is_loadable_and_correct(benchmark):
    from repro.elements.runtime import compile_archive_classes

    result = fastclassifier(parse_graph(CONFIG))
    classes = benchmark(lambda: compile_archive_classes(result.archive))
    cls = classes["FastClassifier@@c"]
    element = cls("c")
    ip_frame = bytes(12) + b"\x08\x00" + bytes(46)
    arp_frame = bytes(12) + b"\x08\x06" + bytes(46)
    assert element.compiled(ip_frame) == 0
    assert element.compiled(arp_frame) == 1
