"""Wall-clock benchmark: reference interpreter vs. the compiled fast path.

Measures packets-per-second through real routers — the standards-
compliant IP router (the Figure 10 configuration) and the §4 screened-
subnet firewall — in three modes:

- ``reference``: the per-port interpreter, the semantic oracle;
- ``fast``: precompiled push/pull chains (``ExecutionProfile.fast()``);
- ``fast_batched``: the same chains with burst batching.

Results go to ``BENCH_fastpath.json`` so the perf trajectory has a
tracked baseline.  Runs standalone (no pytest):

    python benchmarks/bench_fastpath.py              # full run
    python benchmarks/bench_fastpath.py --quick      # CI smoke
    python benchmarks/bench_fastpath.py --check      # validate output

Methodology: each (config, mode) is run ``--reps`` times on a fresh
router with a warmup burst, and the best wall time is kept — the runs
are long enough to amortize scheduling noise but the machines this runs
on have frequency scaling, so best-of-N is the stable statistic.
Before timing, each fast mode is checked byte-for-byte against the
reference output on a short run.
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.configs.firewall import dns5_packet, firewall_graph  # noqa: E402
from repro.elements.devices import LoopbackDevice, PollDevice  # noqa: E402
from repro.elements.runtime import Router  # noqa: E402
from repro.runtime import ExecutionProfile  # noqa: E402
from repro.sim.testbed import Testbed  # noqa: E402

MODES = [("reference", False), ("fast", False), ("fast", True)]


def mode_key(mode, batch):
    return "fast_batched" if batch else mode


def build_iprouter(mode, batch):
    testbed = Testbed(2)
    router, devices = testbed.build_router(
        testbed.variant_graph("base"), mode=mode, batch=batch
    )
    return router, devices, testbed.evaluation_frames


def build_firewall(mode, batch):
    devices = {
        "eth0": LoopbackDevice("eth0", tx_capacity=1 << 30),
        "eth1": LoopbackDevice("eth1", tx_capacity=1 << 30),
    }
    router = Router(
        firewall_graph(),
        devices=devices,
        profile=ExecutionProfile(mode=mode, batch=batch),
    )
    frame = b"\x00\x50\x56\x00\x00\x01" + b"\x00\x50\x56\x00\x00\x02" + b"\x08\x00" + dns5_packet()

    def frames(count):
        return [("eth0", frame)] * count

    return router, devices, frames


CONFIGS = {"iprouter": build_iprouter, "firewall": build_firewall}


def drive(router, devices, frames, count):
    for device_name, frame in frames(count):
        devices[device_name].receive_frame(frame)
    router.run_tasks(count // PollDevice.BURST + 16)


def transmitted(devices):
    return {name: list(device.transmitted) for name, device in devices.items()}


def measure(build, mode, batch, packets, reps, warmup=256):
    best = None
    for _ in range(reps):
        router, devices, frames = build(mode, batch)
        drive(router, devices, frames, warmup)
        for device_name, frame in frames(packets):
            devices[device_name].receive_frame(frame)
        start = time.perf_counter()
        router.run_tasks(packets // PollDevice.BURST + 16)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return packets / best


def check_equivalence(build, packets=256):
    """Every fast mode must forward byte-identical traffic."""
    reference = None
    for mode, batch in MODES:
        router, devices, frames = build(mode, batch)
        drive(router, devices, frames, packets)
        output = transmitted(devices)
        if reference is None:
            reference = output
        elif output != reference:
            raise AssertionError(
                "%s/batch=%s output differs from reference" % (mode, batch)
            )


def run(packets, reps, quick):
    results = {"quick": quick, "packets": packets, "reps": reps, "configs": {}}
    for config_name, build in CONFIGS.items():
        check_equivalence(build)
        entry = {}
        for mode, batch in MODES:
            pps = measure(build, mode, batch, packets, reps)
            entry[mode_key(mode, batch)] = {
                "pps": round(pps, 1),
                "ns_per_packet": round(1e9 / pps, 1),
            }
        baseline = entry["reference"]["pps"]
        for key, stats in entry.items():
            stats["speedup"] = round(stats["pps"] / baseline, 3)
        results["configs"][config_name] = entry
        for key, stats in entry.items():
            print(
                "%-10s %-13s %10.0f pps  %8.0f ns/pkt  %5.2fx"
                % (config_name, key, stats["pps"], stats["ns_per_packet"], stats["speedup"])
            )
    return results


def compare_to_baseline(path, baseline_path, tolerance=0.25):
    """Compare a fresh results file against a checked-in baseline.

    Absolute pps moves with the machine, so the comparison is on the
    *speedup ratios* (each mode vs. that run's own reference): a fast
    mode whose speedup fell more than ``tolerance`` below the baseline's
    is a real fast-path regression, not a slow runner."""
    with open(path) as fh:
        fresh = json.load(fh)
    with open(baseline_path) as fh:
        baseline = json.load(fh)
    failures = []
    for config_name, base_entry in baseline["configs"].items():
        fresh_entry = fresh["configs"].get(config_name)
        if fresh_entry is None:
            failures.append("%s: missing from %s" % (config_name, path))
            continue
        for key, base_stats in base_entry.items():
            if not isinstance(base_stats, dict) or "speedup" not in base_stats:
                continue
            if base_stats["speedup"] <= 1.0:
                continue  # the reference row, or a mode with no headroom
            fresh_speedup = fresh_entry.get(key, {}).get("speedup", 0.0)
            floor = base_stats["speedup"] * (1.0 - tolerance)
            status = "ok" if fresh_speedup >= floor else "REGRESSION"
            print(
                "%-10s %-13s baseline %5.2fx  fresh %5.2fx  floor %5.2fx  %s"
                % (config_name, key, base_stats["speedup"], fresh_speedup, floor, status)
            )
            if fresh_speedup < floor:
                failures.append(
                    "%s %s: %.2fx is more than %d%% below the baseline %.2fx"
                    % (config_name, key, fresh_speedup, tolerance * 100, base_stats["speedup"])
                )
    if failures:
        raise SystemExit("fast-path regression vs %s:\n  %s" % (baseline_path, "\n  ".join(failures)))
    print("%s: within %d%% of %s" % (path, tolerance * 100, baseline_path))


def check_file(path):
    """Validate an existing results file: well-formed, and fast mode is
    not slower than the reference (the CI smoke criterion)."""
    with open(path) as fh:
        results = json.load(fh)
    configs = results["configs"]
    if not configs:
        raise SystemExit("%s: no configs measured" % path)
    for config_name, entry in configs.items():
        for key in ("reference", "fast", "fast_batched"):
            stats = entry[key]
            if not (stats["pps"] > 0 and stats["ns_per_packet"] > 0):
                raise SystemExit("%s: %s/%s has bogus numbers" % (path, config_name, key))
        for key in ("fast", "fast_batched"):
            if entry[key]["speedup"] < 1.0:
                raise SystemExit(
                    "%s: %s %s is slower than the reference interpreter (%.2fx)"
                    % (path, config_name, key, entry[key]["speedup"])
                )
    print("%s: ok (%s)" % (path, ", ".join(sorted(configs))))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small run for CI smoke")
    parser.add_argument("--reps", type=int, default=None, help="repetitions per mode")
    parser.add_argument("--packets", type=int, default=None, help="timed packets per rep")
    parser.add_argument(
        "--out",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_fastpath.json"),
        help="result file (default: repo-root BENCH_fastpath.json)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate an existing --out file instead of measuring",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="after measuring (or on an existing --out file with --check), "
        "fail if any mode's speedup fell more than 25%% below this "
        "checked-in baseline's",
    )
    args = parser.parse_args(argv)
    if args.check:
        check_file(args.out)
        if args.baseline:
            compare_to_baseline(args.out, args.baseline)
        return
    packets = args.packets or (2000 if args.quick else 20000)
    reps = args.reps or (2 if args.quick else 3)
    results = run(packets, reps, args.quick)
    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print("wrote %s" % os.path.abspath(args.out))
    if args.baseline:
        compare_to_baseline(args.out, args.baseline)


if __name__ == "__main__":
    main()
