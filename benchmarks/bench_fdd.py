"""Wall-clock benchmark: forwarding decision diagrams vs. the tiered engine.

FDD mode's bet is that per-element dispatch — even fully inlined — still
pays for every classifier twice: the compiled matcher walks the decision
tree, and the per-output chain re-tests bytes the matcher already
examined.  Compiling the whole tree *into* the chain as an ordered
decision diagram (every location materialized at most once per
root-to-leaf path, hot side as the fall-through) removes the matcher
call and the duplicate loads.  This benchmark measures that bet on the
same 90/10 skewed traffic as ``bench_adaptive.py``:

- ``iprouter``: the Figure 10 IP router — two small ethernet
  classifiers fuse into the device-to-queue chains;
- ``firewall``: the §4 screened subnet — the 17-rule IPFilter expands
  to a 107-node diagram (the node-budget stress case).

Modes:

- ``reference`` / ``fast`` / ``adaptive_warm``: the existing ladder,
  re-measured in the same session so ratios are noise-honest;
- ``fdd_cold``: the FDD engine from packet zero (diagram compile and
  tier-2 promotion inside the measurement);
- ``fdd_warm``: the FDD engine after the hot chains promoted to the
  profile-ordered tier-2 diagrams — the headline mode.

Every rep interleaves all modes on fresh routers (round-robin, best-of)
so slow machine phases hit every mode equally.  Results go to
``BENCH_fdd.json``; ``--check`` validates the relative gates (warm FDD
at least as fast as the warm adaptive engine) and, for full runs, the
recorded absolute speedups.  Runs standalone (no pytest):

    python benchmarks/bench_fdd.py              # full run
    python benchmarks/bench_fdd.py --quick      # CI smoke
    python benchmarks/bench_fdd.py --check      # validate output
"""

import argparse
import gc
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from bench_adaptive import (  # noqa: E402
    ADAPTIVE,
    CONFIGS,
    SKEW,
    drive,
    transmitted,
)
from repro.elements.devices import PollDevice  # noqa: E402
from repro.runtime.adaptive import AdaptiveConfig  # noqa: E402
from repro.runtime.fdd import FDDEngine  # noqa: E402

MODES = ["reference", "fast", "adaptive_warm", "fdd_cold", "fdd_warm"]

#: Absolute speedups over the reference interpreter the checked-in
#: results must clear — the warm adaptive engine's recorded numbers
#: (BENCH_adaptive.json), which warm FDD has to beat.  Quick/CI runs
#: check only the relative gate (machine speeds vary); full runs are
#: held to these.
GATES = {"iprouter": 3.19, "firewall": 2.82}


def build(builder, mode):
    base = mode.split("_")[0]
    if base in ("adaptive", "fdd"):
        return builder(base, adaptive_config=AdaptiveConfig(**ADAPTIVE))
    return builder(mode)


def measure_round(builder, mode, packets, warmup=256):
    """One timed run of one mode on a fresh router; returns
    ``(pps, promoted_chains, diagram_totals)``."""
    if mode.endswith("_warm"):
        warmup = max(warmup, 4096)
    router, devices, frames = build(builder, mode)
    drive(router, devices, frames, warmup)
    for device_name, frame in frames(packets):
        devices[device_name].receive_frame(frame)
    # Collect the previous rounds' dead routers now, not inside some
    # unlucky mode's timed window (the rounds interleave all modes, so
    # uncollected garbage would tax whichever mode runs last).
    gc.collect()
    start = time.perf_counter()
    router.run_tasks(packets // PollDevice.BURST + 16)
    elapsed = time.perf_counter() - start
    promoted = None
    diagrams = None
    if router.adaptive is not None:
        chains = router.adaptive.profile_report().as_dict()["chains"]
        promoted = sum(1 for chain in chains.values() if chain["tier"] == 2)
        if isinstance(router.adaptive, FDDEngine):
            diagrams = router.adaptive.diagram_report()["totals"]
    return packets / elapsed, promoted, diagrams


def measure_all(builder, packets, reps):
    """Best-of-``reps`` per mode, with the modes interleaved round-robin
    so machine-speed drift lands on every mode equally."""
    best = {}
    promoted = {}
    diagrams = {}
    for _ in range(reps):
        for mode in MODES:
            pps, chains, totals = measure_round(builder, mode, packets)
            if mode not in best or pps > best[mode]:
                best[mode] = pps
            if chains is not None:
                promoted[mode] = chains
            if totals is not None:
                diagrams[mode] = totals
    return best, promoted, diagrams


def check_equivalence(builder, packets=1024):
    """Warm FDD must forward byte-identical traffic to the reference
    interpreter, across the tier-1 -> tier-2 transition (eager
    thresholds) and a node-budget-stressing packet count."""
    router, devices, frames = builder("reference")
    drive(router, devices, frames, packets)
    reference = transmitted(devices)
    eager = AdaptiveConfig(threshold=48, sample=4, min_samples=12)
    router, devices, frames = builder("fdd", adaptive_config=eager)
    drive(router, devices, frames, packets)
    if transmitted(devices) != reference:
        raise AssertionError("fdd output differs from reference")


def run(packets, reps, quick):
    results = {"quick": quick, "packets": packets, "reps": reps, "skew": SKEW,
               "adaptive_config": dict(ADAPTIVE), "configs": {}}
    for config_name, builder in CONFIGS.items():
        check_equivalence(builder)
        best, promoted, diagrams = measure_all(builder, packets, reps)
        entry = {}
        baseline = best["reference"]
        for mode in MODES:
            entry[mode] = {
                "pps": round(best[mode], 1),
                "ns_per_packet": round(1e9 / best[mode], 1),
                "speedup": round(best[mode] / baseline, 3),
            }
            if mode in promoted:
                entry[mode]["promoted_chains"] = promoted[mode]
            if mode in diagrams:
                entry[mode]["diagrams"] = diagrams[mode]
        entry["fdd_warm_over_adaptive_warm"] = round(
            best["fdd_warm"] / best["adaptive_warm"], 3
        )
        entry["fdd_warm_over_fast"] = round(best["fdd_warm"] / best["fast"], 3)
        results["configs"][config_name] = entry
        for mode in MODES:
            stats = entry[mode]
            print(
                "%-10s %-14s %10.0f pps  %8.0f ns/pkt  %5.2fx"
                % (config_name, mode, stats["pps"], stats["ns_per_packet"],
                   stats["speedup"])
            )
        print(
            "%-10s warm fdd over warm adaptive: %.3fx"
            % (config_name, entry["fdd_warm_over_adaptive_warm"])
        )
    return results


def check_file(path):
    """Validate a results file.  Always: well-formed, chains promoted,
    diagrams compiled, and warm FDD at least as fast as the warm
    adaptive engine on the iprouter (the CI smoke gate).  Full runs
    additionally must clear the recorded absolute speedup bars."""
    with open(path) as fh:
        results = json.load(fh)
    configs = results["configs"]
    if not configs:
        raise SystemExit("%s: no configs measured" % path)
    for config_name, entry in configs.items():
        for mode in MODES:
            stats = entry[mode]
            if not (stats["pps"] > 0 and stats["ns_per_packet"] > 0):
                raise SystemExit("%s: %s/%s has bogus numbers" % (path, config_name, mode))
        if entry["fdd_warm"].get("promoted_chains", 0) < 1:
            raise SystemExit(
                "%s: %s fdd warmed without promoting any chain" % (path, config_name)
            )
        if entry["fdd_warm"].get("diagrams", {}).get("diagrams", 0) < 1:
            raise SystemExit(
                "%s: %s fdd ran without any compiled diagram" % (path, config_name)
            )
    if configs["iprouter"]["fdd_warm_over_adaptive_warm"] < 1.0:
        raise SystemExit(
            "%s: iprouter warm fdd is slower than warm adaptive (%.3fx)"
            % (path, configs["iprouter"]["fdd_warm_over_adaptive_warm"])
        )
    if not results.get("quick"):
        for config_name, gate in GATES.items():
            speedup = configs[config_name]["fdd_warm"]["speedup"]
            if speedup <= gate:
                raise SystemExit(
                    "%s: %s warm fdd speedup %.3fx does not clear the %.2fx gate"
                    % (path, config_name, speedup, gate)
                )
    print("%s: ok (%s)" % (path, ", ".join(sorted(configs))))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small run for CI smoke")
    parser.add_argument("--reps", type=int, default=None, help="repetitions per mode")
    parser.add_argument("--packets", type=int, default=None, help="timed packets per rep")
    parser.add_argument(
        "--out",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_fdd.json"),
        help="result file (default: repo-root BENCH_fdd.json)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate an existing --out file instead of measuring",
    )
    args = parser.parse_args(argv)
    if args.check:
        check_file(args.out)
        return
    packets = args.packets or (2000 if args.quick else 20000)
    reps = args.reps or (2 if args.quick else 5)
    results = run(packets, reps, args.quick)
    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print("wrote %s" % os.path.abspath(args.out))


if __name__ == "__main__":
    main()
