"""Figure 10: forwarding rate versus input rate for 64-byte packets.

Paper: Base's MLFFR is 357,000 packets/s and its curve stays flat under
overload; All peaks at 446,000 and MR+All at 457,000 but both decline
to ~400,000 as failed descriptor checks consume PCI bandwidth; Simple
behaves like the optimized routers, showing the I/O system is the limit.
"""

import pytest

from paper_targets import MLFFR_P0, ascii_chart, emit, table
from repro.sim import fluid
from repro.sim.platforms import P0
from repro.sim.testbed import VARIANT_LABELS, Testbed

CURVE_VARIANTS = ["base", "fc", "xf", "all", "mr_all", "simple"]
INPUT_RATES = [50e3 * i for i in range(1, 12)] + [591.6e3]


@pytest.fixture(scope="module")
def cpu_costs():
    testbed = Testbed(2)
    return {v: testbed.true_cpu_ns(v, packets=1000) for v in CURVE_VARIANTS}


def test_figure10_curves(benchmark, cpu_costs):
    def curves():
        return {
            v: fluid.forwarding_curve(INPUT_RATES, cpu_costs[v], P0)
            for v in CURVE_VARIANTS
        }

    data = benchmark(curves)
    headers = ["input (kpps)"] + [VARIANT_LABELS[v] for v in CURVE_VARIANTS]
    rows = []
    for index, rate in enumerate(INPUT_RATES):
        rows.append(
            ["%.0f" % (rate / 1e3)]
            + ["%.0f" % (data[v][index][1] / 1e3) for v in CURVE_VARIANTS]
        )
    text = table(headers, rows)
    mlffrs = {v: fluid.mlffr(cpu_costs[v], P0) for v in CURVE_VARIANTS}
    text += "\n\nMLFFR (kpps): " + "  ".join(
        "%s=%.0f" % (VARIANT_LABELS[v], mlffrs[v] / 1e3) for v in CURVE_VARIANTS
    )
    text += "\npaper: Base=357  All=446  MR+All=457"
    text += "\n\n" + ascii_chart(
        {"base": data["base"], "all": data["all"], "simple": data["simple"]},
        y_label="forwarded pps",
        x_label="offered pps",
    )
    emit("fig10_forwarding_rate", text)

    for variant, target in MLFFR_P0.items():
        assert abs(mlffrs[variant] - target) / target < 0.03, variant
    # An ideal router is y = x below the MLFFR.
    low = fluid.solve(200e3, cpu_costs["all"], P0)
    assert low.sent == pytest.approx(200e3, rel=0.01)
    # Optimized configurations decline toward ~400k under overload.
    heavy = fluid.solve(591e3, cpu_costs["all"], P0)
    assert 370e3 < heavy.sent < 430e3
    # Base stays flat.
    assert fluid.solve(591e3, cpu_costs["base"], P0).sent == pytest.approx(
        fluid.solve(400e3, cpu_costs["base"], P0).sent, rel=0.02
    )
    # Simple's MLFFR is not much higher than the optimized configs'.
    assert mlffrs["simple"] < 1.10 * mlffrs["all"]


def test_timestep_simulation_confirms_fluid_peaks(benchmark, cpu_costs):
    """Cross-check one point per config on the hardware-level simulator."""
    from repro.sim import timestep

    def spot_checks():
        return {
            v: timestep.simulate(450e3, cpu_costs[v], P0, duration_s=0.03)
            for v in ("base", "all")
        }

    results = benchmark(spot_checks)
    assert results["base"].sent == pytest.approx(1e9 / cpu_costs["base"], rel=0.1)
    assert results["all"].sent > results["base"].sent
