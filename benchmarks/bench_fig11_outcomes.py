"""Figure 11: cumulative packet-outcome rates versus input rate.

Paper: Base is CPU-limited — every drop is a missed frame.  Simple is
not CPU-limited — no missed frames; drops are FIFO overflows or Queue
drops, showing the PCI bus/memory system is the bottleneck.  MR+All
shows missed frames at moderate overload, then FIFO overflows dominate
above the point where descriptor checks saturate the bus.
"""

import pytest

from paper_targets import emit, table
from repro.sim import fluid
from repro.sim.platforms import P0
from repro.sim.testbed import Testbed

VARIANTS = ["simple", "base", "mr_all"]
INPUT_RATES = [100e3, 200e3, 300e3, 350e3, 400e3, 450e3, 500e3, 550e3, 591.6e3]


@pytest.fixture(scope="module")
def cpu_costs():
    testbed = Testbed(2)
    return {v: testbed.true_cpu_ns(v, packets=1000) for v in VARIANTS}


def test_figure11_outcomes(benchmark, cpu_costs):
    def compute():
        return {
            v: fluid.outcome_curve(INPUT_RATES, cpu_costs[v], P0) for v in VARIANTS
        }

    data = benchmark(compute)
    sections = []
    for variant in VARIANTS:
        rows = [
            (
                "%.0f" % (o.input_rate / 1e3),
                "%.0f" % (o.sent / 1e3),
                "%.0f" % (o.queue_drops / 1e3),
                "%.0f" % (o.missed_frames / 1e3),
                "%.0f" % (o.fifo_overflows / 1e3),
            )
            for o in data[variant]
        ]
        sections.append(
            "%s\n%s"
            % (
                variant.upper(),
                table(["input", "sent", "Queue drop", "missed frame", "FIFO overflow"], rows),
            )
        )
    emit("fig11_outcomes", "\n\n".join(sections))

    # Base: CPU-limited; drops are missed frames.
    for outcome in data["base"]:
        if outcome.input_rate > 400e3:
            dropped = outcome.input_rate - outcome.sent
            assert outcome.missed_frames > 0.9 * dropped
    # Simple: no missed frames; FIFO overflows and Queue drops appear.
    heavy_simple = data["simple"][-1]
    assert heavy_simple.missed_frames < 0.05 * (heavy_simple.input_rate - heavy_simple.sent)
    assert heavy_simple.fifo_overflows > 0
    assert heavy_simple.queue_drops > 0
    # MR+All: missed frames first, FIFO overflows at the top end.
    moderate = data["mr_all"][6]  # 500k
    heavy = data["mr_all"][-1]
    assert moderate.missed_frames > moderate.fifo_overflows
    assert heavy.fifo_overflows > moderate.fifo_overflows
    # Conservation: outcomes sum to the input rate (the y = x line).
    for variant in VARIANTS:
        for outcome in data[variant]:
            assert outcome.accounted == pytest.approx(outcome.input_rate, rel=0.02)
