"""Figure 12: effect of the "All" optimizations on MLFFR per platform.

Paper:

    Platform   All      Base     Ratio
    P0         446,000  357,000  1.25
    P1         430,000  350,000  1.23
    P2         450,000  330,000  1.36
    P3         740,000  640,000  1.16

P0/P1/P3 reproduce within a few percent.  P2 is a documented deviation:
the paper's P2 Base (330k) is *slower* than P1 Base (350k) despite an
identical CPU and a faster bus, which a first-principles model cannot
produce; our P2 therefore tracks P1 for CPU-bound configurations (see
EXPERIMENTS.md).
"""

import pytest

from paper_targets import FIGURE12, emit, table
from repro.sim import fluid
from repro.sim.platforms import ALL_PLATFORMS
from repro.sim.testbed import Testbed


@pytest.fixture(scope="module")
def mlffrs():
    results = {}
    for platform in ALL_PLATFORMS:
        testbed = Testbed(2, platform=platform)
        results[platform.name] = {
            "all": fluid.mlffr(testbed.true_cpu_ns("all", 800), platform),
            "base": fluid.mlffr(testbed.true_cpu_ns("base", 800), platform),
        }
    return results


def test_figure12_table(benchmark, mlffrs):
    benchmark.pedantic(
        lambda: fluid.mlffr(2256.0, ALL_PLATFORMS[0]), rounds=5, iterations=1
    )
    rows = []
    for platform in ALL_PLATFORMS:
        ours = mlffrs[platform.name]
        paper = FIGURE12[platform.name]
        rows.append(
            (
                platform.name,
                "%.0f" % ours["all"],
                "%.0f" % ours["base"],
                "%.2f" % (ours["all"] / ours["base"]),
                "%d" % paper["all"],
                "%d" % paper["base"],
                "%.2f" % paper["ratio"],
            )
        )
    text = table(
        ["Platform", "All", "Base", "Ratio", "paper All", "paper Base", "paper Ratio"], rows
    )
    emit("fig12_platforms", text)

    for name, tolerance in (("P0", 0.03), ("P1", 0.05), ("P3", 0.05)):
        ours = mlffrs[name]
        paper = FIGURE12[name]
        assert abs(ours["all"] - paper["all"]) / paper["all"] < tolerance, name
        assert abs(ours["base"] - paper["base"]) / paper["base"] < tolerance, name
    # The optimizations help on every platform (§8.5: "Our optimizations
    # seem effective on all platforms").
    for name, ours in mlffrs.items():
        assert ours["all"] > 1.1 * ours["base"], name
    # The relative benefit shrinks on the fastest CPU (P3's ratio is the
    # smallest): I/O costs don't scale with the CPU.
    ratios = {name: ours["all"] / ours["base"] for name, ours in mlffrs.items()}
    assert ratios["P3"] < ratios["P0"]
