"""Figure 13: forwarding rate versus input rate on platforms P1-P3.

The paper's text does not tabulate Figure 13's series, but §8.5 pins the
shape: P1's Simple is PCI-limited while its other configurations are
not; P2's faster bus releases Simple; P3 forwards about 1.9x P2 for Base
and about 1.6x for All.
"""

import pytest

from paper_targets import emit, table
from repro.sim import fluid
from repro.sim.platforms import P1, P2, P3
from repro.sim.testbed import Testbed

VARIANTS = ["base", "all", "simple"]
INPUT_RATES = [100e3 * i for i in range(1, 21)]


@pytest.fixture(scope="module")
def costs():
    results = {}
    for platform in (P1, P2, P3):
        testbed = Testbed(2, platform=platform)
        results[platform.name] = {
            v: testbed.true_cpu_ns(v, packets=800) for v in VARIANTS
        }
    return results


def test_figure13_curves(benchmark, costs):
    def compute():
        data = {}
        for platform in (P1, P2, P3):
            data[platform.name] = {
                v: fluid.forwarding_curve(INPUT_RATES, costs[platform.name][v], platform)
                for v in VARIANTS
            }
        return data

    data = benchmark(compute)
    sections = []
    for platform in (P1, P2, P3):
        series = data[platform.name]
        rows = [
            ["%.0f" % (rate / 1e3)]
            + ["%.0f" % (series[v][i][1] / 1e3) for v in VARIANTS]
            for i, rate in enumerate(INPUT_RATES)
        ]
        sections.append(
            "%s (%s)\n%s"
            % (platform.name, platform.description, table(["input"] + VARIANTS, rows))
        )
    emit("fig13_hardware", "\n\n".join(sections))

    mlffr = {
        p.name: {v: fluid.mlffr(costs[p.name][v], p) for v in VARIANTS}
        for p in (P1, P2, P3)
    }
    # §8.5: Simple was PCI-limited on P1 but not on P2 (where the CPU
    # becomes its limit again).
    assert mlffr["P1"]["simple"] < 0.90 * (1e9 / costs["P1"]["simple"])
    assert mlffr["P2"]["simple"] > mlffr["P1"]["simple"] * 1.08
    assert mlffr["P2"]["simple"] == pytest.approx(1e9 / costs["P2"]["simple"], rel=0.03)
    # P3 vs P2 speedups: ~1.9x for Base, ~1.6x for All.
    base_ratio = mlffr["P3"]["base"] / mlffr["P2"]["base"]
    all_ratio = mlffr["P3"]["all"] / mlffr["P2"]["all"]
    assert 1.5 <= base_ratio <= 2.1
    assert 1.4 <= all_ratio <= 1.9
    assert base_ratio > all_ratio
