"""Figure 8: CPU cost breakdown for an unoptimized Click IP router.

Paper (700 MHz Pentium III, 64-byte packets):

    Receiving device interactions      701 ns/packet
    Click forwarding path             1657 ns/packet
    Transmitting device interactions   547 ns/packet
    Total                             2905 ns/packet

plus §8.2's cache/instruction observations: four cache misses per packet
at ~112 ns each, and the implied (344 kpps) versus observed (357 kpps)
forwarding-rate gap from performance-counter overhead.
"""

import pytest

from paper_targets import FIGURE8, emit, table
from repro.sim.testbed import Testbed


@pytest.fixture(scope="module")
def report():
    return Testbed(2).measure_cpu("base", packets=1000)


def test_figure8_breakdown(benchmark, report):
    fresh = benchmark.pedantic(
        lambda: Testbed(2).measure_cpu("base", packets=200), rounds=3, iterations=1
    )
    rows = [
        ("Receiving device interactions", "%.0f" % report.rx_device_ns, FIGURE8["rx"]),
        ("Click forwarding path", "%.0f" % report.forwarding_ns, FIGURE8["forwarding"]),
        ("Transmitting device interactions", "%.0f" % report.tx_device_ns, FIGURE8["tx"]),
        ("Total", "%.0f" % report.total_ns, FIGURE8["total"]),
    ]
    text = table(["Task", "measured (ns/packet)", "paper"], rows)
    text += "\n\nImplied max rate: %.0f pps (paper ~344,000)" % (1e9 / report.total_ns)
    text += "\nTrue rate after counter-overhead correction: %.0f pps (paper observed 357,000)" % (
        1e9 / report.true_total_ns
    )
    emit("fig8_cpu_breakdown", text)

    assert abs(report.rx_device_ns - FIGURE8["rx"]) / FIGURE8["rx"] < 0.05
    assert abs(report.forwarding_ns - FIGURE8["forwarding"]) / FIGURE8["forwarding"] < 0.05
    assert abs(report.tx_device_ns - FIGURE8["tx"]) / FIGURE8["tx"] < 0.05
    assert abs(report.total_ns - FIGURE8["total"]) / FIGURE8["total"] < 0.05
    assert fresh is not None


def test_cache_misses_per_packet(benchmark, report):
    """§8.2: four cache misses per packet — two in the forwarding path
    (headers), one per device side (descriptor, cleanup)."""
    from repro.sim import cost

    benchmark(lambda: cost.FORWARDING_CACHE_MISSES)
    total_misses = cost.FORWARDING_CACHE_MISSES + 2  # + RX descriptor + TX cleanup
    assert total_misses == 4
    assert abs(cost.CYCLES_MEMORY_FETCH / 0.7 - 112) < 2


def test_988_instructions_with_all_optimizations(benchmark):
    """§8.2: 'with all three optimizers turned on, just 988 instructions
    are retired during the forwarding of a packet' — implying much more
    complex configurations fit the 16 KB L1 i-cache."""
    report = benchmark.pedantic(
        lambda: Testbed(2).measure_cpu("all", packets=400), rounds=1, iterations=1
    )
    assert abs(report.instructions_per_packet - 988) / 988 < 0.05
