"""Figure 9: effect of the language optimizations on CPU time.

Paper: the black bars (forwarding path) drop from 1657 ns (Base) to
1101 ns with all three optimizations (-34%) and 1061 ns with ARP
elimination added; click-fastclassifier alone saves ~3%; click-xform is
the most effective single tool; click-devirtualize's gains overlap with
click-xform's.
"""

import pytest

from paper_targets import emit, table
from repro.sim.testbed import VARIANT_LABELS, VARIANTS, Testbed

PAPER_FWD = {"base": 1657, "all": 1101, "mr_all": 1061}


def test_figure9_tool_pass_timings(benchmark):
    """The optimizer chain behind the All and MR+All bars, timed per
    pass by the pass manager (PipelineReport) rather than an ad-hoc
    stopwatch around the whole build."""
    testbed = Testbed(2)
    benchmark.pedantic(lambda: testbed.variant_graph("mr_all"), rounds=3, iterations=1)
    report = testbed.last_report
    rows = [
        (
            record.name,
            "%.2f" % (record.seconds * 1e3),
            "%d -> %d" % (record.elements_before, record.elements_after),
            "%+d" % len(record.classes_added),
            ", ".join(record.archive_members_added) or "-",
        )
        for record in report
    ]
    rows.append(("total", "%.2f" % (report.total_seconds * 1e3), "", "", ""))
    emit(
        "fig9_tool_pass_timings",
        table(["pass", "tool time (ms)", "elements", "classes added", "archive"], rows),
    )
    assert [record.name for record in report] == [
        "xform", "fastclassifier", "xform", "devirtualize",
    ]
    assert all(record.seconds > 0 for record in report)
    # xform (combos) is the pass that shrinks the graph; devirtualize
    # only repoints classes.
    assert report.records[2].elements_delta < 0
    assert report.records[3].elements_delta == 0


@pytest.fixture(scope="module")
def reports():
    testbed = Testbed(2)
    return {v: testbed.measure_cpu(v, packets=1000) for v in VARIANTS}


def test_figure9_bars(benchmark, reports):
    benchmark.pedantic(
        lambda: Testbed(2).measure_cpu("all", packets=200), rounds=3, iterations=1
    )
    rows = []
    for variant in VARIANTS:
        report = reports[variant]
        rows.append(
            (
                VARIANT_LABELS[variant],
                "%.0f" % report.forwarding_ns,
                "%.0f" % report.total_ns,
                PAPER_FWD.get(variant, "-"),
                "%.2f" % report.mispredicts_per_packet,
                "%.1f" % report.transfers_per_packet,
            )
        )
    text = table(
        ["config", "fwd path (ns)", "total (ns)", "paper fwd", "mispredicts/pkt", "transfers/pkt"],
        rows,
    )
    emit("fig9_optimizations", text)

    base = reports["base"].forwarding_ns
    for variant, target in PAPER_FWD.items():
        measured = reports[variant].forwarding_ns
        assert abs(measured - target) / target < 0.05, (variant, measured)
    # Headline: -34% forwarding path.
    assert abs((1 - reports["all"].forwarding_ns / base) - 0.34) < 0.04
    # Tool ordering and overlap.
    assert reports["xf"].forwarding_ns < reports["dv"].forwarding_ns < base
    assert base - reports["fc"].forwarding_ns < 0.06 * base


def test_optimizations_preserve_forwarding_behaviour(benchmark, reports):
    """Every Figure 9 IP-router variant forwards the evaluation workload
    byte-for-byte identically (drops aside, there are none)."""
    from repro.elements.devices import PollDevice

    testbed = Testbed(2)
    frames = testbed.evaluation_frames(64)

    def transmitted(variant):
        router, devices = testbed.build_router(testbed.variant_graph(variant))
        for device, frame in frames:
            devices[device].receive_frame(frame)
        router.run_tasks(64 // PollDevice.BURST + 16)
        return [tuple(d.transmitted) for d in devices.values()]

    reference = benchmark.pedantic(lambda: transmitted("base"), rounds=1, iterations=1)
    for variant in ["fc", "dv", "xf", "all"]:
        assert transmitted(variant) == reference, variant
