"""§4's firewall experiment.

"We implemented a 17-rule firewall from Building Internet Firewalls in
IPFilter, then measured IPFilter's CPU cost for a packet matching the
next-to-last rule (DNS-5).  Without click-fastclassifier this took 388
nanoseconds, or 23% of the total time it takes a packet to pass through
the default Click IP router (excluding devices).  With
click-fastclassifier, this dropped by more than half, to 188 ns."

Two measurements here: the simulated-cycle cost (paper reproduction) and
the *wall-clock* cost of the interpreted tree versus the compiled
classifier in this Python implementation — the compilation is a genuine
optimization in both worlds.
"""

import pytest

from paper_targets import FIREWALL_NS, emit, table
from repro.classifier.compile import CompiledClassifier
from repro.classifier.ipfilter import compile_filter_rules
from repro.classifier.optimize import optimize
from repro.configs.firewall import FIREWALL_RULES, dns5_packet, firewall_rule_strings
from repro.sim import cost

CLOCK_MHZ = 700.0


@pytest.fixture(scope="module")
def trees():
    """The IPFilter element's tree (already BPF+-optimized, as §3
    describes) and the raw unoptimized tree for reference."""
    raw = compile_filter_rules(firewall_rule_strings())
    element_tree = optimize(raw)
    return raw, element_tree


def simulated_ns(tree, packet, per_step_cycles, base_cycles):
    cycles = base_cycles + per_step_cycles * tree.steps(packet)
    return cycles * 1000.0 / CLOCK_MHZ


def test_dns5_cpu_cost(benchmark, trees):
    raw, element_tree = trees
    packet = dns5_packet()
    benchmark(lambda: element_tree.match(packet))

    assert raw.match(packet) == 0  # DNS-5 allows it
    assert element_tree.match(packet) == 0

    # Interpreted: the IPFilter element walks its (optimized) tree in
    # memory.  Compiled: click-fastclassifier runs the same decisions as
    # straight-line code with inlined constants.
    slow_ns = simulated_ns(
        element_tree, packet, cost.CYCLES_CLASSIFIER_STEP,
        cost.ELEMENT_WORK_CYCLES["IPFilter"] + cost.CYCLES_ELEMENT_ENTRY,
    )
    fast_ns = simulated_ns(
        element_tree, packet, cost.CYCLES_FAST_CLASSIFIER_STEP,
        cost.ELEMENT_WORK_CYCLES["FastClassifier"] + cost.CYCLES_ELEMENT_ENTRY,
    )
    rows = [
        ("17 rules, DNS-5 packet (IPFilter)", "%.0f" % slow_ns, FIREWALL_NS["interpreted"]),
        ("with click-fastclassifier", "%.0f" % fast_ns, FIREWALL_NS["compiled"]),
        ("speedup", "%.2fx" % (slow_ns / fast_ns), "2.06x"),
    ]
    extra = [
        "",
        "tree: %d nodes raw, %d after the element's BPF+-style pass" % (
            len(raw.exprs), len(element_tree.exprs)),
        "DNS-5 traversal: %d steps raw, %d in the element's tree" % (
            raw.steps(packet), element_tree.steps(packet)),
        "share of the 1657 ns forwarding path: %.0f%% (paper: 23%%)" % (
            100.0 * slow_ns / 1657.0),
    ]
    emit("firewall_dns5", table(["measurement", "ns/packet", "paper"], rows) + "\n".join(extra))

    # Shape: >2x improvement, a large fraction of the forwarding path.
    assert slow_ns / fast_ns > 2.0
    assert 0.15 <= slow_ns / 1657.0 <= 0.33
    # Absolute values in band.
    assert abs(slow_ns - 388) / 388 < 0.25
    assert abs(fast_ns - 188) / 188 < 0.45


def test_dns5_wallclock_speedup(benchmark, trees):
    """The Python compiled classifier must genuinely beat the
    interpreted tree walk on the DNS-5 packet."""
    import timeit

    _, element_tree = trees
    compiled = CompiledClassifier(element_tree)
    packet = dns5_packet()

    benchmark(lambda: compiled(packet))
    interp_time = timeit.timeit(lambda: element_tree.match(packet), number=3000)
    compiled_time = timeit.timeit(lambda: compiled(packet), number=3000)
    assert compiled(packet) == element_tree.match(packet) == 0
    assert compiled_time < interp_time


def test_all_rules_have_names(benchmark):
    benchmark(lambda: len(FIREWALL_RULES))
    assert len(FIREWALL_RULES) == 17
    assert FIREWALL_RULES[-2][0] == "DNS-5"
