"""Per-packet forwarding latency versus load (discrete-event engine).

Not a paper figure — the paper reports rates, not latencies — but the
operational meaning of its CPU savings: at loads the unoptimized router
cannot sustain, its latency (and loss) explode while the optimized
router still forwards at pipeline-minimum latency.  "There are no spare
cycles; slow software means dropped packets" (§3).
"""

import pytest

from paper_targets import emit, table
from repro.sim import des
from repro.sim.platforms import P0
from repro.sim.testbed import Testbed

LOADS = [100e3, 200e3, 300e3, 340e3, 370e3, 400e3, 430e3]


@pytest.fixture(scope="module")
def cpu_costs():
    testbed = Testbed(2)
    return {
        "base": testbed.true_cpu_ns("base", packets=600),
        "all": testbed.true_cpu_ns("all", packets=600),
    }


def test_latency_versus_load(benchmark, cpu_costs):
    def compute():
        rows = []
        for load in LOADS:
            base = des.latency_percentiles(load, cpu_costs["base"], P0, duration_s=0.04)
            optimized = des.latency_percentiles(load, cpu_costs["all"], P0, duration_s=0.04)
            rows.append(
                (
                    "%.0f" % (load / 1e3),
                    "%.1f" % base[0],
                    "%.1f" % base[2],
                    "%.1f" % optimized[0],
                    "%.1f" % optimized[2],
                )
            )
        return rows

    rows = benchmark(compute)
    emit(
        "latency_vs_load",
        table(
            ["input (kpps)", "Base p50 (us)", "Base p99", "All p50", "All p99"],
            rows,
        ),
    )
    # Below both MLFFRs: identical pipeline-minimum latency ballpark.
    assert float(rows[0][2]) < 30
    # Between the two MLFFRs (~370-430k): Base's tail explodes, All's doesn't.
    base_p99_at_400 = float(rows[5][2])
    all_p99_at_400 = float(rows[5][4])
    assert base_p99_at_400 > 20 * all_p99_at_400
