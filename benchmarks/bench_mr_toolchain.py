"""§7.2's multiple-router tool chain, measured end to end.

The paper's "MR" optimization runs

    click-combine ... | click-xform ... | click-uncombine ...

to remove ARP on point-to-point links.  This bench runs that exact
chain on a two-router network, verifies the combined configuration
forwards across both routers, and measures the per-packet CPU saving
the extracted ARP-free router enjoys on its link-facing path.
"""

import pytest

from paper_targets import emit, table
from repro.configs.iprouter import two_router_network
from repro.core.combine import Link, combine, eliminate_arp, uncombine
from repro.core.pipeline import Pass, Pipeline
from repro.elements import LoopbackDevice, Router
from repro.elements.devices import PollDevice
from repro.net.headers import build_ether_udp_packet
from repro.sim.cpu import CycleMeter

HOST_MAC = "00:20:6F:11:11:11"


def extracted_router_a():
    """combine | eliminate-arp | uncombine as a reported pipeline."""
    routers, a_interfaces, _ = two_router_network()
    links = [Link("A", "eth1", "B", "eth0"), Link("B", "eth0", "A", "eth1")]
    pipeline = Pipeline(
        [
            Pass(eliminate_arp, name="eliminate-arp"),
            Pass(uncombine, name="uncombine", options={"router_name": "A"}),
        ],
        name="mr",
    )
    optimized, report = pipeline.run(combine(routers, links))
    return optimized, report, routers["A"], a_interfaces


def measure(graph, interfaces, packets=400):
    meter = CycleMeter()
    devices = {"eth0": LoopbackDevice("eth0", tx_capacity=1 << 30),
               "eth1": LoopbackDevice("eth1", tx_capacity=1 << 30)}
    router = Router(graph, meter=meter, devices=devices)
    arpq = router.find("arpq1")
    if arpq is not None and hasattr(arpq, "insert"):
        arpq.insert("2.0.0.2", "00:00:C0:BB:00:00")
    for index in range(packets):
        devices["eth0"].receive_frame(
            build_ether_udp_packet(
                HOST_MAC, interfaces[0].ether, "1.0.0.5", "2.0.0.7",
                payload=b"\x00" * 14, identification=index,
            )
        )
    router.run_tasks(packets // PollDevice.BURST + 16)
    forwarded = len(devices["eth1"].transmitted)
    assert forwarded == packets
    return meter.report(forwarded)


def test_mr_toolchain_saves_on_the_link_path(benchmark):
    (optimized, report, original, interfaces) = benchmark.pedantic(
        extracted_router_a, rounds=1, iterations=1
    )
    with_arp = measure(original, interfaces)
    without_arp = measure(optimized, interfaces)
    saving = with_arp.forwarding_ns - without_arp.forwarding_ns
    rows = [
        ("router A, ARPQuerier on the link", "%.0f" % with_arp.forwarding_ns),
        ("router A after combine|xform|uncombine", "%.0f" % without_arp.forwarding_ns),
        ("saving on link-bound packets", "%.0f ns" % saving),
    ]
    for record in report:
        rows.append(
            ("tool time: %s" % record.name, "%.2f ms" % (record.seconds * 1e3))
        )
    emit("mr_toolchain", table(["configuration", "fwd path (ns/packet)"], rows))
    assert [record.name for record in report] == ["eliminate-arp", "uncombine"]
    # The static EtherEncap is cheaper than the ARPQuerier lookup path
    # (the paper's MR saving materializes fully once combined with the
    # other optimizations; see EXPERIMENTS.md on the MR bar).
    assert without_arp.forwarding_ns < with_arp.forwarding_ns + 1
    assert optimized.elements_of_class("EtherEncap")


def test_combined_network_forwards_through_both_routers(benchmark):
    from repro.core.flatten import flatten
    from repro.net.headers import ETHER_HEADER_LEN, IPHeader

    routers, a_interfaces, b_interfaces = two_router_network()
    links = [Link("A", "eth1", "B", "eth0"), Link("B", "eth0", "A", "eth1")]
    combined = benchmark(lambda: flatten(combine(routers, links)))
    devices = {"eth0": LoopbackDevice("eth0"), "eth1": LoopbackDevice("eth1")}
    runtime = Router(combined, devices=devices)
    runtime["A/arpq1"].insert("2.0.0.2", "00:00:C0:BB:00:00")
    runtime["B/arpq1"].insert("3.0.0.9", "00:20:6F:99:99:99")
    devices["eth0"].receive_frame(
        build_ether_udp_packet(
            HOST_MAC, a_interfaces[0].ether, "1.0.0.5", "3.0.0.9", payload=b"\x00" * 14
        )
    )
    runtime.run_tasks(100)
    (out,) = devices["eth1"].transmitted
    assert IPHeader.unpack(out[ETHER_HEADER_LEN:]).ttl == 62  # two hops
