"""Self-healing shard plane benchmark: detection latency, MTTR, and
degraded-mode throughput.

Measures the recovery layer (``repro.runtime.recovery``) above the
4-worker thread-backend sharded IP router, three ways:

- **detection latency** — scheduler runs between a worker kill and the
  health seam noticing (heartbeat/watchdog/barrier).  Gated: every
  kill must be detected within 2 runs;
- **MTTR** — runs and wall-clock seconds from the kill to the shard
  back up serving traffic (journal replay restart).  Gated: every
  killed worker must be restarted with zero frames lost against a
  no-fault twin;
- **degraded throughput** — packets-per-second with one shard benched
  (a poisoned journal under a one-restart budget) and its flows
  re-steered to the three survivors via the rendezvous overlay,
  relative to the healthy 4-worker plane.  Gated: the degraded plane
  must keep >= 50% of healthy throughput, with nothing lost but the
  armed poison frame itself.

Results go to ``BENCH_recovery.json``.  Runs standalone (no pytest):

    python benchmarks/bench_recovery.py              # full run
    python benchmarks/bench_recovery.py --quick      # CI smoke
    python benchmarks/bench_recovery.py --check      # validate output
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from bench_shard import sharded_frames  # noqa: E402
from repro.elements.devices import PollDevice  # noqa: E402
from repro.net.headers import build_ether_udp_packet  # noqa: E402
from repro.runtime import ExecutionProfile, RecoveryConfig  # noqa: E402
from repro.sim.testbed import HOST_ETHERS, Testbed, host_ip  # noqa: E402
from repro.verify.chaos import _affected_predicate  # noqa: E402
from repro.verify.oracle import degraded_transmit_difference  # noqa: E402

WORKERS = 4
BACKEND = "thread"
GATE_DETECTION_RUNS = 2
GATE_DEGRADED_RATIO = 0.5
#: Upper bound on the healing loop, not a gate — a shard that is still
#: down after this many runs counts as a failed recovery.
MTTR_RUN_LIMIT = 64


def build_plane(testbed, policy="buffer", **knobs):
    knobs.setdefault("jitter", 0)
    profile = (
        ExecutionProfile.fast(batch=True)
        .with_workers(WORKERS, BACKEND)
        .with_recovery(config=RecoveryConfig(policy=policy, **knobs))
    )
    graph = testbed.variant_graph("all")
    return testbed.build_router(graph, profile=profile)


def feed(devices, frames):
    for device_name, frame in frames:
        devices[device_name].receive_frame(frame)


def drive(router, devices, frames):
    feed(devices, frames)
    router.run_tasks(len(frames) // PollDevice.BURST + 16)


def transmitted_hex(devices):
    return {
        name: [bytes(f).hex() for f in device.transmitted]
        for name, device in sorted(devices.items())
    }


def measure_healing(testbed, packets):
    """Kill workers 1, 2, 3 in turn under live traffic and time each
    heal: runs-to-detect (from the manager's latency ledger) and
    runs/seconds from kill to back-up (MTTR)."""
    frames = sharded_frames(testbed, packets)
    chunk = max(PollDevice.BURST, packets // 16)
    chunks = [frames[i : i + chunk] for i in range(0, len(frames), chunk)]
    router, devices = build_plane(testbed, policy="buffer")
    heals = []
    try:
        manager = router._recovery
        kill_before = {2: 1, 6: 2, 10: 3}  # chunk index -> worker to kill
        for index, piece in enumerate(chunks):
            worker = kill_before.get(index)
            if worker is not None:
                restarts_before = manager.restarts
                router.kill_worker(worker)
                start = time.perf_counter()
                runs = 0
                feed(devices, piece)
                # A kill is only *noted*; detection happens at a health
                # seam during a run — so loop until the restart landed,
                # not merely until no shard is marked down.
                while (
                    manager.restarts <= restarts_before or manager.down_indices()
                ) and runs < MTTR_RUN_LIMIT:
                    router.run_tasks(1)
                    runs += 1
                heals.append(
                    {
                        "worker": worker,
                        "mttr_runs": runs,
                        "mttr_seconds": round(time.perf_counter() - start, 6),
                        "healed": not manager.down_indices(),
                    }
                )
                router.run_tasks(len(piece) // PollDevice.BURST + 4)
            else:
                drive(router, devices, piece)
        router.run_tasks(16)
        report = manager.report()
        output = transmitted_hex(devices)
    finally:
        router.close()

    reference_router, reference_devices = build_plane(testbed, policy="buffer")
    try:
        drive(reference_router, reference_devices, frames)
        reference = transmitted_hex(reference_devices)
    finally:
        reference_router.close()
    diff = degraded_transmit_difference(reference, output, affected=None)

    return {
        "kills": len(heals),
        "heals": heals,
        "detections": report.detections,
        "restarts": report.restarts,
        "detection_latency_runs": report.detection_latency_runs,
        "max_detection_runs": max(report.detection_latency_runs or [0]),
        "max_mttr_runs": max(h["mttr_runs"] for h in heals),
        "max_mttr_seconds": max(h["mttr_seconds"] for h in heals),
        "all_healed": all(h["healed"] for h in heals),
        "lossless": diff is None,
        "loss_detail": diff,
    }


def measure_wallclock(router, devices, testbed, packets, reps, warmup=256):
    best = None
    for _ in range(reps):
        drive(router, devices, sharded_frames(testbed, warmup))
        frames = sharded_frames(testbed, packets)
        feed(devices, frames)
        start = time.perf_counter()
        router.run_tasks(packets // PollDevice.BURST + 16)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return packets / best


def poison_frame_for(testbed):
    """A frame outside the benchmark workload's flow population (the
    workload uses source ports 1000..1063): armed as poison it benches
    exactly one shard, and no re-steered workload frame re-triggers it
    on a survivor."""
    rx, tx = 0, 1
    return (
        testbed.interfaces[rx].device,
        build_ether_udp_packet(
            HOST_ETHERS[rx],
            testbed.interfaces[rx].ether,
            host_ip(rx),
            host_ip(tx),
            src_port=9999,
            dst_port=2000,
            payload=b"\x00" * 14,
            identification=0xBEEF,
        ),
    )


def measure_degraded(testbed, packets, reps):
    """Healthy 4-shard pps vs the same plane with one shard benched
    and its flows re-steered to the survivors."""
    router, devices = build_plane(testbed, policy="resteer")
    try:
        healthy_pps = measure_wallclock(router, devices, testbed, packets, reps)
    finally:
        router.close()

    router, devices = build_plane(
        testbed, policy="resteer", restart_budget=1, quarantine_limit=5
    )
    try:
        manager = router._recovery
        poison_name, poison_frame = poison_frame_for(testbed)
        router.arm_poison(poison_frame)
        devices[poison_name].receive_frame(poison_frame)
        router.run_tasks(4)  # the home shard dies on the poison frame
        router.run_tasks(4)  # replay re-dies; budget of 1 -> benched
        benched = list(manager.benched_indices())
        if len(benched) != 1:
            raise AssertionError("expected one benched shard, got %r" % (benched,))
        already = {
            name: len(device.transmitted) for name, device in devices.items()
        }
        degraded_pps = measure_wallclock(router, devices, testbed, packets, reps)
        report = manager.report()
        output = {
            name: [bytes(f).hex() for f in device.transmitted[already[name] :]]
            for name, device in sorted(devices.items())
        }
        predicate = _affected_predicate(manager.affected_flows)
    finally:
        router.close()

    # Loss check: the degraded run must transmit exactly what a healthy
    # plane would for the same workload (the poison frame never entered
    # this window), with re-homed flows held to the multiset bar.
    reference_router, reference_devices = build_plane(testbed, policy="resteer")
    try:
        warm = sharded_frames(testbed, 256)
        timed = sharded_frames(testbed, packets)
        replayed = warm + timed
        for _ in range(reps - 1):
            replayed = replayed + warm + timed
        drive(reference_router, reference_devices, replayed)
        reference = transmitted_hex(reference_devices)
    finally:
        reference_router.close()
    diff = degraded_transmit_difference(reference, output, affected=predicate)

    return {
        "healthy_pps": round(healthy_pps, 1),
        "degraded_pps": round(degraded_pps, 1),
        "ratio": round(degraded_pps / healthy_pps, 3),
        "benched_shards": benched,
        "survivors": WORKERS - len(benched),
        "frames_resteered": report.frames_resteered,
        "affected_flows": report.affected_flows,
        "lossless": diff is None,
        "loss_detail": diff,
    }


def run(packets, reps, quick):
    results = {
        "quick": quick,
        "packets": packets,
        "reps": reps,
        "config": "iprouter-all",
        "workers": WORKERS,
        "backend": BACKEND,
    }
    testbed = Testbed(2)

    healing = measure_healing(testbed, packets=min(packets, 2048))
    print(
        "healing    %d kill(s): detect <= %d run(s), MTTR <= %d run(s) "
        "(%.1f ms worst), %s"
        % (
            healing["kills"],
            healing["max_detection_runs"],
            healing["max_mttr_runs"],
            healing["max_mttr_seconds"] * 1e3,
            "lossless" if healing["lossless"] else "LOSSY",
        )
    )
    results["healing"] = healing

    degraded = measure_degraded(testbed, packets, reps)
    print(
        "degraded   %d survivors %10.0f pps vs healthy %10.0f pps  (%.0f%%), "
        "%d frame(s) re-steered, %s"
        % (
            degraded["survivors"],
            degraded["degraded_pps"],
            degraded["healthy_pps"],
            degraded["ratio"] * 100,
            degraded["frames_resteered"],
            "lossless" if degraded["lossless"] else "LOSSY",
        )
    )
    results["degraded"] = degraded
    return results


def check_file(path):
    """Validate a results file: every kill detected within the run
    budget and healed without loss; degraded throughput above the 50%
    gate with nothing lost in re-steering."""
    with open(path) as fh:
        results = json.load(fh)
    healing = results["healing"]
    if healing["max_detection_runs"] > GATE_DETECTION_RUNS:
        raise SystemExit(
            "%s: worst detection latency %d run(s) exceeds the %d-run gate"
            % (path, healing["max_detection_runs"], GATE_DETECTION_RUNS)
        )
    if not healing["all_healed"] or healing["restarts"] < healing["kills"]:
        raise SystemExit(
            "%s: %d kill(s) but only %d restart(s) healed"
            % (path, healing["kills"], healing["restarts"])
        )
    if not healing["lossless"]:
        raise SystemExit(
            "%s: healing run lost frames: %s" % (path, healing["loss_detail"])
        )
    degraded = results["degraded"]
    if degraded["ratio"] < GATE_DEGRADED_RATIO:
        raise SystemExit(
            "%s: degraded plane at %.0f%% of healthy throughput "
            "(gate: >= %.0f%%)"
            % (path, degraded["ratio"] * 100, GATE_DEGRADED_RATIO * 100)
        )
    if not degraded["lossless"]:
        raise SystemExit(
            "%s: degraded run lost frames: %s" % (path, degraded["loss_detail"])
        )
    if degraded["frames_resteered"] <= 0:
        raise SystemExit("%s: degraded run never re-steered a frame" % path)
    print(
        "%s: ok (detect <= %d run(s), MTTR <= %.1f ms, degraded %.0f%% of "
        "healthy, %d re-steered)"
        % (
            path,
            healing["max_detection_runs"],
            healing["max_mttr_seconds"] * 1e3,
            degraded["ratio"] * 100,
            degraded["frames_resteered"],
        )
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small run for CI smoke")
    parser.add_argument("--reps", type=int, default=None, help="repetitions per point")
    parser.add_argument("--packets", type=int, default=None, help="timed packets per rep")
    parser.add_argument(
        "--out",
        default=os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_recovery.json"
        ),
        help="result file (default: repo-root BENCH_recovery.json)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate an existing --out file instead of measuring",
    )
    args = parser.parse_args(argv)
    if args.check:
        check_file(args.out)
        return
    packets = args.packets or (2000 if args.quick else 8000)
    reps = args.reps or (2 if args.quick else 3)
    results = run(packets, reps, args.quick)
    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print("wrote %s" % os.path.abspath(args.out))


if __name__ == "__main__":
    main()
