"""Sharded data plane benchmark: 1 -> N worker scale curve.

Measures the RSS-style flow-hash sharded router (``repro.runtime.shard``)
against the single-shard fast path on the standards-compliant IP router,
three ways:

- **wall-clock scale curve** — packets-per-second through a live
  multiprocessing plane at 1, 2, and 4 workers.  Machine-dependent:
  Python workers only scale on real cores, so this row is recorded as
  data, not gated (CI containers are often single-core, where the curve
  documents the dispatch overhead instead of the speedup);
- **modeled saturation throughput** — the repo's standard methodology
  (CycleMeter per-packet cost through the §8 fluid model).  Per-shard
  meters are reconciled into one cost, and the plane's service time is
  ``max(dispatch_ns, cpu_ns / workers)`` (every frame crosses the
  single flow-hash dispatcher; see ``Testbed.sharded_mlffr``).  The
  MLFFR curve is solved on two platforms: on P0 (shared 33 MHz PCI) the
  curve flattens at the bus limit almost immediately — sharding cannot
  buy what the fabric won't carry — while on P2 (64-bit/66 MHz PCI,
  gigabit ports) the shards scale toward wire rate.  The gated number
  is P2's: the modeled speedup at 4 workers must stay >= 2.0x the
  single-shard fast path;
- **dispatch microbench** — measured ns/frame through the flow hasher,
  the constant that eventually flattens the saturation curve.

Before timing, the sharded plane is checked against the single-shard
reference under the sharding contract: per-device multiset-identical
and per-flow byte-identical transmitted frames.

Results go to ``BENCH_shard.json``.  Runs standalone (no pytest):

    python benchmarks/bench_shard.py              # full run
    python benchmarks/bench_shard.py --quick      # CI smoke
    python benchmarks/bench_shard.py --check      # validate output
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.elements.devices import PollDevice  # noqa: E402
from repro.net.headers import build_ether_udp_packet  # noqa: E402
from repro.runtime import ExecutionProfile  # noqa: E402
from repro.runtime.flowhash import FlowHasher, flow_key  # noqa: E402
from repro.sim import fluid  # noqa: E402
from repro.sim.cpu import CycleMeter  # noqa: E402
from repro.sim.platforms import P0, P2  # noqa: E402
from repro.sim.testbed import HOST_ETHERS, Testbed, host_ip  # noqa: E402
from repro.verify.oracle import sharded_transmit_difference  # noqa: E402

SCALE_WORKERS = (1, 2, 4)
GATE_WORKERS = 4
GATE_SPEEDUP = 2.0
GATE_PLATFORM = "P2"
#: The modeled per-frame dispatcher cost (flow hash + queue handoff);
#: ``Testbed.sharded_mlffr``'s default, kept in one place so the gate
#: is deterministic across machines.  The measured value is recorded
#: alongside as ``dispatch.measured_ns``.
MODEL_DISPATCH_NS = 650.0


def sharded_frames(testbed, count, flows=64):
    """The evaluation workload with a widened flow population (64
    source ports instead of 7) so four shards load-balance; otherwise
    identical to ``Testbed.evaluation_frames``."""
    n = len(testbed.interfaces)
    frames = []
    for sequence in range(count):
        rx = sequence % n
        tx = (rx + 1) % n
        frames.append(
            (
                testbed.interfaces[rx].device,
                build_ether_udp_packet(
                    HOST_ETHERS[rx],
                    testbed.interfaces[rx].ether,
                    host_ip(rx),
                    host_ip(tx),
                    src_port=1000 + sequence % flows,
                    dst_port=2000,
                    payload=b"\x00" * 14,
                    identification=sequence & 0xFFFF,
                ),
            )
        )
    return frames


def build_plane(testbed, workers, backend="process", meter=None):
    """An optimized ("all"-variant) IP router: a plain fast-path Router
    at 1 worker, a ShardedRouter above that."""
    profile = ExecutionProfile.fast(batch=True)
    if workers > 1:
        profile = profile.with_workers(workers, backend)
    graph = testbed.variant_graph("all")
    return testbed.build_router(graph, meter=meter, profile=profile)


def drive(router, devices, frames):
    for device_name, frame in frames:
        devices[device_name].receive_frame(frame)
    router.run_tasks(len(frames) // PollDevice.BURST + 16)


def close_plane(router):
    if getattr(router, "is_sharded", False):
        router.close()


def check_equivalence(testbed, packets=512):
    """The sharded plane must match the single-shard reference under
    the sharding contract (per-flow order, per-device multiset)."""
    frames = sharded_frames(testbed, packets)
    baselines = {}
    for workers, backend in ((1, "process"), (2, "thread"), (4, "process")):
        router, devices = build_plane(testbed, workers, backend)
        try:
            drive(router, devices, frames)
            output = {
                name: [bytes(f).hex() for f in device.transmitted]
                for name, device in sorted(devices.items())
            }
        finally:
            close_plane(router)
        if not baselines:
            baselines = output
            forwarded = sum(len(v) for v in output.values())
            if forwarded < packets:
                raise AssertionError(
                    "baseline lost packets: %d of %d forwarded" % (forwarded, packets)
                )
            continue
        diff = sharded_transmit_difference(baselines, output)
        if diff is not None:
            raise AssertionError(
                "%d-worker %s plane diverges from single-shard fast path: %s"
                % (workers, backend, diff)
            )


def measure_wallclock(testbed, workers, packets, reps, warmup=256):
    """Best-of-N wall-clock pps through a live plane (multiprocessing
    above 1 worker)."""
    best = None
    for _ in range(reps):
        router, devices = build_plane(testbed, workers)
        try:
            drive(router, devices, sharded_frames(testbed, warmup))
            frames = sharded_frames(testbed, packets)
            for device_name, frame in frames:
                devices[device_name].receive_frame(frame)
            start = time.perf_counter()
            router.run_tasks(packets // PollDevice.BURST + 16)
            elapsed = time.perf_counter() - start
        finally:
            close_plane(router)
        if best is None or elapsed < best:
            best = elapsed
    return packets / best


def measure_modeled(testbed, packets):
    """Metered per-packet cost on the live 2-worker process plane
    (shard meters reconciled into one CycleMeter), then the fluid-model
    saturation rate at every worker count, per platform."""
    meter = CycleMeter()
    router, devices = build_plane(testbed, 2, meter=meter)
    try:
        drive(router, devices, sharded_frames(testbed, 256))  # warmup
        meter.__init__()
        already = sum(len(d.transmitted) for d in devices.values())
        drive(router, devices, sharded_frames(testbed, packets))
        forwarded = sum(len(d.transmitted) for d in devices.values()) - already
    finally:
        close_plane(router)
    if forwarded < packets:
        raise AssertionError(
            "modeled run lost packets: %d of %d forwarded" % (forwarded, packets)
        )
    modeled = {}
    for platform in (P0, P2):
        report = meter.report(forwarded, clock_mhz=platform.clock_mhz)
        cpu_ns = report.true_total_ns + platform.pio_overhead_ns
        curve = {}
        for workers in (1, 2, 4, 8):
            effective_ns = (
                max(MODEL_DISPATCH_NS, cpu_ns / workers) if workers > 1 else cpu_ns
            )
            curve[str(workers)] = round(fluid.mlffr(effective_ns, platform), 1)
        base_rate = curve["1"]
        modeled[platform.name] = {
            "cpu_ns_per_packet": round(cpu_ns, 1),
            "mlffr_pps": curve,
            "speedup": {w: round(rate / base_rate, 3) for w, rate in curve.items()},
        }
    return modeled


def measure_dispatch(packets=20000):
    """ns/frame through the flow-hash dispatcher (key extraction plus
    shard selection), the sharding-specific per-frame cost."""
    testbed = Testbed(2)
    frames = [frame for _, frame in sharded_frames(testbed, 2048)]
    shard_of = FlowHasher(4)
    best = None
    for _ in range(3):
        start = time.perf_counter()
        remaining = packets
        while remaining > 0:
            for frame in frames:
                shard_of(frame)
            remaining -= len(frames)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    spread = len({flow_key(frame) for frame in frames})
    return {
        "measured_ns": round(best / packets * 1e9, 1),
        "model_ns": MODEL_DISPATCH_NS,
        "distinct_flows": spread,
    }


def run(packets, reps, quick):
    results = {
        "quick": quick,
        "packets": packets,
        "reps": reps,
        "config": "iprouter-all",
        "backend": "process",
    }
    testbed = Testbed(2)
    check_equivalence(testbed)
    print("equivalence: sharded planes match the single-shard fast path")
    results["equivalence"] = "ok"

    wallclock = {}
    for workers in SCALE_WORKERS:
        pps = measure_wallclock(testbed, workers, packets, reps)
        wallclock[str(workers)] = {
            "pps": round(pps, 1),
            "ns_per_packet": round(1e9 / pps, 1),
        }
    base = wallclock["1"]["pps"]
    for workers, stats in wallclock.items():
        stats["speedup"] = round(stats["pps"] / base, 3)
        print(
            "wallclock  %s worker(s) %10.0f pps  %8.0f ns/pkt  %5.2fx"
            % (workers, stats["pps"], stats["ns_per_packet"], stats["speedup"])
        )
    results["wallclock"] = wallclock

    modeled = measure_modeled(testbed, packets=min(packets, 4000))
    for platform_name, entry in modeled.items():
        for workers in sorted(entry["mlffr_pps"], key=int):
            print(
                "modeled    %-3s %s worker(s) %10.0f pps MLFFR  %5.2fx"
                % (
                    platform_name,
                    workers,
                    entry["mlffr_pps"][workers],
                    entry["speedup"][workers],
                )
            )
    results["modeled"] = modeled

    results["dispatch"] = measure_dispatch(packets=2000 if quick else 20000)
    print(
        "dispatch   %.0f ns/frame measured (%d distinct flows), %.0f ns modeled"
        % (
            results["dispatch"]["measured_ns"],
            results["dispatch"]["distinct_flows"],
            results["dispatch"]["model_ns"],
        )
    )
    return results


def check_file(path):
    """Validate a results file: well-formed, equivalence held, and the
    modeled saturation speedup at 4 workers clears the 2.0x gate."""
    with open(path) as fh:
        results = json.load(fh)
    if results.get("equivalence") != "ok":
        raise SystemExit("%s: sharded equivalence pre-check did not pass" % path)
    for workers, stats in results["wallclock"].items():
        if not (stats["pps"] > 0 and stats["ns_per_packet"] > 0):
            raise SystemExit("%s: wallclock/%s has bogus numbers" % (path, workers))
    modeled = results["modeled"]
    for platform_name, entry in modeled.items():
        if entry["cpu_ns_per_packet"] <= 0:
            raise SystemExit(
                "%s: bogus metered per-packet cost on %s" % (path, platform_name)
            )
    speedup = modeled[GATE_PLATFORM]["speedup"].get(str(GATE_WORKERS), 0.0)
    if speedup < GATE_SPEEDUP:
        raise SystemExit(
            "%s: modeled %s throughput at %d workers is %.2fx the single-shard "
            "fast path (gate: >= %.1fx)"
            % (path, GATE_PLATFORM, GATE_WORKERS, speedup, GATE_SPEEDUP)
        )
    print(
        "%s: ok (modeled %s %d-worker speedup %.2fx >= %.1fx, dispatch %.0f ns/frame)"
        % (
            path,
            GATE_PLATFORM,
            GATE_WORKERS,
            speedup,
            GATE_SPEEDUP,
            results["dispatch"]["measured_ns"],
        )
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small run for CI smoke")
    parser.add_argument("--reps", type=int, default=None, help="repetitions per point")
    parser.add_argument("--packets", type=int, default=None, help="timed packets per rep")
    parser.add_argument(
        "--out",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_shard.json"),
        help="result file (default: repo-root BENCH_shard.json)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate an existing --out file instead of measuring",
    )
    args = parser.parse_args(argv)
    if args.check:
        check_file(args.out)
        return
    packets = args.packets or (2000 if args.quick else 12000)
    reps = args.reps or (2 if args.quick else 3)
    results = run(packets, reps, args.quick)
    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print("wrote %s" % os.path.abspath(args.out))


if __name__ == "__main__":
    main()
