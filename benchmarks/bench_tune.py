"""Autotuning benchmark: searched runtime knobs vs the shipped defaults.

``repro.tune`` searches the runtime knob space (adaptive thresholds,
FDD node budget, shard queue capacity, batch flavor) with the shipped
constants seeded as candidate 0, so by construction the winner ties or
beats the defaults on the cost model.  This benchmark pins that claim
down, per workload and per execution regime:

- **modeled**: the tuner's own scoreboard — MLFFR (fluid equilibrium)
  and effective per-packet CPU cost, tuned vs default.  Deterministic,
  machine-independent; these are the hard gates.
- **measured**: best-of-N wall-clock pps on the warmed engine, default
  profile vs tuned profile, same frames, byte-equivalence checked
  first.  Noisy by nature; the check allows a small tolerance.

Workloads are the tuner's own subjects (:mod:`repro.tune.workloads`):
the Figure 10 IP router and the §4 firewall under 90/10 skew — the
same traffic shape ``bench_adaptive.py`` and ``bench_fdd.py`` gate, so
the checked-in adaptive/FDD baselines stay comparable.

Results go to ``BENCH_tune.json``.  Runs standalone (no pytest):

    python benchmarks/bench_tune.py              # full run
    python benchmarks/bench_tune.py --quick      # CI smoke
    python benchmarks/bench_tune.py --check      # validate output
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.elements.devices import PollDevice  # noqa: E402
from repro.runtime import ExecutionProfile  # noqa: E402
from repro.tune import tune  # noqa: E402
from repro.tune.workloads import workload  # noqa: E402

SEED = 7
WORKLOADS = ["iprouter", "firewall"]
MODES = ["adaptive", "fdd"]
#: Wall-clock is noisy; the modeled gates are exact, the measured gate
#: only refuses a clear regression.
MEASURED_TOLERANCE = 0.90


def _profile(mode, tuned=None):
    profile = ExecutionProfile.tiered() if mode == "adaptive" else ExecutionProfile.fdd()
    if tuned is not None:
        profile = profile.with_tuning(tuned)
    return profile


def check_equivalence(subject, mode, tuned, packets=512):
    """Reference, default, and tuned profiles must forward the same
    bytes before anything is timed."""
    router, devices, frames = subject.build(ExecutionProfile.reference())
    reference = subject.drive(router, devices, frames, packets)
    for profile in (_profile(mode), _profile(mode, tuned)):
        router, devices, frames = subject.build(profile)
        if subject.drive(router, devices, frames, packets) != reference:
            raise AssertionError(
                "%s/%s output differs from reference" % (subject.name, mode)
            )


def measure(subject, profile, packets, reps, warmup=4096):
    """Best-of-``reps`` warmed pps on fresh routers under ``profile``."""
    best = None
    for _ in range(reps):
        router, devices, frames = subject.build(profile)
        subject.drive(router, devices, frames, warmup)
        for device_name, frame in frames(packets):
            devices[device_name].receive_frame(frame)
        start = time.perf_counter()
        router.run_tasks(packets // PollDevice.BURST + 16)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return packets / best


def run(packets, reps, budget, quick):
    results = {
        "quick": quick,
        "packets": packets,
        "reps": reps,
        "seed": SEED,
        "budget": budget,
        "configs": {},
    }
    for workload_name in WORKLOADS:
        entry = {}
        for mode in MODES:
            tuned = tune(
                workload_name, mode=mode, seed=SEED, budget=budget, validate=not quick
            )
            subject = workload(workload_name)
            check_equivalence(subject, mode, tuned)
            default_pps = measure(subject, _profile(mode), packets, reps)
            tuned_pps = measure(subject, _profile(mode, tuned), packets, reps)
            entry[mode] = {
                "key": tuned.key,
                "params": dict(tuned.params),
                "modeled": {
                    "mlffr_pps": round(tuned.score, 1),
                    "baseline_mlffr_pps": round(tuned.baseline_score, 1),
                    "speedup": round(tuned.speedup, 3),
                    "effective_ns": round(tuned.search["effective_ns"], 1),
                    "baseline_effective_ns": round(
                        tuned.search["baseline_effective_ns"], 1
                    ),
                    "cpu_speedup": round(tuned.cpu_speedup, 3),
                },
                "measured": {
                    "default_pps": round(default_pps, 1),
                    "tuned_pps": round(tuned_pps, 1),
                    "tuned_over_default": round(tuned_pps / default_pps, 3),
                },
            }
            if tuned.validation:
                entry[mode]["validation"] = tuned.validation
            stats = entry[mode]
            print(
                "%-10s %-9s modeled %5.2fx mlffr  %5.2fx cpu   measured %5.2fx  (%s)"
                % (
                    workload_name,
                    mode,
                    stats["modeled"]["speedup"],
                    stats["modeled"]["cpu_speedup"],
                    stats["measured"]["tuned_over_default"],
                    tuned.key,
                )
            )
        results["configs"][workload_name] = entry
    return results


def check_file(path):
    """Validate an existing results file: on every workload and regime
    the tuned profile must tie or beat the defaults on the model (exact)
    and stay within tolerance on the wall clock; full runs must also
    carry a passing wire-identity validation."""
    with open(path) as fh:
        results = json.load(fh)
    configs = results["configs"]
    if sorted(configs) != sorted(WORKLOADS):
        raise SystemExit("%s: expected workloads %s, got %s" % (path, WORKLOADS, sorted(configs)))
    for workload_name, entry in configs.items():
        for mode in MODES:
            stats = entry[mode]
            modeled = stats["modeled"]
            if modeled["speedup"] < 1.0:
                raise SystemExit(
                    "%s: %s/%s tuned is modeled slower than the defaults (%.3fx)"
                    % (path, workload_name, mode, modeled["speedup"])
                )
            if modeled["cpu_speedup"] < 1.0:
                raise SystemExit(
                    "%s: %s/%s tuned costs more CPU than the defaults (%.3fx)"
                    % (path, workload_name, mode, modeled["cpu_speedup"])
                )
            measured = stats["measured"]
            # Quick runs measure too few packets for the wall clock to
            # mean anything; only full runs gate on it.
            if (
                not results.get("quick")
                and measured["tuned_over_default"] < MEASURED_TOLERANCE
            ):
                raise SystemExit(
                    "%s: %s/%s tuned regresses the wall clock (%.3fx < %.2f)"
                    % (
                        path,
                        workload_name,
                        mode,
                        measured["tuned_over_default"],
                        MEASURED_TOLERANCE,
                    )
                )
            validation = stats.get("validation")
            if validation is not None and not validation.get("wire_identical", False):
                raise SystemExit(
                    "%s: %s/%s tuned profile is not wire-identical"
                    % (path, workload_name, mode)
                )
            if not results.get("quick") and validation is None:
                raise SystemExit(
                    "%s: %s/%s full run is missing its validation record"
                    % (path, workload_name, mode)
                )
    print("%s: ok (%s)" % (path, ", ".join(sorted(configs))))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="small run for CI smoke")
    parser.add_argument("--reps", type=int, default=None, help="repetitions per profile")
    parser.add_argument("--packets", type=int, default=None, help="timed packets per rep")
    parser.add_argument("--budget", type=int, default=None, help="search candidates per tune")
    parser.add_argument(
        "--out",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_tune.json"),
        help="result file (default: repo-root BENCH_tune.json)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate an existing --out file instead of measuring",
    )
    args = parser.parse_args(argv)
    if args.check:
        check_file(args.out)
        return
    packets = args.packets or (2000 if args.quick else 20000)
    reps = args.reps or (2 if args.quick else 3)
    budget = args.budget or (8 if args.quick else 24)
    results = run(packets, reps, budget, args.quick)
    with open(args.out, "w") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print("wrote %s" % os.path.abspath(args.out))


if __name__ == "__main__":
    main()
