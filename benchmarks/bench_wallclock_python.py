"""Wall-clock microbenchmarks of the Python implementation itself.

The paper's optimizations are about compiled C++, but two of them are
*also* genuine optimizations of this Python implementation, which
pytest-benchmark can time directly:

- click-fastclassifier replaces the interpreted decision-tree walk with
  exec-compiled straight-line code;
- the runtime's packet transfers go through port indirection that
  devirtualized classes shortcut (here mostly a metering distinction,
  so we benchmark the real element-graph throughput before and after
  the full tool chain instead).
"""

import pytest

from repro.classifier.compile import CompiledClassifier
from repro.classifier.ipfilter import compile_expressions
from repro.classifier.optimize import optimize
from repro.configs.firewall import dns5_packet, firewall_rule_strings
from repro.elements.devices import PollDevice
from repro.sim.testbed import Testbed

EXPRESSIONS = ["icmp", "tcp dst port 80", "udp src port 53", "src net 18.26.4.0/24", "-"]
PACKETS = [
    dns5_packet(),
    bytes(12) + b"\x08\x00" + bytes(46),
    b"\x45" + bytes(19) + b"\x00\x35\x00\x50" + bytes(36),
]


@pytest.fixture(scope="module")
def tree():
    return optimize(compile_expressions(EXPRESSIONS))


def test_interpreted_tree_walk(benchmark, tree):
    def run():
        for packet in PACKETS:
            tree.match(packet)

    benchmark(run)


def test_compiled_classifier(benchmark, tree):
    compiled = CompiledClassifier(tree)

    def run():
        for packet in PACKETS:
            compiled(packet)

    benchmark(run)
    for packet in PACKETS:
        assert compiled(packet) == tree.match(packet)


def _forward(testbed, router, devices, frames):
    for device, frame in frames:
        devices[device].receive_frame(frame)
    router.run_tasks(len(frames) // PollDevice.BURST + 8)


def test_router_throughput_base(benchmark):
    testbed = Testbed(2)
    router, devices = testbed.build_router(testbed.variant_graph("base"))
    frames = testbed.evaluation_frames(128)
    benchmark.pedantic(
        lambda: _forward(testbed, router, devices, frames), rounds=5, iterations=1
    )


def test_router_throughput_fully_optimized(benchmark):
    testbed = Testbed(2)
    router, devices = testbed.build_router(testbed.variant_graph("all"))
    frames = testbed.evaluation_frames(128)
    benchmark.pedantic(
        lambda: _forward(testbed, router, devices, frames), rounds=5, iterations=1
    )
