"""§6.2's scalability claim for click-xform.

Paper: "click-xform takes about one minute to run several hundred
replacements on a router graph with thousands of elements, and much less
time for normal-sized routers."  We build a synthetic graph of several
hundred IP-router-like chains (thousands of elements), run the standard
combo patterns to a fixpoint, and verify the replacement count and a
comfortable time bound.
"""

import pytest

from paper_targets import emit, table
from repro.core.patterns import IP_INPUT_COMBO
from repro.core.xform import xform
from repro.graph.router import RouterGraph

CHAINS = 150  # 150 chains x 6 elements = 900 elements + sinks


def big_graph(chains=CHAINS):
    graph = RouterGraph()
    for index in range(chains):
        src = graph.add_element("src%d" % index, "Idle")
        paint = graph.add_element("p%d" % index, "Paint", str(index % 250))
        strip = graph.add_element("s%d" % index, "Strip", "14")
        check = graph.add_element("k%d" % index, "CheckIPHeader", "18.26.4.255")
        get = graph.add_element("g%d" % index, "GetIPAddress", "16")
        sink = graph.add_element("d%d" % index, "Discard")
        graph.add_connection(src.name, 0, paint.name, 0)
        graph.add_connection(paint.name, 0, strip.name, 0)
        graph.add_connection(strip.name, 0, check.name, 0)
        graph.add_connection(check.name, 0, get.name, 0)
        graph.add_connection(get.name, 0, sink.name, 0)
    return graph


def test_hundreds_of_replacements_on_large_graph(benchmark):
    graph = big_graph()
    before = len(graph.elements)

    result = benchmark.pedantic(lambda: xform(graph, [IP_INPUT_COMBO]), rounds=1, iterations=1)
    combos = result.elements_of_class("IPInputCombo")
    rows = [
        ("elements before", before),
        ("elements after", len(result.elements)),
        ("replacements applied", len(combos)),
    ]
    emit("xform_scale", table(["metric", "value"], rows))

    assert len(combos) == CHAINS
    assert not result.elements_of_class("Paint")
    # Configurations carried their wildcards through.
    assert {c.config.split(",")[0].strip() for c in combos} == {
        str(i % 250) for i in range(CHAINS)
    }


def test_normal_sized_router_is_fast(benchmark):
    """'Much less time for normal-sized routers.'"""
    from repro.configs.iprouter import ip_router_graph
    from repro.core.patterns import STANDARD_PATTERNS

    result = benchmark(lambda: xform(ip_router_graph(), STANDARD_PATTERNS))
    assert result.elements_of_class("IPOutputCombo")
