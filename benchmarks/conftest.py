"""Benchmark-suite configuration: make paper_targets importable."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
