"""Shared infrastructure for the reproduction benchmarks.

Each ``bench_*`` module regenerates one table or figure from the paper's
evaluation, prints it, writes it under ``benchmarks/results/``, and
asserts the reproduction bands (shape and headline numbers).  The
``benchmark`` fixture times the regeneration itself, so
``pytest benchmarks/ --benchmark-only`` both reproduces and times every
experiment.
"""

from __future__ import annotations

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

# Paper values (ns per packet unless stated).
FIGURE8 = {"rx": 701, "forwarding": 1657, "tx": 547, "total": 2905}
FIGURE9_FORWARDING = {"base": 1657, "fc": None, "dv": None, "xf": None,
                      "all": 1101, "mr_all": 1061}
MLFFR_P0 = {"base": 357_000, "all": 446_000, "mr_all": 457_000}
FIGURE12 = {
    "P0": {"all": 446_000, "base": 357_000, "ratio": 1.25},
    "P1": {"all": 430_000, "base": 350_000, "ratio": 1.23},
    "P2": {"all": 450_000, "base": 330_000, "ratio": 1.36},
    "P3": {"all": 740_000, "base": 640_000, "ratio": 1.16},
}
FIREWALL_NS = {"interpreted": 388, "compiled": 188}


def emit(name, text):
    """Print a result table and save it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    banner = "=" * 72
    print("\n%s\n%s\n%s\n%s" % (banner, name, banner, text))
    with open(os.path.join(RESULTS_DIR, name + ".txt"), "w") as handle:
        handle.write(text + "\n")


def ascii_chart(series, width=60, height=16, x_label="input", y_label="fwd"):
    """A crude terminal scatter chart of [(x, y)] series.

    ``series`` maps label -> [(x, y), ...]; each label plots with its
    first character.  Good enough to eyeball Figure 10's shapes in the
    benchmark output.
    """
    points = [(x, y) for pts in series.values() for x, y in pts]
    if not points:
        return "(no data)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = 0.0, max(ys) * 1.05
    grid = [[" "] * width for _ in range(height)]

    def cell(x, y):
        col = int((x - x_min) / (x_max - x_min or 1) * (width - 1))
        row = int((y - y_min) / (y_max - y_min or 1) * (height - 1))
        return height - 1 - row, col

    for label, pts in series.items():
        marker = label[0].upper()
        for x, y in pts:
            r, c = cell(x, y)
            grid[r][c] = marker
    lines = ["%10.0f |%s" % (y_max * (height - 1 - i) / (height - 1), "".join(row))
             for i, row in enumerate(grid)]
    lines.append(" " * 11 + "+" + "-" * width)
    lines.append(" " * 12 + "%-.0f%s%.0f  (%s vs %s)"
                 % (x_min, " " * (width - 16), x_max, y_label, x_label))
    legend = "  ".join("%s=%s" % (label[0].upper(), label) for label in series)
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def table(headers, rows):
    """Plain-text table formatting."""
    widths = [len(h) for h in headers]
    rendered_rows = []
    for row in rows:
        rendered = [str(cell) for cell in row]
        widths = [max(w, len(c)) for w, c in zip(widths, rendered)]
        rendered_rows.append(rendered)
    def fmt(cells):
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rendered_rows)
    return "\n".join(lines)
