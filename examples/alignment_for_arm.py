"""§7.1: click-align makes a configuration safe for strict-alignment
architectures.

On x86, unaligned word loads from packet data are legal; on ARM they
crash.  CheckIPHeader loads IP-header words, and after Strip(14) the
data pointer sits at offset 2 (mod 4).  This example shows the crash in
strict mode, runs click-align's data-flow analysis, and shows the fixed
configuration running strictly.

Run:  python examples/alignment_for_arm.py
"""

from repro.core.align import align, compute_alignments
from repro.core.toolchain import load_config, save_config
from repro.elements import LoopbackDevice, Router
from repro.net.headers import build_ether_udp_packet

CONFIG = """
pd :: PollDevice(eth0);
s :: Strip(14);
chk :: CheckIPHeader;
q :: Queue(64);
td :: ToDevice(eth0);
pd -> s -> chk -> q -> td;
"""


def run_strict(graph):
    devices = {"eth0": LoopbackDevice("eth0")}
    router = Router(graph, devices=devices)
    router["chk"].strict_alignment = True  # pretend we're on ARM
    frame = build_ether_udp_packet(
        "00:20:6F:11:11:11", "00:00:C0:4F:71:00", "1.0.0.2", "2.0.0.2",
        payload=b"\x00" * 14,
    )
    devices["eth0"].receive_frame(frame)
    router.run_tasks(8)
    return len(devices["eth0"].transmitted)


def main():
    graph = load_config(CONFIG)
    print("The data-flow analysis computes packet alignment at each element:")
    for name, alignment in sorted(compute_alignments(graph).items()):
        print("  %-6s receives data at offset %d (mod %d)"
              % (name, alignment.offset, alignment.modulus))

    print("\nOn a strict-alignment machine, the unaligned IP header traps:")
    try:
        run_strict(graph)
    except RuntimeError as error:
        print("  CRASH: %s" % error)

    print("\nRunning click-align...")
    fixed = align(graph)
    aligns = fixed.elements_of_class("Align")
    infos = fixed.elements_of_class("AlignmentInfo")
    print("  inserted %s, recorded %s(%s)"
          % (", ".join("%s(%s)" % (a.class_name, a.config) for a in aligns),
             infos[0].class_name, infos[0].config))

    print("\nThe fixed configuration:")
    for line in save_config(fixed).splitlines():
        if line.strip():
            print("  " + line)

    sent = run_strict(fixed)
    print("\nStrict mode now forwards cleanly (%d packet transmitted). Done." % sent)


if __name__ == "__main__":
    main()
