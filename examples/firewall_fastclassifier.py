"""§4's firewall: click-fastclassifier on a 17-rule IPFilter.

Builds the screened-subnet firewall from *Building Internet Firewalls*,
shows the decision tree the IPFilter element compiles, runs
click-fastclassifier over the configuration, prints the generated Python
(the analogue of Figure 3b's generated C++), and compares the cost of
classifying a DNS-5 packet before and after — both in simulated
Pentium III nanoseconds and in actual wall-clock time.

Run:  python examples/firewall_fastclassifier.py
"""

import timeit

from repro.classifier.compile import CompiledClassifier
from repro.configs.firewall import FIREWALL_RULES, dns5_packet, firewall_graph
from repro.core.fastclassifier import fastclassifier
from repro.core.toolchain import save_config
from repro.lang.archive import read_archive
from repro.sim import cost

CLOCK_MHZ = 700.0


def main():
    print("The 17 firewall rules:")
    for index, (name, rule) in enumerate(FIREWALL_RULES, 1):
        print("  %2d  %-8s %s" % (index, name, rule))

    graph = firewall_graph()
    packet = dns5_packet()

    # The element's decision tree (already BPF+-optimized).
    from repro.elements.classifiers import IPFilter

    element = IPFilter("fw", graph.elements["fw"].config)
    tree = element.tree
    steps = tree.steps(packet)
    print(
        "\nIPFilter compiled the rules into a %d-node decision tree;"
        "\nthe DNS-5 packet (next-to-last rule) traverses %d nodes." % (len(tree.exprs), steps)
    )

    slow_cycles = cost.ELEMENT_WORK_CYCLES["IPFilter"] + cost.CYCLES_ELEMENT_ENTRY \
        + steps * cost.CYCLES_CLASSIFIER_STEP
    fast_cycles = cost.ELEMENT_WORK_CYCLES["FastClassifier"] + cost.CYCLES_ELEMENT_ENTRY \
        + steps * cost.CYCLES_FAST_CLASSIFIER_STEP
    print(
        "\nSimulated Pentium III cost for the DNS-5 packet:"
        "\n  interpreted tree walk: %4.0f ns   (paper: 388 ns)"
        "\n  compiled:              %4.0f ns   (paper: 188 ns)"
        % (slow_cycles * 1000 / CLOCK_MHZ, fast_cycles * 1000 / CLOCK_MHZ)
    )

    print("\nRunning click-fastclassifier over the configuration...")
    optimized = fastclassifier(graph)
    members = read_archive(save_config(optimized))
    (code_member,) = [m for m in members if m.endswith(".py")]
    lines = members[code_member].splitlines()
    print("  generated %d lines of Python; the classify function begins:" % len(lines))
    start = next(i for i, line in enumerate(lines) if line.startswith("def _classify"))
    for line in lines[start:start + 6]:
        print("  | " + line)

    compiled = CompiledClassifier(tree)
    interp_us = timeit.timeit(lambda: tree.match(packet), number=20000) / 20000 * 1e6
    compiled_us = timeit.timeit(lambda: compiled(packet), number=20000) / 20000 * 1e6
    print(
        "\nWall-clock in this Python implementation (DNS-5 packet):"
        "\n  interpreted: %.2f us/packet"
        "\n  compiled:    %.2f us/packet   (%.1fx faster)"
        % (interp_us, compiled_us, interp_us / compiled_us)
    )
    assert compiled(packet) == tree.match(packet) == 0
    print("\nBoth accept the DNS-5 packet on output 0. Done.")


if __name__ == "__main__":
    main()
