"""Tour of the Figure 1 IP router and the paper's headline result.

Builds the standards-compliant two-interface IP router, forwards real
traffic through it over simulated devices, then measures the per-packet
CPU cost of every optimizer combination from Figure 9 — reproducing the
34% forwarding-path reduction.

Run:  python examples/ip_router_tour.py
"""

from repro.configs.iprouter import default_interfaces, ip_router_config
from repro.net.headers import ETHER_HEADER_LEN, EtherHeader, IPHeader, build_ether_udp_packet
from repro.sim.testbed import VARIANT_LABELS, VARIANTS, Testbed

HOST1 = "00:20:6F:00:00:00"
HOST2 = "00:20:6F:00:00:01"


def show_configuration():
    interfaces = default_interfaces(2)
    text = ip_router_config(interfaces)
    print("The IP router configuration (first interface shown):\n")
    for line in text.splitlines()[:20]:
        print("  " + line)
    print("  ...\n")
    return interfaces


def forward_one_packet(interfaces):
    testbed = Testbed(2)
    router, devices = testbed.build_router(testbed.variant_graph("base"))
    frame = build_ether_udp_packet(
        HOST1, interfaces[0].ether, "1.0.0.2", "2.0.0.2", payload=b"\x00" * 14, ttl=64
    )
    devices["eth0"].receive_frame(frame)
    router.run_tasks(16)
    (out,) = devices["eth1"].transmitted
    ether = EtherHeader.unpack(out)
    ip = IPHeader.unpack(out[ETHER_HEADER_LEN:])
    print("A 64-byte UDP packet entered eth0 and left eth1:")
    print("  new Ethernet header: %s -> %s" % (ether.src, ether.dst))
    print("  TTL decremented to %d, checksum repaired\n" % ip.ttl)


def figure9():
    print("Figure 9 — CPU cost per packet, by optimizer combination:\n")
    testbed = Testbed(2)
    print("  %-8s %14s %12s" % ("config", "fwd path (ns)", "total (ns)"))
    reports = {}
    for variant in VARIANTS:
        report = testbed.measure_cpu(variant, packets=600)
        reports[variant] = report
        print(
            "  %-8s %14.0f %12.0f"
            % (VARIANT_LABELS[variant], report.forwarding_ns, report.total_ns)
        )
    base = reports["base"].forwarding_ns
    best = reports["all"].forwarding_ns
    print(
        "\nThe three optimizations cut the forwarding path by %.0f%% "
        "(paper: 34%%: 1657 ns -> 1101 ns)." % (100 * (1 - best / base))
    )


def main():
    interfaces = show_configuration()
    forward_one_packet(interfaces)
    figure9()


if __name__ == "__main__":
    main()
