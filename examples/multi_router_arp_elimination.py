"""§7.2: click-combine, ARP elimination, click-uncombine.

Two IP routers, A and B, joined by a point-to-point link.  The combined
configuration exposes that "there is no need for an ARP mechanism on
that link": a click-xform pattern replaces the link-facing ARPQueriers
with static EtherEncap elements, and click-uncombine extracts the
optimized routers again — the tool chain

    click-combine ... | click-xform ... | click-uncombine ...

Run:  python examples/multi_router_arp_elimination.py
"""

from repro.configs.iprouter import two_router_network
from repro.core.combine import Link, combine, eliminate_arp, uncombine
from repro.core.flatten import flatten
from repro.elements import LoopbackDevice, Router
from repro.net.headers import ETHER_HEADER_LEN, EtherHeader, IPHeader, build_ether_udp_packet


def main():
    routers, a_interfaces, b_interfaces = two_router_network()
    links = [Link("A", "eth1", "B", "eth0"), Link("B", "eth0", "A", "eth1")]

    print("Router A serves 1.0.0.0/8; router B serves 3.0.0.0/8;")
    print("A.eth1 <-> B.eth0 is a point-to-point link on 2.0.0.0/8.\n")

    combined = combine(routers, links)
    print(
        "click-combine produced one configuration: %d compound classes, "
        "%d RouterLinks." % (len(combined.element_classes),
                             len(combined.elements_of_class("RouterLink")))
    )
    flat = flatten(combined)
    arpqueriers = [d.name for d in flat.elements_of_class("ARPQuerier")]
    print("ARPQueriers before optimization: %s" % ", ".join(sorted(arpqueriers)))

    optimized = eliminate_arp(combined)
    remaining = [d.name for d in optimized.elements_of_class("ARPQuerier")]
    encaps = optimized.elements_of_class("EtherEncap")
    print("\nAfter the ARP-elimination click-xform patterns:")
    print("  remaining ARPQueriers (outward-facing): %s" % ", ".join(sorted(remaining)))
    for encap in encaps:
        print("  new static encapsulation: %s(%s)" % (encap.class_name, encap.config))

    print("\nclick-uncombine extracts router A with its devices restored...")
    extracted = uncombine(optimized, "A")
    devices = {"eth0": LoopbackDevice("eth0"), "eth1": LoopbackDevice("eth1")}
    runtime = Router(extracted, devices=devices)

    frame = build_ether_udp_packet(
        "00:20:6F:11:11:11", a_interfaces[0].ether, "1.0.0.5", "2.0.0.7",
        payload=b"\x00" * 14,
    )
    devices["eth0"].receive_frame(frame)
    runtime.run_tasks(32)
    (out,) = devices["eth1"].transmitted
    ether = EtherHeader.unpack(out)
    ip = IPHeader.unpack(out[ETHER_HEADER_LEN:])
    print(
        "\nRouter A forwarded a packet toward the link with NO ARP exchange:"
        "\n  Ethernet destination %s (B's eth0, known statically)"
        "\n  IP destination %s, TTL %d" % (ether.dst, ip.dst, ip.ttl)
    )
    print("\nDone.")


if __name__ == "__main__":
    main()
