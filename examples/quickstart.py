"""Quickstart: write a configuration, run it, optimize it.

This walks the package's core loop in five minutes:

1. describe a router in the Click language;
2. build and drive it (packets through real elements);
3. run the optimizer tool chain, exactly as the paper's Unix filters
   would (`click-fastclassifier | click-xform | click-devirtualize`);
4. inspect the emitted archive — configuration plus generated code; and
5. confirm the optimized router behaves identically.

Run:  python examples/quickstart.py
"""

from repro.core import chain, devirtualize, fastclassifier, load_config, save_config
from repro.elements import Router
from repro.net.packet import Packet

CONFIG = """
// A tiny packet processor: classify Ethernet frames, count IP traffic,
// queue it, and discard everything else.
source :: Idle;                 // stands in for a device in this demo
c :: Classifier(12/0806, 12/0800, -);   // ARP, IP, other
source -> c;
c [0] -> arp_count :: Counter -> Discard;
c [1] -> ip_count :: Counter -> q :: Queue(64) -> u :: Unqueue -> sink :: Discard;
c [2] -> Discard;
"""

IP_FRAME = bytes(12) + b"\x08\x00" + bytes(46)
ARP_FRAME = bytes(12) + b"\x08\x06" + bytes(46)
IPV6_FRAME = bytes(12) + b"\x86\xdd" + bytes(46)


def drive(router, frames):
    for frame in frames:
        router.push_packet("c", 0, Packet(frame))
    router.run_tasks(8)
    return router["arp_count"].count, router["ip_count"].count, router["sink"].count


def main():
    print("1. Parsing the configuration...")
    graph = load_config(CONFIG)
    print("   %d elements, %d connections" % (len(graph.elements), len(graph.connections)))

    print("\n2. Running packets through the unoptimized router...")
    router = Router(graph)
    arp, ip, sunk = drive(router, [IP_FRAME, ARP_FRAME, IP_FRAME, IPV6_FRAME])
    print("   ARP counted: %d, IP counted: %d, IP delivered: %d" % (arp, ip, sunk))

    print("\n3. Running the optimizer chain (fastclassifier, then devirtualize)...")
    optimize = chain(fastclassifier, devirtualize)
    optimized = optimize(graph)
    text = save_config(optimized)
    print("   the classifier became: c :: %s" % optimized.elements["c"].class_name)
    print("   archive members: %s" % ", ".join(["config"] + list(optimized.archive)))

    print("\n4. First lines of the emitted archive:")
    for line in text.splitlines()[:6]:
        print("   | " + line)

    print("\n5. Rebuilding the router from the archive text and re-running...")
    rebuilt = Router(load_config(text))
    arp2, ip2, sunk2 = drive(rebuilt, [IP_FRAME, ARP_FRAME, IP_FRAME, IPV6_FRAME])
    assert (arp, ip, sunk) == (arp2, ip2, sunk2)
    print("   identical behaviour: ARP %d, IP %d, delivered %d" % (arp2, ip2, sunk2))
    print("\nDone.")


if __name__ == "__main__":
    main()
