"""Offline firewall audit: replay a capture through the §4 firewall.

A realistic tool-user workflow: record traffic to a pcap file, replay it
through the 17-rule firewall configuration with `click-run`'s engine,
and see what gets through — then do it again with the
click-fastclassifier-compiled firewall and confirm the verdicts agree.

Run:  python examples/trace_firewall_audit.py
"""

import os
import tempfile

from repro.configs.firewall import DNS_SERVER, MAIL_SERVER, firewall_rule_strings
from repro.core.driver import run_config
from repro.core.fastclassifier import fastclassifier
from repro.core.toolchain import load_config, save_config
from repro.net.headers import TCP_ACK, TCP_SYN, build_tcp_packet, build_udp_packet, make_ether_header
from repro.net.pcap import write_pcap

ROUTER_MAC = "00:00:C0:4F:71:00"
TRAFFIC = [
    ("SMTP delivery to the mail host", build_tcp_packet("8.8.4.4", MAIL_SERVER, 9999, 25, TCP_SYN)),
    ("DNS query to the resolver", build_udp_packet("8.8.4.4", DNS_SERVER, 9999, 53)),
    ("DNS TCP reply from the resolver (DNS-5)", build_tcp_packet(DNS_SERVER, "8.8.4.4", 53, 9999, TCP_ACK)),
    ("telnet to the mail host (blocked)", build_tcp_packet("8.8.4.4", MAIL_SERVER, 9999, 23, TCP_SYN)),
    ("spoofed internal source (blocked)", build_udp_packet("172.16.9.9", DNS_SERVER, 9999, 53)),
    ("random UDP (blocked by default deny)", build_udp_packet("8.8.4.4", "203.0.113.5", 40000, 40001)),
]

CONFIG = """
pd :: PollDevice(wire0);
pd -> Strip(14)
   -> fw :: IPFilter(%s)
   -> Unstrip(14) -> q :: Queue(256) -> ToDevice(passed0);
"""


def audit(config_text, capture):
    router, devices = run_config(
        config_text, iterations=50, device_captures={"wire0": capture}
    )
    return devices["passed0"].transmitted


def main():
    frames = [
        make_ether_header(ROUTER_MAC, "00:20:6F:00:00:99", 0x0800) + packet
        for _, packet in TRAFFIC
    ]
    capture = write_pcap(frames)
    print("Captured %d flows; replaying through the 17-rule firewall...\n" % len(frames))

    config = CONFIG % ",\n    ".join(firewall_rule_strings())
    passed = audit(config, capture)
    verdicts = [frame in passed for frame in frames]
    for (label, _), allowed in zip(TRAFFIC, verdicts):
        print("  %-42s %s" % (label, "ALLOWED" if allowed else "denied"))

    print("\nCompiling the firewall with click-fastclassifier and re-auditing...")
    optimized = save_config(fastclassifier(load_config(config)))
    passed_fast = audit(optimized, capture)
    assert passed_fast == passed
    print("Compiled firewall verdicts identical (%d of %d flows allowed). Done."
          % (sum(verdicts), len(verdicts)))


if __name__ == "__main__":
    main()
