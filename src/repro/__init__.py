"""repro: a Python reproduction of "Programming Language Optimizations
for Modular Router Configurations" (Kohler, Morris, Chen; ASPLOS 2002).

The package contains the Click modular-router substrate (configuration
language, element library, runtime), the paper's optimization tool chain
(click-fastclassifier, click-devirtualize, click-xform, click-undead,
click-align, click-combine/uncombine, and friends), and a calibrated
hardware simulation that regenerates the paper's evaluation.

Quickstart::

    from repro import core, configs, elements

    graph = core.load_config(configs.ip_router_config())
    graph, report = core.named_pipeline("paper").run(graph)
    print(report.to_table())
    print(core.save_config(graph))
"""

from . import classifier, configs, core, elements, graph, lang, net

__version__ = "1.0.0"

__all__ = ["classifier", "configs", "core", "elements", "graph", "lang", "net", "__version__"]
