"""Packet-classification engine: decision trees, the Classifier and
IPFilter/IPClassifier languages, BPF+-style tree optimization, and the
tree-to-Python compiler behind click-fastclassifier."""

from .compile import CompiledClassifier, compile_tree, generate_source
from .ipfilter import (
    FilterError,
    compile_expressions,
    compile_filter_rules,
    parse_expression,
)
from .language import PatternError, compile_patterns, parse_pattern
from .optimize import deduplicate_nodes, graft, optimize, prune_redundant_tests, remove_unreachable
from .tree import FAILURE, DecisionTree, Expr, TreeBuilder, TreeError, is_leaf, leaf_output, make_leaf

__all__ = [
    "CompiledClassifier",
    "compile_tree",
    "generate_source",
    "FilterError",
    "compile_expressions",
    "compile_filter_rules",
    "parse_expression",
    "PatternError",
    "compile_patterns",
    "parse_pattern",
    "deduplicate_nodes",
    "graft",
    "optimize",
    "prune_redundant_tests",
    "remove_unreachable",
    "FAILURE",
    "DecisionTree",
    "Expr",
    "TreeBuilder",
    "TreeError",
    "is_leaf",
    "leaf_output",
    "make_leaf",
]
