"""The *IPFilter* / *IPClassifier* expression language.

These elements accept tcpdump-flavoured boolean expressions over IP
packets ("``src 10.0.0.2 && tcp src port 25``" — the paper's §3 example)
and compile them to the same decision-tree form as *Classifier*.  The
packet data is assumed to begin at the IP header, which is how the IP
router uses these elements (after ``Strip(14)``).

Supported primaries (each optionally negated / combined with ``&&``,
``||``, ``and``, ``or``, ``not``, ``!``, parentheses):

    ``tcp`` ``udp`` ``icmp``             protocol tests
    ``ip proto N``
    ``[src|dst] host A.B.C.D``           (bare addresses also accepted)
    ``[src|dst] net A.B.C.D/len``
    ``[tcp|udp] [src|dst] port N|name``
    ``icmp type N|name``
    ``tcp opt syn|ack|fin|rst|psh|urg``
    ``ip frag`` / ``ip unfrag``
    ``ip vers N`` / ``ip hl N``
    ``true|any|all`` / ``false|none``

Without a ``src``/``dst`` qualifier, host/net/port tests match either
direction, as in Click and tcpdump.  Port and TCP-option tests imply the
protocol test, a first-fragment guard, and an IHL == 5 guard (the
decision tree compares at fixed offsets; CheckIPHeader upstream has
already validated the header).
"""

from __future__ import annotations

import re

from ..net.addresses import parse_ip_prefix
from .tree import FAILURE, TreeBuilder, make_leaf

PORT_NAMES = {
    "ftp-data": 20, "ftp": 21, "ssh": 22, "telnet": 23, "smtp": 25,
    "dns": 53, "domain": 53, "bootps": 67, "bootpc": 68, "tftp": 69,
    "finger": 79, "www": 80, "http": 80, "pop3": 110, "auth": 113,
    "ident": 113, "nntp": 119, "ntp": 123, "imap": 143, "snmp": 161,
    "snmp-trap": 162, "bgp": 179, "irc": 194, "https": 443, "rip": 520,
}

ICMP_TYPE_NAMES = {
    "echo-reply": 0, "unreachable": 3, "dest-unreachable": 3,
    "sourcequench": 4, "redirect": 5, "echo": 8, "routeradvert": 9,
    "routersolicit": 10, "time-exceeded": 11, "parameterproblem": 12,
    "parameter-problem": 12, "timestamp": 13, "timestamp-reply": 14,
}

IP_PROTO_NAMES = {"icmp": 1, "igmp": 2, "tcp": 6, "udp": 17, "gre": 47}

TCP_FLAG_BITS = {"fin": 0x01, "syn": 0x02, "rst": 0x04, "psh": 0x08, "ack": 0x10, "urg": 0x20}


class FilterError(ValueError):
    """Raised for malformed filter expressions."""


# ---------------------------------------------------------------------------
# Expression AST


class _Node:
    __slots__ = ()


class Test(_Node):
    """(data[offset:offset+4] & mask) == value, word-aligned."""

    __slots__ = ("offset", "mask", "value")

    def __init__(self, offset, mask, value):
        self.offset = offset
        self.mask = mask & 0xFFFFFFFF
        self.value = value & 0xFFFFFFFF


class And(_Node):
    """Both children must match."""

    __slots__ = ("left", "right")

    def __init__(self, left, right):
        self.left = left
        self.right = right


class Or(_Node):
    """Either child may match."""

    __slots__ = ("left", "right")

    def __init__(self, left, right):
        self.left = left
        self.right = right


class Not(_Node):
    """The child must not match."""

    __slots__ = ("child",)

    def __init__(self, child):
        self.child = child


class Const(_Node):
    """Always/never matches (``true`` / ``false``)."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = bool(value)


def _and_all(nodes):
    result = None
    for node in nodes:
        result = node if result is None else And(result, node)
    return result if result is not None else Const(True)


# -- field test helpers (offsets relative to the IP header) -----------------


def _byte_test(byte_offset, byte_mask, byte_value):
    word = (byte_offset // 4) * 4
    shift = (3 - byte_offset % 4) * 8
    return Test(word, byte_mask << shift, byte_value << shift)


def _u16_test(byte_offset, mask, value):
    if byte_offset % 4 == 0:
        return Test(byte_offset, mask << 16, value << 16)
    if byte_offset % 4 == 2:
        return Test(byte_offset - 2, mask, value)
    raise FilterError("unaligned 16-bit field at %d" % byte_offset)


def _range_blocks(low, high, bits=16):
    """Cover the integer range [low, high] with maximal aligned
    power-of-two blocks — each a (value, mask) pair for one masked
    compare.  The standard prefix decomposition: a range over a 16-bit
    field needs at most 30 blocks."""
    if low > high:
        raise FilterError("empty range %d-%d" % (low, high))
    blocks = []
    field_max = (1 << bits) - 1
    cursor = low
    while cursor <= high:
        # Largest aligned block starting at cursor that fits.
        size = 1
        while (
            cursor % (size * 2) == 0
            and cursor + size * 2 - 1 <= high
            and size * 2 <= field_max + 1
        ):
            size *= 2
        mask = (field_max & ~(size - 1)) & field_max
        blocks.append((cursor, mask))
        cursor += size
    return blocks


def _u16_range_test(byte_offset, low, high):
    """An Or-tree of masked compares matching field in [low, high]."""
    tests = [
        _u16_test(byte_offset, mask, value) for value, mask in _range_blocks(low, high)
    ]
    result = tests[0]
    for test in tests[1:]:
        result = Or(result, test)
    return result


def _u32_test(byte_offset, mask, value):
    if byte_offset % 4:
        raise FilterError("unaligned 32-bit field at %d" % byte_offset)
    return Test(byte_offset, mask, value)


def _proto_test(proto):
    return _byte_test(9, 0xFF, proto)


def _first_fragment():
    # Fragment-offset bits all zero (MF may be set: the first fragment
    # still carries the transport header).
    return _u16_test(6, 0x1FFF, 0)


def _is_fragment():
    # MF set or fragment offset nonzero.
    return Not(_u16_test(6, 0x3FFF, 0))


def _standard_header():
    return _byte_test(0, 0xFF, 0x45)  # version 4, IHL 5


def _transport_guard(proto):
    return _and_all([_standard_header(), _first_fragment(), _proto_test(proto)])


# ---------------------------------------------------------------------------
# Tokenizer / parser

_TOKEN_RE = re.compile(
    r"\s*(&&|\|\||!|\(|\)|[A-Za-z][A-Za-z0-9._\-]*"
    r"|\d+\.\d+\.\d+\.\d+(?:/\d+)?|\d+-\d+|\d+(?:/\d+)?)"
)


def _tokenize(text):
    tokens = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if not match:
            raise FilterError("bad filter syntax at %r" % text[pos:])
        tokens.append(match.group(1))
        pos = match.end()
    return tokens


_IP_RE = re.compile(r"^\d+\.\d+\.\d+\.\d+(/\d+)?$")


class _Parser:
    def __init__(self, text):
        self.tokens = _tokenize(text)
        self.pos = 0

    def peek(self):
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self):
        token = self.peek()
        if token is None:
            raise FilterError("unexpected end of filter expression")
        self.pos += 1
        return token

    def expect(self, token):
        found = self.next()
        if found != token:
            raise FilterError("expected %r, found %r" % (token, found))

    # expr := and_expr (('||'|'or') and_expr)*
    def parse(self):
        node = self.parse_expr()
        if self.peek() is not None:
            raise FilterError("trailing tokens: %r" % self.tokens[self.pos:])
        return node

    def parse_expr(self):
        node = self.parse_and()
        while self.peek() in ("||", "or"):
            self.next()
            node = Or(node, self.parse_and())
        return node

    def parse_and(self):
        node = self.parse_unary()
        while True:
            token = self.peek()
            if token in ("&&", "and"):
                self.next()
                node = And(node, self.parse_unary())
            elif token is not None and token not in ("||", "or", ")"):
                # Juxtaposition is conjunction ("src 1.2.3.4 tcp").
                node = And(node, self.parse_unary())
            else:
                return node

    def parse_unary(self):
        token = self.peek()
        if token in ("!", "not"):
            self.next()
            return Not(self.parse_unary())
        if token == "(":
            self.next()
            node = self.parse_expr()
            self.expect(")")
            return node
        return self.parse_primary()

    # -- primaries ------------------------------------------------------------

    def parse_primary(self):
        token = self.next()
        lower = token.lower()

        if lower in ("true", "any", "all"):
            return Const(True)
        if lower in ("false", "none"):
            return Const(False)

        direction = None
        if lower in ("src", "dst"):
            direction = lower
            token = self.next()
            lower = token.lower()
            if lower == "and" and self.peek() and self.peek().lower() == "dst":
                # "src and dst host X"
                self.next()
                direction = "both"
                token = self.next()
                lower = token.lower()
            elif lower == "or" and self.peek() and self.peek().lower() == "dst":
                self.next()
                direction = None  # src-or-dst is the default meaning
                token = self.next()
                lower = token.lower()

        if lower == "host":
            return self._host(direction, self.next())
        if _IP_RE.match(token):
            if "/" in token:
                return self._net(direction, token)
            return self._host(direction, token)
        if lower == "net":
            return self._net(direction, self.next())
        if lower == "port":
            return self._port(direction, None, self.next())

        if lower in ("tcp", "udp"):
            proto = IP_PROTO_NAMES[lower]
            follow = self.peek()
            follow_lower = follow.lower() if follow else None
            if follow_lower in ("src", "dst"):
                # "tcp src port 25" — look ahead for the port keyword.
                save = self.pos
                sub_direction = self.next().lower()
                if self.peek() and self.peek().lower() == "port":
                    self.next()
                    return self._port(sub_direction, proto, self.next())
                self.pos = save
                return _proto_test(proto)
            if follow_lower == "port":
                self.next()
                return self._port(None, proto, self.next())
            if lower == "tcp" and follow_lower == "opt":
                self.next()
                return self._tcp_opt(self.next())
            return _proto_test(proto)

        if lower == "icmp":
            if self.peek() and self.peek().lower() == "type":
                self.next()
                return self._icmp_type(self.next())
            return _proto_test(1)

        if lower == "ip":
            keyword = self.next().lower()
            if keyword == "proto":
                value = self.next().lower()
                proto = IP_PROTO_NAMES.get(value)
                if proto is None:
                    proto = self._int(value, "IP protocol")
                return _proto_test(proto)
            if keyword == "frag":
                return _is_fragment()
            if keyword == "unfrag":
                return Not(_is_fragment())
            if keyword == "vers":
                return _byte_test(0, 0xF0, self._int(self.next(), "IP version") << 4)
            if keyword == "hl":
                return _byte_test(0, 0x0F, self._int(self.next(), "IP header length") // 4)
            if keyword == "tos":
                return _byte_test(1, 0xFF, self._int(self.next(), "IP TOS"))
            if keyword == "dscp":
                return _byte_test(1, 0xFC, self._int(self.next(), "IP DSCP") << 2)
            if keyword == "ttl":
                return _byte_test(8, 0xFF, self._int(self.next(), "IP TTL"))
            raise FilterError("unknown 'ip' test %r" % keyword)

        raise FilterError("unknown filter primary %r" % token)

    @staticmethod
    def _int(text, what):
        try:
            return int(text)
        except ValueError:
            raise FilterError("bad %s %r" % (what, text)) from None

    def _host(self, direction, addr_text):
        addr, mask = parse_ip_prefix(addr_text)
        return self._addr_node(direction, addr.value, mask)

    def _net(self, direction, net_text):
        if self.peek() and self.peek().lower() == "mask":
            # "net 18.26.4.0 mask 255.255.255.0"
            self.next()
            net_text = "%s/%s" % (net_text, self.next())
        addr, mask = parse_ip_prefix(net_text)
        return self._addr_node(direction, addr.value & mask, mask)

    @staticmethod
    def _addr_node(direction, value, mask):
        src = _u32_test(12, mask, value & mask)
        dst = _u32_test(16, mask, value & mask)
        if direction == "src":
            return src
        if direction == "dst":
            return dst
        if direction == "both":
            return And(src, dst)
        return Or(src, dst)

    def _port(self, direction, proto, port_text):
        if "-" in port_text and not port_text[0].isalpha():
            # A port range: "port 1024-65535".
            low_text, _, high_text = port_text.partition("-")
            low = self._int(low_text, "port")
            high = self._int(high_text, "port")
            src = _u16_range_test(20, low, high)
            dst = _u16_range_test(22, low, high)
            return self._port_node(direction, proto, src, dst)
        port = PORT_NAMES.get(port_text.lower())
        if port is None:
            port = self._int(port_text, "port")
        src = _u16_test(20, 0xFFFF, port)
        dst = _u16_test(22, 0xFFFF, port)
        return self._port_node(direction, proto, src, dst)

    def _port_node(self, direction, proto, src, dst):
        if direction == "src":
            port_node = src
        elif direction == "dst":
            port_node = dst
        else:
            port_node = Or(src, dst)
        if proto is None:
            proto_node = Or(_proto_test(6), _proto_test(17))
        else:
            proto_node = _proto_test(proto)
        return _and_all([_standard_header(), _first_fragment(), proto_node, port_node])

    @staticmethod
    def _tcp_opt(flag_text):
        bit = TCP_FLAG_BITS.get(flag_text.lower())
        if bit is None:
            raise FilterError("unknown TCP flag %r" % flag_text)
        return And(_transport_guard(6), _byte_test(33, bit, bit))

    def _icmp_type(self, type_text):
        icmp_type = ICMP_TYPE_NAMES.get(type_text.lower())
        if icmp_type is None:
            icmp_type = self._int(type_text, "ICMP type")
        return And(_transport_guard(1), _byte_test(20, 0xFF, icmp_type))


def parse_expression(text):
    """Parse a filter expression into its AST."""
    return _Parser(text).parse()


# ---------------------------------------------------------------------------
# Compilation to decision trees


def _compile_node(builder, node, succ, fail):
    """Continuation-passing compilation: returns the entry target."""
    if isinstance(node, Const):
        return succ if node.value else fail
    if isinstance(node, Not):
        return _compile_node(builder, node.child, fail, succ)
    if isinstance(node, And):
        right_entry = _compile_node(builder, node.right, succ, fail)
        return _compile_node(builder, node.left, right_entry, fail)
    if isinstance(node, Or):
        right_entry = _compile_node(builder, node.right, succ, fail)
        return _compile_node(builder, node.left, succ, right_entry)
    if isinstance(node, Test):
        return builder.node(node.offset, node.mask, node.value, succ, fail)
    raise FilterError("cannot compile %r" % node)


def compile_expressions(expressions):
    """Compile IPClassifier-style patterns (one per output, first match
    wins, ``-`` is catch-all) into a decision tree."""
    if not expressions:
        raise FilterError("IPClassifier needs at least one pattern")
    builder = TreeBuilder()
    entry = FAILURE
    for output in range(len(expressions) - 1, -1, -1):
        text = expressions[output].strip()
        success = make_leaf(output)
        if text == "-":
            entry = success
            continue
        node = parse_expression(text)
        entry = _compile_node(builder, node, success, entry)
    return builder.finish(entry, noutputs=len(expressions))


def compile_filter_rules(rules):
    """Compile IPFilter-style rules (``allow EXPR`` / ``deny EXPR`` /
    ``drop EXPR``) into a decision tree with one output (0 = allowed);
    denied packets are dropped.  A trailing implicit ``deny all`` applies,
    as in Click."""
    if not rules:
        raise FilterError("IPFilter needs at least one rule")
    builder = TreeBuilder()
    entry = FAILURE  # implicit final deny
    for rule in reversed(rules):
        parts = rule.strip().split(None, 1)
        if not parts:
            raise FilterError("empty IPFilter rule")
        action = parts[0].lower()
        expr_text = parts[1] if len(parts) > 1 else "all"
        if action == "allow":
            target = make_leaf(0)
        elif action in ("deny", "drop"):
            target = FAILURE
        else:
            raise FilterError("unknown IPFilter action %r" % action)
        node = parse_expression(expr_text)
        entry = _compile_node(builder, node, target, entry)
    return builder.finish(entry, noutputs=1)
