"""The *Classifier* pattern mini-language.

A ``Classifier`` configuration is a comma-separated list of patterns, one
per output port; packets take the first matching output.  Each pattern is
a space-separated conjunction of clauses:

    ``offset/value``        bytes at ``offset`` equal hex ``value``
    ``offset/value%mask``   masked comparison
    ``-``                   match everything (catch-all port)

Hex values may contain ``?`` wildcard digits ("12/08??" matches any
low byte).  ``Classifier(12/0800, -)`` — Figure 3's example — sends
IP-in-Ethernet packets to output 0 and everything else to output 1.

Patterns compile to byte-level (offset, mask, value) constraints, which
are then packed into the 4-byte-aligned word comparisons of the decision
tree, exactly as Click lays them out.
"""

from __future__ import annotations

import re

from .tree import FAILURE, TreeBuilder, make_leaf

_CLAUSE_RE = re.compile(r"^(\d+)/([0-9a-fA-F?]+)(?:%([0-9a-fA-F]+))?$")


class PatternError(ValueError):
    """Raised for malformed Classifier patterns."""


def _parse_clause(clause):
    """One clause → list of (byte_offset, byte_mask, byte_value)."""
    match = _CLAUSE_RE.match(clause)
    if not match:
        raise PatternError("bad Classifier clause %r" % clause)
    offset = int(match.group(1))
    value_text = match.group(2)
    mask_text = match.group(3)
    if len(value_text) % 2:
        raise PatternError("odd number of hex digits in %r" % clause)
    if mask_text is not None:
        if "?" in value_text:
            raise PatternError("cannot combine '?' wildcards with %%mask in %r" % clause)
        if len(mask_text) != len(value_text):
            raise PatternError("mask and value lengths differ in %r" % clause)

    constraints = []
    for i in range(0, len(value_text), 2):
        byte_index = offset + i // 2
        hi, lo = value_text[i], value_text[i + 1]
        mask = 0
        value = 0
        for shift, digit in ((4, hi), (0, lo)):
            if digit == "?":
                continue
            mask |= 0xF << shift
            value |= int(digit, 16) << shift
        if mask_text is not None:
            byte_mask = int(mask_text[i:i + 2], 16)
            mask &= byte_mask
            value &= byte_mask
        if mask:
            constraints.append((byte_index, mask, value))
    return constraints


def parse_pattern(pattern):
    """A full pattern → word-aligned (offset, mask, value) triples, or
    None for the ``-`` match-everything pattern."""
    pattern = pattern.strip()
    if pattern == "-":
        return None
    if not pattern:
        raise PatternError("empty Classifier pattern")
    byte_constraints = []
    for clause in pattern.split():
        byte_constraints.extend(_parse_clause(clause))

    # Merge byte constraints into aligned 32-bit words (big-endian).
    words = {}
    for byte_index, mask, value in byte_constraints:
        word_offset = (byte_index // 4) * 4
        shift = (3 - (byte_index % 4)) * 8
        word_mask, word_value = words.get(word_offset, (0, 0))
        overlap = word_mask & (mask << shift)
        if overlap and (word_value & overlap) != ((value << shift) & overlap):
            raise PatternError("contradictory constraints at byte %d" % byte_index)
        words[word_offset] = (word_mask | (mask << shift), word_value | (value << shift))
    return sorted((offset, mask, value) for offset, (mask, value) in words.items())


def compile_patterns(patterns):
    """Compile a Classifier configuration (list of pattern strings) into
    a :class:`~repro.classifier.tree.DecisionTree`.

    First match wins; packets matching nothing are dropped (Click's
    Classifier semantics).
    """
    if not patterns:
        raise PatternError("Classifier needs at least one pattern")
    parsed = [parse_pattern(p) for p in patterns]
    builder = TreeBuilder()

    # Compile back-to-front so each pattern's failure path can point at
    # the next pattern's entry.
    entry = FAILURE
    for output in range(len(parsed) - 1, -1, -1):
        words = parsed[output]
        success = make_leaf(output)
        if words is None:
            # `-`: everything reaching here matches.
            entry = success
            continue
        fail = entry
        node = success
        for offset, mask, value in reversed(words):
            node = builder.node(offset, mask, value, node, fail)
        entry = node
    return builder.finish(entry, noutputs=len(parsed))
