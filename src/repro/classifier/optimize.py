"""Decision-tree optimizations.

"We sped up their inner loops by restricting decision tree operations,
and implemented an extensive set of decision tree optimizations, similar
to BPF+'s, to optimize them further." (§3)

Three passes, in the spirit of BPF+'s global data-flow optimizations:

- **path-sensitive pruning**: walking from the root, each branch records
  what is already known about the packet word it tested; later tests
  whose outcome is implied by those facts are bypassed (redundant-
  predicate elimination).
- **node deduplication**: structurally identical subtrees are shared
  (hash-consing), undoing the duplication pruning can introduce.
- **unreachable-node elimination**: renumbering keeps only live nodes.

``graft`` combines adjacent classifiers' trees — the transformation
*click-fastclassifier* applies before code generation (§4).
"""

from __future__ import annotations

from .tree import FAILURE, DecisionTree, Expr, TreeBuilder, is_leaf

_EXPANSION_LIMIT_FACTOR = 16


class _Facts:
    """Knowledge about packet words along one root-to-node path."""

    __slots__ = ("known", "negative")

    def __init__(self, known=None, negative=None):
        self.known = dict(known or {})  # offset -> (mask, value)
        self.negative = frozenset(negative or ())  # {(offset, mask, value)}

    def decide(self, offset, mask, value):
        """True/False if the test's outcome is implied; None otherwise."""
        known_mask, known_value = self.known.get(offset, (0, 0))
        overlap = known_mask & mask
        if (known_value & overlap) != (value & overlap):
            return False  # contradicts what we know
        if overlap == mask:
            return True  # fully determined and consistent
        if (offset, mask, value) in self.negative:
            return False
        return None

    def assume_true(self, offset, mask, value):
        known_mask, known_value = self.known.get(offset, (0, 0))
        new_known = dict(self.known)
        new_known[offset] = (known_mask | mask, (known_value & ~mask) | value)
        return _Facts(new_known, self.negative)

    def assume_false(self, offset, mask, value):
        return _Facts(self.known, self.negative | {(offset, mask, value)})


def prune_redundant_tests(tree):
    """Path-sensitive redundant-predicate elimination.

    Returns a new tree; bails out (returning the input) if the rewritten
    tree would explode past a size limit, since path duplication is
    exponential in the worst case.
    """
    if not tree.exprs:
        return tree
    builder = TreeBuilder()
    limit = max(64, len(tree.exprs) * _EXPANSION_LIMIT_FACTOR)
    budget = [limit]
    memo = {}

    def walk(pos, facts):
        if is_leaf(pos):
            return pos
        key = (pos, tuple(sorted(facts.known.items())), facts.negative)
        if key in memo:
            return memo[key]
        expr = tree.exprs[pos - 1]
        decided = facts.decide(expr.offset, expr.mask, expr.value)
        if decided is True:
            result = walk(expr.yes, facts)
        elif decided is False:
            result = walk(expr.no, facts)
        else:
            if budget[0] <= 0:
                raise _Overflow()
            budget[0] -= 1
            yes_entry = walk(
                expr.yes, facts.assume_true(expr.offset, expr.mask, expr.value)
            )
            no_entry = walk(
                expr.no, facts.assume_false(expr.offset, expr.mask, expr.value)
            )
            if yes_entry == no_entry and not isinstance(yes_entry, str):
                result = yes_entry  # test no longer matters
            else:
                result = builder.node(expr.offset, expr.mask, expr.value, yes_entry, no_entry)
        memo[key] = result
        return result

    try:
        root = walk(1, _Facts())
    except _Overflow:
        return tree
    return builder.finish(root, noutputs=tree._noutputs)


class _Overflow(Exception):
    pass


def deduplicate_nodes(tree):
    """Merge structurally identical nodes (bottom-up hash-consing)."""
    if not tree.exprs:
        return tree
    # Process nodes in reverse index order; in builder output, successors
    # always have higher indices than... not guaranteed for DAGs with
    # back-edges — trees here are acyclic by construction, so iterate to
    # fixpoint instead.
    canonical = {i + 1: i + 1 for i in range(len(tree.exprs))}
    changed = True
    while changed:
        changed = False
        seen = {}
        for index in range(len(tree.exprs), 0, -1):
            expr = tree.exprs[index - 1]
            yes = canonical[expr.yes] if not is_leaf(expr.yes) else expr.yes
            no = canonical[expr.no] if not is_leaf(expr.no) else expr.no
            key = (expr.offset, expr.mask, expr.value, yes, no)
            if key in seen:
                if canonical[index] != seen[key]:
                    canonical[index] = seen[key]
                    changed = True
            else:
                seen[key] = canonical[index]
    if all(canonical[i + 1] == i + 1 for i in range(len(tree.exprs))):
        return remove_unreachable(tree)

    def redirect(target):
        return target if is_leaf(target) else canonical[target]

    exprs = [
        Expr(e.offset, e.mask, e.value, redirect(e.yes), redirect(e.no)) for e in tree.exprs
    ]
    return remove_unreachable(DecisionTree(exprs, noutputs=tree._noutputs))


def remove_unreachable(tree):
    """Drop nodes unreachable from the root and renumber."""
    if not tree.exprs:
        return tree
    reachable = []
    index_map = {}
    stack = [1]
    while stack:
        pos = stack.pop()
        if is_leaf(pos) or pos in index_map:
            continue
        index_map[pos] = len(reachable) + 1
        reachable.append(pos)
        expr = tree.exprs[pos - 1]
        stack.append(expr.no)
        stack.append(expr.yes)

    def redirect(target):
        return target if is_leaf(target) else index_map[target]

    exprs = []
    for pos in reachable:
        expr = tree.exprs[pos - 1]
        exprs.append(Expr(expr.offset, expr.mask, expr.value, redirect(expr.yes), redirect(expr.no)))
    return DecisionTree(exprs, constant_output=tree.constant_output, noutputs=tree._noutputs)


def optimize(tree):
    """The full pipeline: prune, deduplicate, drop dead nodes — iterated
    until it stops helping."""
    current = remove_unreachable(tree)
    for _ in range(4):
        pruned = deduplicate_nodes(prune_redundant_tests(current))
        if len(pruned.exprs) >= len(current.exprs) and pruned.signature() == current.signature():
            break
        # Keep the smaller tree (pruning can enlarge before dedup shrinks).
        if len(pruned.exprs) <= len(current.exprs):
            current = pruned
        else:
            break
    return current


def remap_outputs(tree, mapping):
    """Rewrite leaf outputs through ``mapping`` (output -> output);
    outputs mapped to None become drops."""
    from .tree import FAILURE, make_leaf

    def redirect(target):
        if target is FAILURE:
            return FAILURE
        if is_leaf(target):
            mapped = mapping.get(-target, -target)
            return FAILURE if mapped is None else make_leaf(mapped)
        return target

    if not tree.exprs:
        mapped = mapping.get(tree.constant_output, tree.constant_output)
        return DecisionTree([], constant_output=mapped)
    exprs = [
        Expr(e.offset, e.mask, e.value, redirect(e.yes), redirect(e.no)) for e in tree.exprs
    ]
    noutputs = max([m for m in mapping.values() if m is not None] + [0]) + 1
    return DecisionTree(exprs, noutputs=noutputs)


def graft(first, port, second, output_map):
    """Combine adjacent classifiers: packets leaving ``first`` on
    ``port`` continue into ``second``.  ``output_map[j]`` gives the
    combined-tree output for ``second``'s output ``j``; ``first``'s other
    outputs keep their numbers.  Returns the combined tree (un-optimized;
    callers run :func:`optimize`)."""
    builder = TreeBuilder()

    def leaf_of_second(output):
        if output is FAILURE:
            return FAILURE
        mapped = output_map[-output]
        return FAILURE if mapped is None else -mapped

    def import_tree(tree, leaf_fn, memo):
        def conv(target):
            if is_leaf(target):
                return leaf_fn(target)
            if target not in memo:
                expr = tree.exprs[target - 1]
                memo[target] = builder.node(
                    expr.offset, expr.mask, expr.value, conv(expr.yes), conv(expr.no)
                )
            return memo[target]

        if not tree.exprs:
            if tree.constant_output is None:
                return FAILURE
            return leaf_fn(-tree.constant_output)
        return conv(1)

    second_root = import_tree(second, leaf_of_second, {})

    def leaf_of_first(target):
        if target is FAILURE:
            return FAILURE
        if -target == port:
            return second_root
        return target

    first_root = import_tree(first, leaf_of_first, {})
    n_outputs = max(
        [o for o in range(first.noutputs) if o != port]
        + [m for m in output_map.values() if m is not None]
        + [0]
    ) + 1
    return builder.finish(first_root, noutputs=n_outputs)
