"""Classifier decision trees.

Click's generic classifiers (*Classifier*, *IPFilter*, *IPClassifier*)
compile textual filter specifications into "decision tree structures
traversed on each packet" (§3).  A tree is an array of expressions; each
expression masks a 32-bit word of packet data and compares it with a
constant, branching to another expression or to a leaf.  Following
Click's encoding, branch targets that are zero or negative are leaves:
target ``t <= 0`` means "emit on output ``-t``" (and a special failure
leaf means "drop").

The array form is exactly what *click-fastclassifier* extracts from its
harness run (§4): :meth:`DecisionTree.to_text` prints the human-readable
dump, and :meth:`DecisionTree.from_text` parses it back.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

FAILURE = None  # sentinel leaf: no output (packet dropped)


class TreeError(ValueError):
    """Raised for malformed trees or tree dumps."""


@dataclass
class Expr:
    """One decision-tree node: ``(data[offset:offset+4] & mask) == value``.

    ``offset`` is always 4-byte aligned; ``mask``/``value`` are 32-bit
    big-endian word values.  ``yes``/``no`` are successor indices when
    positive, or leaves: 0 and negative encode output ``-target``, and
    ``FAILURE`` (None) encodes "drop".
    """

    offset: int
    mask: int
    value: int
    yes: object
    no: object

    def test(self, data):
        if self.offset + 4 <= len(data):
            word = int.from_bytes(data[self.offset:self.offset + 4], "big")
        elif self.offset < len(data):
            chunk = bytes(data[self.offset:]) + b"\x00" * (self.offset + 4 - len(data))
            word = int.from_bytes(chunk, "big")
        else:
            word = 0
        return (word & self.mask) == self.value

    def key(self):
        """Structural identity (for node sharing and tree signatures)."""
        return (self.offset, self.mask, self.value, self.yes, self.no)


def is_leaf(target):
    """True for leaf branch targets (outputs and the failure leaf)."""
    return target is FAILURE or (isinstance(target, int) and target <= 0)


def leaf_output(target):
    """The output port a leaf emits on, or None for the failure leaf."""
    if target is FAILURE:
        return None
    return -target


def make_leaf(output):
    """Encode output ``output`` (or None for drop) as a branch target."""
    if output is None:
        return FAILURE
    if output < 0:
        raise TreeError("output ports are non-negative")
    return -output


class DecisionTree:
    """An executable classifier decision tree.

    ``exprs[0]`` is the root (a tree with no expressions is a constant
    classifier, emitting ``constant_output`` for every packet).
    """

    def __init__(self, exprs=None, constant_output=None, noutputs=None):
        self.exprs = list(exprs or [])
        self.constant_output = constant_output
        self._noutputs = noutputs
        self.validate()

    # -- execution ---------------------------------------------------------

    def match(self, data):
        """Classify ``data``; returns the output port or None (drop).

        This is the interpreted traversal — the memory-walking inner loop
        of Figure 3a that *click-fastclassifier* replaces with code.
        """
        if not self.exprs:
            return self.constant_output
        pos = 1
        while pos > 0:
            expr = self.exprs[pos - 1]
            pos_or_leaf = expr.yes if expr.test(data) else expr.no
            if pos_or_leaf is FAILURE:
                return None
            pos = pos_or_leaf
        return -pos

    def steps(self, data):
        """Number of expressions traversed classifying ``data`` (the cost
        model charges per step)."""
        if not self.exprs:
            return 0
        count = 0
        pos = 1
        while pos > 0:
            expr = self.exprs[pos - 1]
            count += 1
            target = expr.yes if expr.test(data) else expr.no
            if target is FAILURE:
                return count
            pos = target
        return count

    # -- structure -----------------------------------------------------------

    def validate(self):
        """Check branch targets, alignment, and mask/value consistency."""
        for index, expr in enumerate(self.exprs):
            for target in (expr.yes, expr.no):
                if target is FAILURE:
                    continue
                if not isinstance(target, int):
                    raise TreeError("branch target %r is not an int" % (target,))
                if target > len(self.exprs):
                    raise TreeError(
                        "expr %d branches to %d, past the end" % (index + 1, target)
                    )
            if expr.offset % 4:
                raise TreeError("expr %d offset %d not word-aligned" % (index + 1, expr.offset))
            if expr.value & ~expr.mask & 0xFFFFFFFF:
                raise TreeError("expr %d value has bits outside mask" % (index + 1))

    @property
    def noutputs(self):
        if self._noutputs is not None:
            return self._noutputs
        outputs = [0]
        if not self.exprs and self.constant_output is not None:
            outputs.append(self.constant_output)
        for expr in self.exprs:
            for target in (expr.yes, expr.no):
                if is_leaf(target) and target is not FAILURE:
                    outputs.append(-target)
        return max(outputs) + 1

    def outputs_used(self):
        """The set of output ports some leaf can emit on."""
        used = set()
        if not self.exprs:
            if self.constant_output is not None:
                used.add(self.constant_output)
            return used
        for expr in self.exprs:
            for target in (expr.yes, expr.no):
                if is_leaf(target) and target is not FAILURE:
                    used.add(-target)
        return used

    def signature(self):
        """A canonical hashable form: identical signatures mean identical
        classification behaviour node-for-node, which is what lets
        *click-fastclassifier* share one generated class between
        classifiers with identical decision trees (§4)."""
        return (
            tuple(expr.key() for expr in self.exprs),
            self.constant_output,
            self.noutputs,
        )

    def max_offset(self):
        """One past the last data byte any expression examines (the
        compiled classifier's length guard)."""
        if not self.exprs:
            return 0
        return max(expr.offset + 4 for expr in self.exprs)

    # -- the harness dump format ----------------------------------------------

    _TARGET_PATTERN = r"(\[drop\]|\[\d+\]|step \d+)"
    _LINE_RE = re.compile(
        r"^\s*(\d+)\s+(\d+)/([0-9a-fA-F]{8})%([0-9a-fA-F]{8})"
        r"\s+yes->" + _TARGET_PATTERN + r"\s+no->" + _TARGET_PATTERN + r"\s*$"
    )

    def to_text(self):
        """Human-readable dump, the format Click prints when asked for a
        classifier's program and that click-fastclassifier parses."""
        if not self.exprs:
            if self.constant_output is None:
                return "all->[drop]\n"
            return "all->[%d]\n" % self.constant_output
        lines = []

        def fmt(target):
            if target is FAILURE:
                return "[drop]"
            if target <= 0:
                return "[%d]" % -target
            return "step %d" % target

        for index, expr in enumerate(self.exprs):
            lines.append(
                "%3d  %3d/%08x%%%08x  yes->%s  no->%s"
                % (index + 1, expr.offset, expr.value, expr.mask, fmt(expr.yes), fmt(expr.no))
            )
        return "\n".join(lines) + "\n"

    @classmethod
    def from_text(cls, text):
        """Parse :meth:`to_text` output."""
        lines = [line for line in text.splitlines() if line.strip()]
        if len(lines) == 1 and lines[0].strip().startswith("all->"):
            target = lines[0].strip()[len("all->"):]
            if target == "[drop]":
                return cls([], constant_output=None)
            match = re.match(r"^\[(\d+)\]$", target)
            if not match:
                raise TreeError("bad constant classifier %r" % lines[0])
            return cls([], constant_output=int(match.group(1)))

        def parse_target(text_target):
            if text_target == "[drop]":
                return FAILURE
            match = re.match(r"^\[(\d+)\]$", text_target)
            if match:
                return -int(match.group(1))
            match = re.match(r"^step\s*(\d+)$", text_target)
            if match:
                return int(match.group(1))
            raise TreeError("bad branch target %r" % text_target)

        exprs = []
        for line in lines:
            match = cls._LINE_RE.match(line)
            if not match:
                raise TreeError("bad tree dump line %r" % line)
            _, offset, value, mask, yes_text, no_text = match.groups()
            exprs.append(
                Expr(
                    offset=int(offset),
                    mask=int(mask, 16),
                    value=int(value, 16),
                    yes=parse_target(yes_text),
                    no=parse_target(no_text),
                )
            )
        return cls(exprs)


class TreeBuilder:
    """Constructs decision trees with symbolic branch targets.

    Compilers (the Classifier pattern language, the IPFilter expression
    language) allocate nodes whose targets are node ids or leaves, then
    call :meth:`finish` with the root id; reachable nodes are renumbered
    into the 1-based array form, unreachable ones dropped.
    """

    def __init__(self):
        self._nodes = {}  # id -> [offset, mask, value, yes_target, no_target]
        self._counter = 0

    def node(self, offset, mask, value, yes, no):
        """Allocate a node; ``yes``/``no`` are node ids (strings from this
        builder), leaf encodings from :func:`make_leaf`, or FAILURE."""
        self._counter += 1
        node_id = "n%d" % self._counter
        if offset % 4:
            raise TreeError("node offset %d not word-aligned" % offset)
        self._nodes[node_id] = (offset, mask & 0xFFFFFFFF, value & 0xFFFFFFFF, yes, no)
        return node_id

    def _is_node_id(self, target):
        return isinstance(target, str)

    def finish(self, root, noutputs=None):
        """Build the DecisionTree rooted at ``root`` (a node id or leaf)."""
        if not self._is_node_id(root):
            return DecisionTree([], constant_output=leaf_output(root), noutputs=noutputs)
        # Number reachable nodes in DFS preorder, root first.
        order = []
        index_of = {}
        stack = [root]
        while stack:
            node_id = stack.pop()
            if node_id in index_of:
                continue
            index_of[node_id] = len(order) + 1
            order.append(node_id)
            offset, mask, value, yes, no = self._nodes[node_id]
            # Push no first so the yes branch gets the next index (keeps
            # dumps readable, matching Click's layout tendency).
            for target in (no, yes):
                if self._is_node_id(target) and target not in index_of:
                    stack.append(target)
        exprs = []
        for node_id in order:
            offset, mask, value, yes, no = self._nodes[node_id]
            yes_final = index_of[yes] if self._is_node_id(yes) else yes
            no_final = index_of[no] if self._is_node_id(no) else no
            exprs.append(Expr(offset, mask, value, yes_final, no_final))
        return DecisionTree(exprs, noutputs=noutputs)
