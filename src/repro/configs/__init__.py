"""Reference configurations: the Figure 1 IP router, the minimal
"Simple" configuration, and the §4 firewall."""

from .firewall import FIREWALL_RULES, dns5_packet, firewall_config, firewall_graph, firewall_rule_strings
from .iprouter import (
    FORWARDING_PATH_CLASSES,
    Interface,
    default_interfaces,
    ip_router_config,
    ip_router_graph,
)
from .simple import crossed_pairs, simple_config, simple_graph

__all__ = [
    "FIREWALL_RULES",
    "dns5_packet",
    "firewall_config",
    "firewall_graph",
    "firewall_rule_strings",
    "FORWARDING_PATH_CLASSES",
    "Interface",
    "default_interfaces",
    "ip_router_config",
    "ip_router_graph",
    "crossed_pairs",
    "simple_config",
    "simple_graph",
]
