"""The 17-rule firewall of §4.

"We implemented a 17-rule firewall from *Building Internet Firewalls*
[18, pp 691-2] in IPFilter, then measured IPFilter's CPU cost for a
packet matching the next-to-last rule (DNS-5)."

The book is not redistributable, so this is a faithful reconstruction of
its screened-subnet example: anti-spoofing rules, then four-rule
conversation pairs for SMTP, three for NNTP, two for HTTP, five for DNS,
and a final default deny — 17 rules, with DNS-5 sixteenth (next to
last).  What matters for the experiment is the *shape*: a matching
packet for DNS-5 traverses a large fraction of the decision tree, the
paper's stated best case for click-fastclassifier.
"""

from __future__ import annotations

from ..lang.build import parse_graph

# The perimeter hosts of the book's example network.
MAIL_SERVER = "192.168.1.2"
NEWS_SERVER = "192.168.1.3"
WEB_SERVER = "192.168.1.4"
DNS_SERVER = "192.168.1.5"
NEWS_FEED = "10.5.0.1"
# The protected internal network: distinct from the 192.168.1.0/24
# perimeter subnet the bastion hosts live on, so anti-spoofing doesn't
# swallow their traffic.
INTERNAL_NET = "172.16.0.0/16"

FIREWALL_RULES = [
    # Anti-spoofing.
    ("Spoof-1", "deny src net %s" % INTERNAL_NET),
    ("Spoof-2", "deny src net 127.0.0.0/8"),
    # SMTP in/out conversations via the bastion mail host.
    ("SMTP-1", "allow tcp && dst host %s && dst port 25" % MAIL_SERVER),
    ("SMTP-2", "allow tcp && src host %s && src port 25 && tcp opt ack" % MAIL_SERVER),
    ("SMTP-3", "allow tcp && src host %s && dst port 25" % MAIL_SERVER),
    ("SMTP-4", "allow tcp && dst host %s && src port 25 && tcp opt ack" % MAIL_SERVER),
    # NNTP with the upstream news feed.
    ("NNTP-1", "allow tcp && src host %s && dst host %s && dst port 119" % (NEWS_FEED, NEWS_SERVER)),
    ("NNTP-2", "allow tcp && src host %s && dst host %s && src port 119 && tcp opt ack" % (NEWS_SERVER, NEWS_FEED)),
    ("NNTP-3", "allow tcp && src host %s && dst host %s && dst port 119" % (NEWS_SERVER, NEWS_FEED)),
    # HTTP to the public web server.
    ("HTTP-1", "allow tcp && dst host %s && dst port 80" % WEB_SERVER),
    ("HTTP-2", "allow tcp && src host %s && src port 80 && tcp opt ack" % WEB_SERVER),
    # DNS: UDP both ways, zone transfers over TCP.
    ("DNS-1", "allow udp && dst host %s && dst port 53" % DNS_SERVER),
    ("DNS-2", "allow udp && src host %s && src port 53" % DNS_SERVER),
    ("DNS-3", "allow tcp && dst host %s && dst port 53" % DNS_SERVER),
    ("DNS-4", "allow udp && dst host %s && src port 53" % DNS_SERVER),
    ("DNS-5", "allow tcp && src host %s && src port 53 && tcp opt ack" % DNS_SERVER),
    # Default deny.
    ("Default", "deny all"),
]

assert len(FIREWALL_RULES) == 17
assert FIREWALL_RULES[-2][0] == "DNS-5"


def firewall_rule_strings():
    """The 17 rules as bare IPFilter arguments."""
    return [rule for _, rule in FIREWALL_RULES]


def firewall_config(queue_capacity=64):
    """A filtering bridge: device → IPFilter(17 rules) → device."""
    rules = ",\n    ".join(firewall_rule_strings())
    return (
        "// 17-rule screened-subnet firewall (Building Internet Firewalls).\n"
        "PollDevice(eth0) -> Strip(14) -> fw :: IPFilter(\n    %s)\n"
        " -> Unstrip(14) -> Queue(%d) -> ToDevice(eth1);\n" % (rules, queue_capacity)
    )


def firewall_graph(**kwargs):
    """The firewall configuration, parsed."""
    return parse_graph(firewall_config(**kwargs), "<firewall>")


def dns5_packet():
    """A packet matching rule DNS-5 (the next-to-last rule): a TCP DNS
    reply from the DNS server with ACK set — the §4 measurement packet."""
    from ..net.headers import IP_PROTO_TCP, IPHeader

    ip = IPHeader(src=DNS_SERVER, dst="10.0.0.99", protocol=IP_PROTO_TCP, total_length=40)
    tcp = (
        (53).to_bytes(2, "big")
        + (3456).to_bytes(2, "big")
        + bytes(8)
        + b"\x50\x10"  # data offset 5, ACK
        + bytes(6)
    )
    return ip.pack() + tcp
