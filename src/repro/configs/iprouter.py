"""The standards-compliant Click IP router of Figure 1.

Built as configuration *text*, so the whole language/tool pipeline is
exercised exactly as in the paper.  Two network interfaces by default;
:func:`ip_router_config` generalizes to N interfaces (the evaluation's
P0 testbed has eight).

Per interface *i* the forwarding path is the sixteen elements §3 counts:
PollDevice → Classifier → Paint → Strip → CheckIPHeader → GetIPAddress →
LookupIPRoute → DropBroadcasts → CheckPaint → IPGWOptions → FixIPSrc →
DecIPTTL → IPFragmenter → ARPQuerier → Queue → ToDevice.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang.build import parse_graph


@dataclass(frozen=True)
class Interface:
    """One router interface: device name and addresses."""

    device: str
    ip: str
    ether: str
    network: str  # CIDR served by this interface


def default_interfaces(count=2):
    """The evaluation addressing scheme: interface i serves
    ``(i+1).0.0.0/8`` with router address ``(i+1).0.0.1``."""
    return [
        Interface(
            device="eth%d" % i,
            ip="%d.0.0.1" % (i + 1),
            ether="00:00:C0:4F:71:%02X" % i,
            network="%d.0.0.0/8" % (i + 1),
        )
        for i in range(count)
    ]


def ip_router_config(interfaces=None, queue_capacity=64, mtu=1500, extra_routes=(),
                     answer_pings=False):
    """Figure 1's IP router as Click-language text.

    ``extra_routes`` are additional LookupIPRoute entries (e.g.
    ``"3.0.0.0/8 2.0.0.2 2"`` for a next-hop route), appended after the
    directly-connected routes.  With ``answer_pings``, the host path
    answers ICMP echo requests addressed to the router instead of
    discarding everything (the paper's router hands the host path to
    Linux; this is the closest self-contained equivalent).
    """
    if interfaces is None:
        interfaces = default_interfaces()
    lines = ["// Standards-compliant IP router (Figure 1)."]

    # Shared routing table: host routes to us, then a network route per
    # interface.  Output 0 is the host path (the paper's ToLinux; we
    # discard or answer pings), output i+1 forwards via interface i.
    routes = []
    for interface in interfaces:
        routes.append("%s/32 0" % interface.ip)
    for index, interface in enumerate(interfaces):
        routes.append("%s %d" % (interface.network, index + 1))
    routes.extend(extra_routes)
    lines.append("rt :: LookupIPRoute(%s);" % ", ".join(routes))
    if answer_pings:
        lines.append("rt [0] -> host :: IPClassifier(icmp type echo, -);")
        lines.append("host [0] -> ICMPPingResponder -> rt;")
        lines.append("host [1] -> Discard;")
    else:
        lines.append("rt [0] -> Discard;  // host path")
    lines.append("")

    for index, interface in enumerate(interfaces):
        i = index
        color = index + 1
        ip = interface.ip
        lines.extend(
            [
                "// Interface %d: %s (%s)" % (i, interface.device, ip),
                "c%d :: Classifier(12/0806 20/0001, 12/0806 20/0002, 12/0800, -);" % i,
                "arpq%d :: ARPQuerier(%s, %s);" % (i, ip, interface.ether),
                "arpr%d :: ARPResponder(%s %s);" % (i, ip, interface.ether),
                "out%d :: Queue(%d);" % (i, queue_capacity),
                "td%d :: ToDevice(%s);" % (i, interface.device),
                "PollDevice(%s) -> c%d;" % (interface.device, i),
                "c%d [0] -> arpr%d -> out%d;" % (i, i, i),
                "c%d [1] -> [1] arpq%d;" % (i, i),
                "c%d [3] -> Discard;" % i,
                "c%d [2] -> Paint(%d) -> Strip(14)" % (i, color),
                "    -> CheckIPHeader(18.26.4.255 2.255.255.255)",
                "    -> GetIPAddress(16) -> rt;",
                "rt [%d] -> db%d :: DropBroadcasts" % (i + 1, i),
                "    -> cp%d :: CheckPaint(%d)" % (i, color),
                "    -> gio%d :: IPGWOptions(%s)" % (i, ip),
                "    -> FixIPSrc(%s)" % ip,
                "    -> dt%d :: DecIPTTL" % i,
                "    -> fr%d :: IPFragmenter(%d)" % (i, mtu),
                "    -> [0] arpq%d -> out%d -> td%d;" % (i, i, i),
                "cp%d [1] -> ICMPError(%s, redirect, host-redirect) -> rt;" % (i, ip),
                "gio%d [1] -> ICMPError(%s, parameterproblem, 0) -> rt;" % (i, ip),
                "dt%d [1] -> ICMPError(%s, timeexceeded, transit) -> rt;" % (i, ip),
                "fr%d [1] -> ICMPError(%s, unreachable, needfrag) -> rt;" % (i, ip),
                "",
            ]
        )
    return "\n".join(lines) + "\n"


def ip_router_graph(interfaces=None, **kwargs):
    """The same configuration, parsed."""
    return parse_graph(ip_router_config(interfaces, **kwargs), "<iprouter>")


def two_router_network():
    """Routers A and B joined point-to-point on network 2 (the §7.2
    topology of Figure 7): A serves network 1, B serves network 3, and
    each has a next-hop route through the other."""
    from collections import OrderedDict

    a_interfaces = [
        Interface("eth0", "1.0.0.1", "00:00:C0:AA:00:00", "1.0.0.0/8"),
        Interface("eth1", "2.0.0.1", "00:00:C0:AA:00:01", "2.0.0.0/8"),
    ]
    b_interfaces = [
        Interface("eth0", "2.0.0.2", "00:00:C0:BB:00:00", "2.0.0.0/8"),
        Interface("eth1", "3.0.0.1", "00:00:C0:BB:00:01", "3.0.0.0/8"),
    ]
    routers = OrderedDict(
        [
            ("A", ip_router_graph(a_interfaces, extra_routes=["3.0.0.0/8 2.0.0.2 2"])),
            ("B", ip_router_graph(b_interfaces, extra_routes=["1.0.0.0/8 2.0.0.1 1"])),
        ]
    )
    return routers, a_interfaces, b_interfaces


FORWARDING_PATH_CLASSES = [
    "PollDevice",
    "Classifier",
    "Paint",
    "Strip",
    "CheckIPHeader",
    "GetIPAddress",
    "LookupIPRoute",
    "DropBroadcasts",
    "CheckPaint",
    "IPGWOptions",
    "FixIPSrc",
    "DecIPTTL",
    "IPFragmenter",
    "ARPQuerier",
    "Queue",
    "ToDevice",
]
