"""The "Simple" configuration (§8.3): "the simplest possible Click
configuration, consisting only of device handling and a single packet
queue" per interface pair.  Its MLFFR bounds what the I/O system allows;
the optimized IP routers approach it."""

from __future__ import annotations

from ..lang.build import parse_graph


def simple_config(pairs=((("eth0", "eth1")),), queue_capacity=64):
    """device → Queue → device for each (in, out) pair."""
    lines = ["// The minimal configuration: device handling and a queue."]
    for index, (rx, tx) in enumerate(pairs):
        lines.append(
            "PollDevice(%s) -> q%d :: Queue(%d) -> ToDevice(%s);"
            % (rx, index, queue_capacity, tx)
        )
    return "\n".join(lines) + "\n"


def simple_graph(pairs=(("eth0", "eth1"),), **kwargs):
    """The Simple configuration, parsed."""
    return parse_graph(simple_config(pairs, **kwargs), "<simple>")


def crossed_pairs(count=2):
    """The evaluation wiring: interface i receives, interface
    (i + 1) mod count transmits."""
    return [("eth%d" % i, "eth%d" % ((i + 1) % count)) for i in range(count)]
