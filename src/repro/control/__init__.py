"""The control plane: incremental configuration updates on a live
router.

§5.1's hot-swap installs "an entirely new configuration" for any
change; under control-plane churn (route flaps, ACL pushes) that price
is paid thousands of times a second for deltas that touch one table.
:class:`ControlPlane` routes each update by its shape instead: pure
data deltas patch compiled tables in place under the live fast path,
and structural deltas fall back to a hot-swap *scoped* by the graph
diff, recompiling only the chains that can reach a changed element.
"""

from .plane import ControlPlane, ControlPlaneError

__all__ = ["ControlPlane", "ControlPlaneError"]
