"""``click-update``: replay control-plane updates against a live router.

Builds the base configuration (loopback devices for every referenced
device), wraps it in a :class:`~repro.control.ControlPlane`, applies
each update in order, and prints the resulting
:class:`~repro.elements.hotswap.SwapReport` — which updates were
patched in place, which needed a scoped hot-swap, how many compiled
chains each swap reused, and the per-phase wall times.

Updates come from ``--update FILE`` (a full replacement configuration;
the delta is computed against the live graph), ``--routes NAME=TABLE``
(an in-place route-table patch), and ``--rules NAME=RULES`` (an
in-place classifier patch), applied left to right in command-line
order.  ``--diff-only`` prints each update's delta without building a
router.
"""

from __future__ import annotations

import argparse
import json
import sys


def _build_router(text, mode, batch):
    from ..elements.devices import LoopbackDevice
    from ..elements.runtime import Router
    from ..core.toolchain import load_config
    from ..runtime import ExecutionProfile
    from ..verify.oracle import device_names

    devices = {
        name: LoopbackDevice(name, tx_capacity=1 << 30)
        for name in device_names(text)
    }
    profile = ExecutionProfile(mode=mode, batch=batch)
    graph = load_config(text, "<click-update>")
    return Router(graph, devices=devices, profile=profile)


def main(argv=None):
    """``click-update`` CLI; exit status 1 when any update was rejected."""
    parser = argparse.ArgumentParser(
        prog="click-update",
        description="replay control-plane updates against a live router "
        "and report how each one was installed",
    )
    parser.add_argument("config", help="base configuration file")
    parser.add_argument(
        "--update",
        action="append",
        default=[],
        metavar="FILE",
        dest="updates",
        help="replacement configuration to apply (repeatable, in order)",
    )
    parser.add_argument(
        "--routes",
        action="append",
        default=[],
        metavar="NAME=TABLE",
        help="in-place route-table patch, e.g. rt='1.0.0.0/8 1, ...'",
    )
    parser.add_argument(
        "--rules",
        action="append",
        default=[],
        metavar="NAME=RULES",
        help="in-place classifier-rule patch, e.g. cls='12/0800, -'",
    )
    parser.add_argument(
        "--mode",
        choices=("reference", "fast", "adaptive", "fdd"),
        default="fast",
        help="execution profile to run the router under (default: fast)",
    )
    parser.add_argument("--batch", action="store_true", help="batched dispatch")
    parser.add_argument(
        "--diff-only",
        action="store_true",
        help="print each update's delta against the base without building a router",
    )
    parser.add_argument("--json", action="store_true", help="machine-readable reports")
    args = parser.parse_args(argv)

    try:
        with open(args.config) as handle:
            base_text = handle.read()
    except OSError as exc:
        parser.error("cannot read %s: %s" % (args.config, exc))

    # (label, kind, payload) in command-line order: full configs first
    # come from --update; --routes/--rules append after them.
    updates = []
    for path in args.updates:
        try:
            with open(path) as handle:
                updates.append((path, "config", handle.read()))
        except OSError as exc:
            parser.error("cannot read %s: %s" % (path, exc))
    for kind, flag in (("routes", args.routes), ("rules", args.rules)):
        for spec in flag:
            name, eq, value = spec.partition("=")
            if not eq or not name:
                parser.error("--%s wants NAME=VALUE, got %r" % (kind, spec))
            updates.append(("%s %s" % (kind, name), kind, (name, value)))
    if not updates:
        parser.error("nothing to do: give --update, --routes, or --rules")

    if args.diff_only:
        from ..core.toolchain import load_config
        from ..graph.diff import diff_graphs

        base = load_config(base_text, args.config)
        results = []
        for label, kind, payload in updates:
            if kind != "config":
                results.append({"update": label, "delta": "in-place %s patch" % kind})
                continue
            delta = diff_graphs(base, load_config(payload, label))
            results.append({"update": label, "delta": delta.as_dict()})
        if args.json:
            json.dump(results, sys.stdout, indent=2, sort_keys=True)
            sys.stdout.write("\n")
        else:
            for result in results:
                delta = result["delta"]
                summary = delta if isinstance(delta, str) else "structural" if delta["structural"] else "pure-data"
                print("%s: %s" % (result["update"], summary))
        return 0

    from . import ControlPlane, ControlPlaneError
    from ..lang.lexer import split_config_args

    router = _build_router(base_text, args.mode, args.batch)
    plane = ControlPlane(router)
    reports = []
    status = 0
    for label, kind, payload in updates:
        try:
            if kind == "config":
                report = plane.apply(payload)
            elif kind == "routes":
                report = plane.update_routes(payload[0], split_config_args(payload[1]))
            else:
                report = plane.update_rules(payload[0], split_config_args(payload[1]))
        except ControlPlaneError as exc:
            reports.append({"update": label, "error": str(exc)})
            status = 1
            continue
        entry = report.as_dict()
        entry["update"] = label
        reports.append(entry)

    if args.json:
        json.dump(reports, sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        for entry in reports:
            if "error" in entry:
                print("%s: REJECTED: %s" % (entry["update"], entry["error"]))
            else:
                print(
                    "%s: %s in %.2f ms (%d patched, %d recompiled, %d reused)"
                    % (
                        entry["update"],
                        entry["kind"],
                        entry["total_seconds"] * 1e3,
                        entry["elements_patched"],
                        entry["chains_recompiled"],
                        entry["chains_reused"],
                    )
                )
        print(
            "%d update(s): %d in-place, %d swaps, %d rejected"
            % (
                len(reports),
                sum(1 for e in reports if e.get("kind") == "in-place"),
                sum(1 for e in reports if e.get("kind", "").endswith("swap")),
                sum(1 for e in reports if "error" in e),
            )
        )
    return status


if __name__ == "__main__":
    sys.exit(main())
