"""ControlPlane: route each configuration update by its shape.

A delta that only rewrites the configuration strings of data-table
elements (route tables, live classifier rules) never changes the graph
the fast-path compiler saw — the generated chains bind the *containers*
(the route memo, the one-slot matcher cell), so new tables can be
patched under them in place, with only the adaptive engine's
speculations deoptimized for the touched elements.  Anything that adds,
removes, rewires, or re-classes elements goes through the transactional
hot-swap, scoped by the same delta so untouched chains are spliced from
the old compile instead of regenerated.

Every update returns the shared :class:`~repro.elements.hotswap.SwapReport`
(kind, phase timings, chains recompiled vs reused, elements patched),
and ``apply`` keeps a bounded history of them for the churn benchmark.
"""

from __future__ import annotations

import time
from collections import deque

from ..elements.classifiers import _TreeClassifier
from ..elements.hotswap import SwapReport, hotswap
from ..elements.routing import _IPRouteTable
from ..graph.diff import GraphDelta, diff_graphs
from ..lang.lexer import split_config_args

__all__ = ["ControlPlane", "ControlPlaneError"]


class ControlPlaneError(RuntimeError):
    """An update was rejected before anything was applied; the live
    router is untouched and still serving."""


def _patch_kind(element):
    """How a live element accepts new configuration data in place:
    ``"routes"`` (IP route tables), ``"rules"`` (tree classifiers whose
    matcher rides in a patchable cell), or None (not patchable — the
    update needs a hot-swap).  Generated fast classifiers bake their
    tree at class level, so a rule change on one is structural."""
    if isinstance(element, _IPRouteTable):
        return "routes"
    if type(element).push is _TreeClassifier.push:
        return "rules"
    return None


class ControlPlane:
    """Incremental updates on one live router.

    The wrapped router's *identity* changes across structural updates
    (hot-swap builds a new Router); ``plane.router`` always names the
    live one.  ``apply`` accepts a :class:`~repro.graph.diff.GraphDelta`,
    a configuration graph, or configuration text, and returns the
    :class:`~repro.elements.hotswap.SwapReport` describing what was
    done.
    """

    def __init__(self, router, history=256):
        self._router = router
        self.history = deque(maxlen=history)

    @property
    def router(self):
        """The live router (changes identity across structural swaps)."""
        return self._router

    # -- update entry points -----------------------------------------------

    def apply(self, update, validate=True):
        """Install one update.  ``update`` is a
        :class:`~repro.graph.diff.GraphDelta`, a configuration graph,
        or configuration text; the delta is computed against the live
        graph when a full configuration is given.  Pure-data deltas
        patch tables in place; anything structural (or touching a
        non-patchable element) runs a delta-scoped hot-swap.  Returns
        the :class:`SwapReport`; raises :class:`ControlPlaneError`
        (nothing applied) on a bad update."""
        started = time.perf_counter()
        delta, new_graph = self._resolve(update)
        diff_seconds = time.perf_counter() - started

        if delta.empty:
            report = SwapReport("no-op", profile=self._router.profile.label)
            report.delta = delta.summary()
            report.phases["diff"] = diff_seconds
            self.history.append(report)
            return report

        if not delta.structural:
            report = self._try_patch(delta, diff_seconds)
            if report is not None:
                self.history.append(report)
                return report

        report = self._swap(delta, new_graph, diff_seconds, validate)
        self.history.append(report)
        return report

    def apply_batch(self, updates, validate=True):
        """Apply a sequence of updates in order; returns their reports.
        Each update sees the state left by the previous one (a batch is
        a burst of control-plane traffic, not a transaction)."""
        return [self.apply(update, validate=validate) for update in updates]

    def update_routes(self, name, routes):
        """Convenience: replace element ``name``'s route table with the
        given route strings, in place when possible."""
        return self.apply(self._config_delta(name, routes))

    def update_rules(self, name, rules):
        """Convenience: replace element ``name``'s classifier rules
        with the given pattern strings, in place when possible."""
        return self.apply(self._config_delta(name, rules))

    # -- internals ---------------------------------------------------------

    def _config_delta(self, name, args):
        from ..graph.diff import ElementChange

        graph = self._router.graph
        decl = graph.elements.get(name)
        if decl is None:
            raise ControlPlaneError("no element named %r in the live router" % name)
        new_config = ", ".join(args)
        return GraphDelta(
            changed=[
                ElementChange(
                    name, decl.class_name, decl.class_name, decl.config, new_config
                )
            ]
        )

    def resolve(self, update):
        """Public form of the update resolver: ``(delta,
        new_graph_or_None)`` for a delta, graph, or text update.  The
        sharded data plane resolves once and stages the same delta on
        every shard."""
        return self._resolve(update)

    def _resolve(self, update):
        """``(delta, new_graph_or_None)`` for any accepted update form.
        ``new_graph`` stays None for delta inputs until a structural
        path needs it (then it is materialized via ``apply_to``)."""
        graph = getattr(self._router, "graph", None)
        if graph is None:
            raise ControlPlaneError("the live router carries no graph to diff against")
        if isinstance(update, GraphDelta):
            return update, None
        if isinstance(update, str):
            from ..core.toolchain import load_config

            update = load_config(update, "<update>")
        if update.element_classes:
            from ..core.flatten import flatten

            update = flatten(update)
        return diff_graphs(graph, update), update

    def stage_patch(self, delta):
        """Phase one of the in-place path: parse and validate every
        changed element's new data without mutating anything.  Returns
        the staged batch for :meth:`commit_patch`, or None when some
        element is not data-patchable (the update needs a hot-swap).
        Raises :class:`ControlPlaneError` — live router untouched — on
        a rejected table.  Split out of the old monolithic patch so a
        multi-shard commit can stage on *every* shard before any shard
        commits."""
        router = self._router
        staged = []
        for change in delta.changed:
            element = router.elements.get(change.name)
            if element is None:
                return None
            kind = _patch_kind(element)
            if kind is None:
                return None
            args = split_config_args(change.new_config)
            try:
                if kind == "routes":
                    prepared = element.check_routes(args)
                else:
                    prepared = element.check_rules(args)
            except Exception as exc:
                raise ControlPlaneError(
                    "update for %r rejected; nothing applied: %s: %s"
                    % (change.name, type(exc).__name__, exc)
                ) from exc
            staged.append((element, kind, prepared, change))
        return staged

    def commit_patch(self, staged, delta):
        """Phase two: install a batch staged by :meth:`stage_patch` —
        commit the prepared tables, sync config strings and the live
        graph, and deopt adaptive chains that speculated on the old
        data.  Returns the ``"in-place"`` :class:`SwapReport`."""
        router = self._router
        started = time.perf_counter()
        graph = router.graph
        for element, kind, prepared, change in staged:
            if kind == "routes":
                element.commit_routes(prepared)
            else:
                element.commit_rules(prepared)
            element.config_string = change.new_config
            decl = graph.elements.get(change.name)
            if decl is not None:
                decl.config = change.new_config
            if router.adaptive is not None:
                # Compiled chains may have baked in the old table
                # (hot-route constants, guarded classifier arms, FDD
                # diagrams); the engine demotes or rebuilds exactly the
                # chains that can reach this element.
                router.adaptive.on_table_patch(change.name, kind)

        report = SwapReport("in-place", profile=router.profile.label)
        report.delta = delta.summary()
        report.phases["patch"] = time.perf_counter() - started
        report.elements_patched = len(staged)
        return report

    def _try_patch(self, delta, diff_seconds):
        """The in-place path: stage every changed element's new data,
        then commit the whole batch.  Returns the report, or None when
        the update is not patchable in place."""
        started = time.perf_counter()
        staged = self.stage_patch(delta)
        if staged is None:
            return None
        stage_seconds = time.perf_counter() - started
        report = self.commit_patch(staged, delta)
        report.phases["diff"] = diff_seconds
        report.phases["stage"] = stage_seconds
        report.phases.move_to_end("patch")
        return report

    def _swap(self, delta, new_graph, diff_seconds, validate):
        """The structural path: a transactional hot-swap scoped by the
        delta (untouched chains splice from the old compile)."""
        if new_graph is None:
            new_graph = delta.apply_to(self._router.graph)
        try:
            result = hotswap(self._router, new_graph, validate=validate, delta=delta)
        except Exception as exc:
            raise ControlPlaneError(
                "structural update failed; old router still serving: %s: %s"
                % (type(exc).__name__, exc)
            ) from exc
        self._router = result.router
        report = result.report
        report.phases["diff"] = diff_seconds
        report.phases.move_to_end("diff", last=False)
        return report
