"""The paper's contribution: optimization tools over router
configurations, composable like compiler passes.

- :func:`fastclassifier` — classifiers → generated code (§4)
- :func:`devirtualize` — virtual transfers → direct calls (§6.1)
- :func:`xform` — subgraph pattern replacement (§6.2)
- :func:`undead` — dead-code elimination (§6.3)
- :func:`align` — alignment data-flow and Align insertion (§7.1)
- :func:`combine` / :func:`uncombine` / :func:`eliminate_arp` — the
  multiple-router tools (§7.2)
- :func:`check`, :func:`flatten`, :func:`mkmindriver`,
  :func:`pretty_html` — supporting tools (§7)

Every optimizer follows one calling convention — ``tool(graph,
**options) -> RouterGraph`` — and carries an ``as_pass(**options)``
factory producing a :class:`Pass` for the :class:`Pipeline` pass
manager (per-pass timing, graph deltas, inter-pass validation; see
:mod:`repro.core.pipeline` and docs/PIPELINE.md).
"""

from .align import align, compute_alignments
from .check import check, click_check
from .combine import Link, combine, eliminate_arp, uncombine
from .devirtualize import devirtualize, make_devirtualize_tool, sharing_classes
from .fastclassifier import fastclassifier
from .flatten import flatten
from .mkmindriver import make_minimal_class_table, mkmindriver, required_classes
from .patterns import CLEANUP_PATTERNS, STANDARD_PATTERNS, arp_elimination_pattern
from .pipeline import (
    NAMED_PIPELINES,
    Pass,
    PassError,
    PassRecord,
    Pipeline,
    PipelineReport,
    PipelineResult,
    PipelineWarning,
    named_pipeline,
    tool_api,
)
from .pretty import pretty_html
from .specialize import DevirtualizedMixin, make_devirtualized_class
from .toolchain import chain, load_config, run_tool_on_text, save_config, tool_specs
from .undead import undead
from .xform import PatternPair, make_xform_tool, xform

__all__ = [
    "align",
    "compute_alignments",
    "check",
    "click_check",
    "Link",
    "combine",
    "eliminate_arp",
    "uncombine",
    "devirtualize",
    "make_devirtualize_tool",
    "sharing_classes",
    "fastclassifier",
    "flatten",
    "make_minimal_class_table",
    "mkmindriver",
    "required_classes",
    "CLEANUP_PATTERNS",
    "STANDARD_PATTERNS",
    "arp_elimination_pattern",
    "pretty_html",
    "DevirtualizedMixin",
    "make_devirtualized_class",
    "chain",
    "load_config",
    "run_tool_on_text",
    "save_config",
    "tool_specs",
    "undead",
    "xform",
    "PatternPair",
    "make_xform_tool",
    "NAMED_PIPELINES",
    "Pass",
    "PassError",
    "PassRecord",
    "Pipeline",
    "PipelineReport",
    "PipelineResult",
    "PipelineWarning",
    "named_pipeline",
    "tool_api",
]
