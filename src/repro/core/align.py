"""click-align: packet-data alignment for strict architectures (§7.1).

On x86, unaligned word loads from packet data are legal and fast; "on
architectures such as ARM, unaligned accesses crash the machine".  Click
asks the user to ensure elements receive packets with the alignment they
expect; inserting the fixes by hand "would be tedious and error-prone",
so this tool automates it:

1. a forward data-flow analysis ("patterned after data-flow analyses in
   the compiler literature") computes the alignment of packet data at
   every input port, joining over all paths;
2. ``Align`` elements are inserted exactly where an element's required
   alignment conflicts with what arrives (heuristics keep the count
   minimal: one Align per deficient input, none where alignment already
   holds);
3. redundant existing ``Align`` elements are spliced out; and
4. an ``AlignmentInfo`` element records the resulting guarantees.

As the paper admits (§5.3), per-class alignment behaviour is built into
the tool itself rather than scraped from element source — with the
suggested escape hatch: an element class may carry ``align_transfer`` /
``required_alignment`` attributes (the "specifications embedded in the
element code as comments"), which override the built-in table.
"""

from __future__ import annotations

from math import gcd

from ..lang.lexer import split_config_args
from .flatten import flatten
from .pipeline import tool_api

# ---------------------------------------------------------------------------
# The alignment lattice: (modulus, offset) with modulus in {1, 2, 4};
# (1, 0) is "unknown alignment" (bottom).


class Alignment:
    """A (modulus, offset) alignment fact about packet data."""

    __slots__ = ("modulus", "offset")

    def __init__(self, modulus, offset):
        self.modulus = modulus
        self.offset = offset % modulus if modulus else 0

    @classmethod
    def unknown(cls):
        return cls(1, 0)

    def shift(self, nbytes):
        """Alignment after the data pointer moves forward ``nbytes``
        (strip) or backward (negative: push)."""
        return Alignment(self.modulus, (self.offset + nbytes) % self.modulus)

    def join(self, other):
        """Coarsest alignment consistent with both (lattice meet over
        information: moduli are powers of two)."""
        modulus = gcd(self.modulus, other.modulus)
        while modulus > 1 and (self.offset % modulus) != (other.offset % modulus):
            modulus //= 2
        return Alignment(modulus, self.offset % modulus)

    def satisfies(self, required):
        """True if data with this alignment meets ``required``."""
        return (
            self.modulus % required.modulus == 0
            and self.offset % required.modulus == required.offset
        )

    def __eq__(self, other):
        return (
            isinstance(other, Alignment)
            and self.modulus == other.modulus
            and self.offset == other.offset
        )

    def __hash__(self):
        return hash((self.modulus, self.offset))

    def __repr__(self):
        return "Alignment(%d, %d)" % (self.modulus, self.offset)


# ---------------------------------------------------------------------------
# Built-in per-class behaviour (the unsatisfactory-but-practical §5.3
# reality).  Each transfer maps the input alignment to the output
# alignment; FRESH means the element emits freshly allocated packets.

FRESH = Alignment(4, 0)  # Packet() buffers are word-aligned with our headroom


def _strip_transfer(decl):
    nbytes = int(split_config_args(decl.config)[0])
    return lambda alignment: alignment.shift(nbytes)


def _unstrip_transfer(decl):
    nbytes = int(split_config_args(decl.config)[0])
    return lambda alignment: alignment.shift(-nbytes)


def _align_transfer(decl):
    args = split_config_args(decl.config)
    fixed = Alignment(int(args[0]), int(args[1]))
    return lambda alignment: fixed


def _ether_push_transfer(decl):
    return lambda alignment: alignment.shift(-14)


def _fresh_transfer(decl):
    return lambda alignment: FRESH


_TRANSFERS = {
    "Strip": _strip_transfer,
    "Unstrip": _unstrip_transfer,
    "Align": _align_transfer,
    "EtherEncap": _ether_push_transfer,
    "ARPQuerier": _ether_push_transfer,  # encapsulates on its IP path
    "ICMPError": _fresh_transfer,
    "IPInputCombo": lambda decl: (lambda alignment: alignment.shift(14)),
}

# Alignments produced by source elements (fresh DMA buffers).
_SOURCE_ALIGNMENT = {
    "PollDevice": FRESH,
    "FromDevice": FRESH,
    "InfiniteSource": FRESH,
    "RatedSource": FRESH,
}

# Per-class alignment requirements on input data.
_REQUIREMENTS = {
    "CheckIPHeader": Alignment(4, 0),
    "IPClassifier": Alignment(4, 0),
    "IPFilter": Alignment(4, 0),
    "IPGWOptions": Alignment(4, 0),
    "IPInputCombo": Alignment(4, 2),  # Ethernet header; IP at +14
}


def _transfer_for(decl, classes):
    cls = classes.get(decl.class_name)
    if cls is not None and hasattr(cls, "align_transfer"):
        # The element-embedded escape hatch the paper suggests.
        return lambda alignment: cls.align_transfer(decl, alignment)
    factory = _TRANSFERS.get(decl.class_name)
    if factory is not None:
        return factory(decl)
    return lambda alignment: alignment  # identity for everything else


def _requirement_for(decl, classes):
    cls = classes.get(decl.class_name)
    if cls is not None and getattr(cls, "required_alignment", None) is not None:
        modulus, offset = cls.required_alignment
        return Alignment(modulus, offset)
    return _REQUIREMENTS.get(decl.class_name)


def compute_alignments(graph, classes=None):
    """The forward data-flow: alignment arriving at each element (joined
    over its input ports and predecessors)."""
    classes = classes if classes is not None else _runtime_classes(graph)
    transfers = {name: _transfer_for(decl, classes) for name, decl in graph.elements.items()}

    arriving = {}
    for name, decl in graph.elements.items():
        if decl.class_name in _SOURCE_ALIGNMENT:
            arriving[name] = _SOURCE_ALIGNMENT[decl.class_name]

    changed = True
    iterations = 0
    while changed:
        changed = False
        iterations += 1
        if iterations > 4 * (len(graph.elements) + 1):
            break  # lattice has height <= 3; this is just a guard
        for conn in graph.connections:
            upstream = arriving.get(conn.from_element)
            source_decl = graph.elements[conn.from_element]
            if source_decl.class_name in _SOURCE_ALIGNMENT:
                out_alignment = _SOURCE_ALIGNMENT[source_decl.class_name]
            elif upstream is None:
                continue
            else:
                out_alignment = transfers[conn.from_element](upstream)
            current = arriving.get(conn.to_element)
            merged = out_alignment if current is None else current.join(out_alignment)
            if merged != current:
                arriving[conn.to_element] = merged
                changed = True
    return arriving


def _runtime_classes(graph):
    from ..elements.registry import ELEMENT_CLASSES
    from ..elements.runtime import compile_archive_classes

    classes = dict(ELEMENT_CLASSES)
    classes.update(compile_archive_classes(graph.archive))
    return classes


@tool_api()
def align(graph):
    """The tool: insert the minimal Aligns, drop redundant ones, and
    record an AlignmentInfo."""
    result = flatten(graph) if graph.element_classes else graph.copy()
    classes = _runtime_classes(result)

    # Remove existing redundant Aligns first (their effect is recomputed
    # from scratch below).
    arriving = compute_alignments(result, classes)
    for decl in list(result.elements.values()):
        if decl.class_name != "Align":
            continue
        incoming_alignment = arriving.get(decl.name)
        args = split_config_args(decl.config)
        wanted = Alignment(int(args[0]), int(args[1]))
        if incoming_alignment is not None and incoming_alignment.satisfies(wanted):
            result.splice_out(decl.name)

    # Insert Aligns where requirements are violated — one element at a
    # time, recomputing the data-flow after each fix, so an Align
    # inserted early on a path satisfies every later requirement on it
    # (the heuristic that "minimizes the number of inserted Aligns").
    from ..graph.visitor import topological_order

    while True:
        arriving = compute_alignments(result, classes)
        violation = None
        for name in topological_order(result):  # fix upstream first
            decl = result.elements[name]
            requirement = _requirement_for(decl, classes)
            if requirement is None:
                continue
            incoming_alignment = arriving.get(decl.name)
            if incoming_alignment is None:
                continue  # no packets ever arrive (dead input)
            if not incoming_alignment.satisfies(requirement):
                violation = (decl, requirement)
                break
        if violation is None:
            break
        decl, requirement = violation
        for conn in list(result.connections_to(decl.name)):
            align_decl = result.add_element(
                None, "Align", "%d, %d" % (requirement.modulus, requirement.offset)
            )
            result.remove_connection(conn)
            result.add_connection(conn.from_element, conn.from_port, align_decl.name, 0)
            result.add_connection(align_decl.name, 0, decl.name, conn.to_port)

    # Clean up Aligns made redundant by fixes further upstream.
    arriving = compute_alignments(result, classes)
    for decl in list(result.elements.values()):
        if decl.class_name != "Align":
            continue
        incoming_alignment = arriving.get(decl.name)
        args = split_config_args(decl.config)
        wanted = Alignment(int(args[0]), int(args[1]))
        if incoming_alignment is not None and incoming_alignment.satisfies(wanted):
            result.splice_out(decl.name)

    # Record the guarantees.
    final = compute_alignments(result, classes)
    entries = []
    for name, alignment in sorted(final.items()):
        if _requirement_for(result.elements[name], classes) is not None:
            entries.append("%s %d %d" % (name, alignment.modulus, alignment.offset))
    if entries:
        existing = [d for d in result.elements.values() if d.class_name == "AlignmentInfo"]
        for decl in existing:
            result.remove_element(decl.name)
        result.add_element(None, "AlignmentInfo", ", ".join(entries))
    return result
