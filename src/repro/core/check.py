"""click-check: semantic validation of router configurations.

Checks what the kernel Click parser would reject — unknown element
classes, illegal port counts, unconnected ports, push/pull conflicts,
configuration-string errors — but with full source locations and without
aborting at the first problem (§5.2)."""

from __future__ import annotations

from ..errors import ErrorCollector
from ..graph.ports import PULL, PUSH, ProcessingError, resolve_processing
from .flatten import flatten
from .toolchain import tool_specs


def check(graph, specs=None, collector=None, check_configs=True):
    """Validate ``graph``; returns the ErrorCollector.

    ``check_configs`` additionally instantiates each element class (when
    its implementation is available) to validate configuration strings —
    the part of checking that genuinely needs the element code.
    """
    collector = collector or ErrorCollector()
    flat = flatten(graph) if graph.element_classes else graph
    specs = specs or tool_specs(flat)

    for decl in flat.elements.values():
        spec = specs.get(decl.class_name)
        if spec is None:
            collector.error(
                "unknown element class %r (element %s)" % (decl.class_name, decl.name),
                decl.location,
            )
            continue
        ninputs = flat.input_count(decl.name)
        noutputs = flat.output_count(decl.name)
        if not spec.port_counts.inputs_ok(ninputs):
            collector.error(
                "%s (%s) has %d connected input(s); %r allowed"
                % (decl.name, decl.class_name, ninputs, spec.port_counts.text),
                decl.location,
            )
        if not spec.port_counts.outputs_ok(noutputs):
            collector.error(
                "%s (%s) has %d connected output(s); %r allowed"
                % (decl.name, decl.class_name, noutputs, spec.port_counts.text),
                decl.location,
            )

    try:
        resolved = resolve_processing(flat, specs)
    except ProcessingError as exc:
        collector.error(str(exc))
        resolved = None

    if resolved is not None:
        for name, (in_codes, out_codes) in resolved.items():
            for port, code in enumerate(out_codes):
                conns = flat.connections_from(name, port)
                if not conns:
                    collector.error("%s output [%d] is unconnected" % (name, port))
                elif code == PUSH and len(conns) > 1:
                    collector.error(
                        "%s push output [%d] has %d connections" % (name, port, len(conns))
                    )
            for port, code in enumerate(in_codes):
                conns = flat.connections_to(name, port)
                if not conns:
                    collector.error("%s input [%d] is unconnected" % (name, port))
                elif code == PULL and len(conns) > 1:
                    collector.error(
                        "%s pull input [%d] has %d connections" % (name, port, len(conns))
                    )

    if check_configs:
        from ..elements.runtime import compile_archive_classes
        from ..elements.registry import ELEMENT_CLASSES

        classes = dict(ELEMENT_CLASSES)
        classes.update(compile_archive_classes(flat.archive))
        for decl in flat.elements.values():
            cls = classes.get(decl.class_name)
            if cls is None:
                continue  # unknown classes already reported
            try:
                instance = cls(decl.name, decl.config)
            except Exception as exc:  # noqa: BLE001 - reporting, not handling
                collector.error(
                    "%s :: %s: bad configuration: %s" % (decl.name, decl.class_name, exc),
                    decl.location,
                )
                continue
            declared = getattr(instance, "configured_noutputs", None)
            if declared is not None:
                connected = flat.output_count(decl.name)
                if connected < declared:
                    collector.error(
                        "%s (%s) declares %d outputs but only %d are connected "
                        "(output [%d] is unconnected)"
                        % (decl.name, decl.class_name, declared, connected, connected),
                        decl.location,
                    )

    return collector


def click_check(graph):
    """Tool form: returns the graph unchanged, raising on errors."""
    collector = check(graph)
    collector.raise_if_errors()
    return graph
