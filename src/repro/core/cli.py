"""Command-line entry points: each tool as a Unix filter.

"The optimizers read Click router configurations on standard input,
analyze and transform them in various ways, and write the optimized
configurations to standard output.  They are thus easily combined, much
like compiler optimization passes" (§1) — e.g.::

    click-fastclassifier < ip.click | click-xform | click-devirtualize

Every entry point shares one option-parsing and IO path: a positional
``file`` (default stdin), ``-o/--output`` (default stdout), and
``--report FILE`` writing the JSON :class:`~repro.core.pipeline.
PipelineReport` of the run (``-`` sends it to stderr, keeping stdout
clean for the configuration).  ``click-optimize`` runs a whole named
pipeline — ``click-optimize --pipeline paper --report -`` replaces the
four-stage shell pipe above with one command.
"""

from __future__ import annotations

import argparse
import sys

from .align import align
from .check import check
from .devirtualize import devirtualize
from .fastclassifier import fastclassifier
from .flatten import flatten
from .mkmindriver import mkmindriver
from .pipeline import NAMED_PIPELINES, Pass, Pipeline, named_pipeline
from .pretty import pretty_html
from .toolchain import load_config, save_config
from .undead import undead
from .xform import PatternPair, xform


# ---------------------------------------------------------------------------
# The shared option-parsing / IO path.


def _base_parser(description, extra_args=None, pre_args=None):
    """The parser every filter entry point shares: ``file``, ``-o``,
    ``--report``; ``pre_args`` adds positionals before ``file``."""
    parser = argparse.ArgumentParser(description=description)
    if pre_args:
        pre_args(parser)
    parser.add_argument(
        "file", nargs="?", default="-", help="configuration file (default: stdin)"
    )
    parser.add_argument("-o", "--output", default="-", help="output file (default: stdout)")
    parser.add_argument(
        "--report",
        default=None,
        metavar="FILE",
        help="write the JSON pass report here (- for stderr)",
    )
    if extra_args:
        extra_args(parser)
    return parser


def _read_input(path):
    """Read a configuration file, ``-`` meaning stdin."""
    if path == "-":
        return sys.stdin.read()
    with open(path) as handle:
        return handle.read()


def _write_output(path, text):
    """Write output text, ``-`` meaning stdout."""
    if path == "-":
        sys.stdout.write(text)
    else:
        with open(path, "w") as handle:
            handle.write(text)


def _write_report(dest, report):
    """Write the JSON pass report; ``-`` means stderr (stdout carries
    the configuration)."""
    text = report.to_json() + "\n"
    if dest == "-":
        sys.stderr.write(text)
    else:
        with open(dest, "w") as handle:
            handle.write(text)


def _filter_main(make_pipeline, description, argv=None, extra_args=None,
                 pre_args=None, render=save_config, preflight=None):
    """Run one filter entry point: parse options, read, run the
    pipeline ``make_pipeline(args)`` builds, render, write, report."""
    parser = _base_parser(description, extra_args, pre_args)
    args = parser.parse_args(argv)
    if preflight is not None:
        status = preflight(args)
        if status is not None:
            return status
    graph = load_config(_read_input(args.file), args.file)
    pipeline = make_pipeline(args) if make_pipeline else Pipeline([])
    result = pipeline.run(graph)
    _write_output(args.output, render(result.graph))
    if args.report:
        _write_report(args.report, result.report)
    return 0


def _single_pass(make_pass):
    """A pipeline factory wrapping one tool pass."""

    def make_pipeline(args):
        return Pipeline([make_pass(args)])

    return make_pipeline


# ---------------------------------------------------------------------------
# The per-tool filters.


def fastclassifier_main(argv=None):
    """click-fastclassifier CLI."""
    return _filter_main(
        _single_pass(lambda args: fastclassifier.as_pass()),
        "Compile classifiers into specialized code.",
        argv,
    )


def devirtualize_main(argv=None):
    """click-devirtualize CLI."""
    def extra(parser):
        parser.add_argument(
            "-n",
            "--no-devirtualize",
            action="append",
            default=[],
            metavar="ELEMENT",
            help="do not devirtualize this element (repeatable)",
        )

    return _filter_main(
        _single_pass(lambda args: devirtualize.as_pass(exclude=args.no_devirtualize)),
        "Replace virtual packet transfers with direct calls.",
        argv,
        extra_args=extra,
    )


def xform_main(argv=None):
    """click-xform CLI."""
    def extra(parser):
        parser.add_argument(
            "-p",
            "--patterns",
            action="append",
            default=[],
            metavar="FILE",
            help="pattern file: alternating pattern/replacement compound bodies "
            "separated by lines of '%%%%' (default: the standard combo patterns)",
        )

    def make_pass(args):
        if not args.patterns:
            return xform.as_pass()
        from .patterns import STANDARD_PATTERNS

        pairs = list(STANDARD_PATTERNS)
        for path in args.patterns:
            with open(path) as handle:
                pairs.extend(parse_pattern_file(handle.read(), path))
        return xform.as_pass(patterns=pairs)

    return _filter_main(
        _single_pass(make_pass),
        "Replace element collections with combination elements.",
        argv,
        extra_args=extra,
    )


def parse_pattern_file(text, filename="<patterns>"):
    """Pattern files: pattern body, '%%' line, replacement body, '%%',
    next pattern body, ..."""
    sections = [part.strip() for part in text.split("\n%%\n")]
    sections = [part for part in sections if part]
    if len(sections) % 2:
        raise ValueError("%s: odd number of pattern/replacement sections" % filename)
    pairs = []
    for index in range(0, len(sections), 2):
        pairs.append(
            PatternPair.from_texts(
                sections[index], sections[index + 1], name="%s#%d" % (filename, index // 2)
            )
        )
    return pairs


def undead_main(argv=None):
    """click-undead CLI."""
    return _filter_main(
        _single_pass(lambda args: undead.as_pass()),
        "Remove dead code from the configuration.",
        argv,
    )


def align_main(argv=None):
    """click-align CLI."""
    return _filter_main(
        _single_pass(lambda args: align.as_pass()),
        "Insert Align elements for strict-alignment machines.",
        argv,
    )


def flatten_main(argv=None):
    """click-flatten CLI."""
    return _filter_main(
        _single_pass(lambda args: flatten.as_pass()),
        "Compile away compound element abstractions.",
        argv,
    )


def mkmindriver_main(argv=None):
    """click-mkmindriver CLI."""
    return _filter_main(
        _single_pass(lambda args: mkmindriver.as_pass()),
        "Attach a minimal driver manifest.",
        argv,
    )


def pretty_main(argv=None):
    """click-pretty CLI."""
    return _filter_main(
        None, "Pretty-print the configuration as HTML.", argv, render=pretty_html
    )


# ---------------------------------------------------------------------------
# The pipeline driver.


def optimize_main(argv=None):
    """click-optimize CLI: run a whole named pass pipeline in one
    command — ``click-optimize --pipeline paper --report -``."""
    def extra(parser):
        parser.add_argument(
            "--pipeline",
            default="paper",
            metavar="NAME",
            help="named pipeline to run (default: paper; see --list-pipelines)",
        )
        parser.add_argument(
            "--validate",
            action="store_true",
            help="run click-check between passes; fail naming the offending pass",
        )
        parser.add_argument(
            "--list-pipelines",
            action="store_true",
            help="list the named pipelines and exit",
        )
        parser.add_argument(
            "--fast",
            action="store_true",
            help="after the pipeline, compile the optimized router's "
            "runtime fast path and print its report to stderr",
        )
        parser.add_argument(
            "--adaptive",
            action="store_true",
            help="compile the optimized router under the tiered adaptive "
            "engine instead of the static fast path (implies --fast)",
        )
        parser.add_argument(
            "--fdd",
            action="store_true",
            help="compile the optimized router under the forwarding-"
            "decision-diagram engine (classifier trees fused into the "
            "chains) and print its diagram report (implies --fast)",
        )
        parser.add_argument(
            "--profile-report",
            action="store_true",
            help="with --adaptive/--fdd: also print the engine's "
            "per-chain tier/profile report to stderr",
        )
        parser.add_argument(
            "--supervised",
            action="store_true",
            help="attach the resilient supervisor to the compiled router "
            "(implies --fast) and include its resilience report",
        )
        parser.add_argument(
            "--workers",
            type=int,
            default=1,
            metavar="N",
            help="also bring up the optimized router as a sharded data "
            "plane with N worker shards and print its shard report "
            "(implies --fast)",
        )
        parser.add_argument(
            "--shard-backend",
            default="thread",
            choices=("thread", "process"),
            help="worker backend for --workers (default: %(default)s)",
        )
        parser.add_argument(
            "--recovery",
            default=None,
            choices=("buffer", "resteer", "fail-fast"),
            metavar="POLICY",
            help="with --workers: attach the self-healing recovery "
            "manager under this policy (buffer, resteer, fail-fast) and "
            "include its recovery report in the shard section",
        )
        parser.add_argument(
            "--tuned",
            default=None,
            metavar="FILE",
            help="apply a click-tune TunedProfile artifact to the "
            "compiled router (implies the artifact's execution mode "
            "unless --fast/--adaptive/--fdd is given)",
        )

    def preflight(args):
        if args.list_pipelines:
            for name in sorted(NAMED_PIPELINES):
                passes = NAMED_PIPELINES[name]()
                sys.stdout.write(
                    "%-12s %s\n" % (name, " -> ".join(p.name for p in passes))
                )
            return 0
        return None

    parser = _base_parser(
        "Run a named optimization pipeline over the configuration.", extra
    )
    args = parser.parse_args(argv)
    status = preflight(args)
    if status is not None:
        return status
    graph = load_config(_read_input(args.file), args.file)
    pipeline = named_pipeline(args.pipeline, validate="check" if args.validate else None)
    result = pipeline.run(graph)
    _write_output(args.output, save_config(result.graph))
    tuned = None
    if args.tuned:
        from ..tune import TunedProfile

        tuned = TunedProfile.load(args.tuned)
        if not (args.fast or args.adaptive or args.fdd):
            # No explicit tier flag: run under the tier the artifact
            # was searched for.
            if tuned.mode == "adaptive":
                args.adaptive = True
            elif tuned.mode == "fdd":
                args.fdd = True
            else:
                args.fast = True
        fingerprints = (graph.fingerprint(), result.graph.fingerprint())
        if tuned.graph_fingerprint not in fingerprints:
            sys.stderr.write(
                "warning: tuned profile %s was searched against graph "
                "fingerprint %s, not this configuration's %s; applying "
                "anyway\n" % (tuned.key, tuned.graph_fingerprint, fingerprints[0])
            )
    fastpath_section = None
    if (
        args.fast
        or args.adaptive
        or args.fdd
        or args.profile_report
        or args.supervised
        or args.workers > 1
        or tuned is not None
    ):
        text, fastpath_section = _fastpath_report(
            result.graph,
            adaptive=(args.adaptive or args.profile_report) and not args.fdd,
            fdd=args.fdd,
            profile=args.profile_report,
            supervised=args.supervised,
            workers=args.workers,
            shard_backend=args.shard_backend,
            recovery=args.recovery,
            source_graph=graph,
            tuned=tuned,
        )
        sys.stderr.write(text + "\n")
    if args.report:
        _write_report_with_fastpath(args.report, result.report, fastpath_section)
    return 0


def _write_report_with_fastpath(dest, report, fastpath_section):
    """The pipeline's JSON report, extended with a ``fastpath`` section
    (compile time, codegen-cache hit, per-chain generated-code size)
    when the run also compiled one — cache hits show up as a near-zero
    compile time with ``cache_hit: true``."""
    if fastpath_section is None:
        _write_report(dest, report)
        return
    import json

    payload = report.to_dict()
    payload["fastpath"] = fastpath_section
    # Stable key order: fuzz/CI artifacts from repeated runs must diff
    # cleanly, so every dict (pass records, per-chain fastpath entries,
    # adaptive counters) serializes sorted.
    text = json.dumps(payload, indent=2, sort_keys=True, default=str) + "\n"
    if dest == "-":
        sys.stderr.write(text)
    else:
        with open(dest, "w") as handle:
            handle.write(text)


def _format_diagram_report(report):
    """Human-readable rendering of :meth:`FDDEngine.diagram_report`."""
    lines = [
        "forwarding decision diagrams (node budget %d):" % report["node_budget"]
    ]
    for name, info in sorted(report["diagrams"].items()):
        lines.append(
            "  %-24s %3d nodes, %3d paths, gate %d, %d shared loads"
            % (name, info["nodes"], info["paths"], info["gate"], info["loads_saved"])
        )
    totals = report["totals"]
    lines.append(
        "  total: %d diagrams, %d nodes, %d paths, %d shared loads"
        % (
            totals["diagrams"],
            totals["nodes"],
            totals["paths"],
            totals["loads_saved"],
        )
    )
    if report["budget_fallbacks"]:
        lines.append(
            "  budget fallbacks (generic matcher): %s"
            % ", ".join(report["budget_fallbacks"])
        )
    cache = report["codegen_cache"]
    lines.append(
        "  codegen cache: %d entries, %d hits, %d misses"
        % (cache["entries"], cache["hits"], cache["misses"])
    )
    if report["rebuilds"]:
        lines.append("  diagram rebuilds (rules patches): %d" % report["rebuilds"])
    return "\n".join(lines)


def _fastpath_report(
    graph,
    adaptive=False,
    fdd=False,
    profile=False,
    supervised=False,
    workers=1,
    shard_backend="thread",
    recovery=None,
    source_graph=None,
    tuned=None,
):
    """Instantiate the optimized graph (loopback devices stand in for
    whatever hardware the config names) and compile — but do not run —
    its fast path; returns ``(report text, report dict)``.  With
    ``adaptive`` the router comes up under the tiered engine instead,
    and ``profile`` appends its per-chain tier report.  ``supervised``
    attaches the resilient supervisor to the compiled router and appends
    its resilience report (all chains healthy at compile time — the
    section documents the installed boundaries and tier stacks).
    ``workers > 1`` additionally spins the graph up as a sharded data
    plane (one compiled router per shard on ``shard_backend``) and
    appends its shard report — with ``recovery`` set, the plane comes
    up self-healing under that policy and the report carries the
    recovery section; ``source_graph`` — the pre-optimization graph —
    supplies the device names, since the optimizers may rename device
    element classes."""
    from ..elements.devices import LoopbackDevice
    from ..elements.runtime import Router
    from ..runtime import ExecutionProfile

    class AutoDevices(dict):
        # The optimized config can name any hardware; every lookup
        # conjures a loopback stand-in so compilation never depends on
        # the machine this runs on.
        def get(self, name, default=None):
            if name not in self:
                self[name] = LoopbackDevice(name)
            return self[name]

    if fdd:
        run_profile = ExecutionProfile.fdd()
    elif adaptive:
        run_profile = ExecutionProfile.tiered()
    elif supervised:
        run_profile = ExecutionProfile.fast()  # --supervised implies --fast
    else:
        run_profile = ExecutionProfile.reference()
    if supervised:
        run_profile = run_profile.with_supervision()
    if tuned is not None:
        run_profile = run_profile.with_tuning(tuned)
    router = Router(graph, devices=AutoDevices(), profile=run_profile)
    if adaptive or fdd:
        engine = router.adaptive
        compile_report = engine.tier1.report
        text = compile_report.format()
        if profile:
            text += "\n" + engine.profile_report().format()
        section = compile_report.as_dict()
        section["adaptive"] = engine.profile_report().as_dict()
        if fdd:
            diagram = engine.diagram_report()
            section["fdd"] = diagram
            text += "\n" + _format_diagram_report(diagram)
    else:
        if router.fastpath is None:
            router.compile_fastpath()
        compile_report = router.fastpath.report
        text = compile_report.format()
        section = compile_report.as_dict()
    if supervised:
        resilience = router.supervisor.report()
        text += "\n" + resilience.format()
        section["resilience"] = resilience.as_dict()
    if tuned is not None:
        section["tuning"] = {
            "key": tuned.key,
            "workload": tuned.workload,
            "mode": tuned.mode,
            "params": dict(tuned.params),
        }
        text += "\ntuned profile %s (%s/%s) applied" % (
            tuned.key,
            tuned.workload,
            tuned.mode,
        )
    if workers > 1:
        from ..elements.runtime import build_router

        devices = AutoDevices()
        scan = graph if source_graph is None else source_graph
        for decl in scan.elements.values():
            if decl.class_name in ("PollDevice", "FromDevice", "ToDevice"):
                devices.get(decl.config.split(",")[0].strip())
        shard_profile = run_profile.with_workers(workers, shard_backend)
        if recovery is not None:
            shard_profile = shard_profile.with_recovery(recovery)
        sharded = build_router(graph, devices=devices, profile=shard_profile)
        try:
            # One empty scheduler pass spins up (and compiles) every
            # shard so the report documents a live plane.
            sharded.run_tasks(1)
            shard_report = sharded.report()
            text += "\n" + shard_report.format()
            section["shard"] = shard_report.as_dict()
        finally:
            sharded.close()
    return text, section


# ---------------------------------------------------------------------------
# Entry points outside the single-filter mould.


def check_main(argv=None):
    """click-check CLI: exit status 1 on errors."""
    parser = argparse.ArgumentParser(description="Check a configuration for errors.")
    parser.add_argument("file", nargs="?", default="-")
    args = parser.parse_args(argv)
    collector = check(load_config(_read_input(args.file), args.file))
    report = collector.format()
    if report:
        sys.stderr.write(report + "\n")
    return 0 if collector.ok else 1


def combine_main(argv=None):
    """click-combine CLI."""
    parser = argparse.ArgumentParser(
        description="Combine router configurations into one (§7.2)."
    )
    parser.add_argument(
        "-r",
        "--router",
        action="append",
        default=[],
        metavar="NAME=FILE",
        help="a router and its configuration file (repeatable)",
    )
    parser.add_argument(
        "-l",
        "--link",
        action="append",
        default=[],
        metavar="A.dev=B.dev",
        help="a link: router A's device connects to router B's device",
    )
    parser.add_argument("-o", "--output", default="-")
    args = parser.parse_args(argv)

    from collections import OrderedDict

    from .combine import Link, combine

    routers = OrderedDict()
    for spec in args.router:
        name, _, path = spec.partition("=")
        routers[name] = load_config(_read_input(path), path)
    links = []
    for spec in args.link:
        left, _, right = spec.partition("=")
        from_router, _, from_device = left.partition(".")
        to_router, _, to_device = right.partition(".")
        links.append(Link(from_router, from_device, to_router, to_device))
    _write_output(args.output, save_config(combine(routers, links)))
    return 0


def uncombine_main(argv=None):
    """click-uncombine CLI."""
    from .combine import uncombine

    def pre(parser):
        parser.add_argument("router", help="router name to extract")

    return _filter_main(
        _single_pass(
            lambda args: Pass(
                uncombine, name="uncombine", options={"router_name": args.router}
            )
        ),
        "Extract one router from a combined configuration.",
        argv,
        pre_args=pre,
    )


def fuzz_main(argv=None):
    """click-fuzz CLI (lazy: the differential fuzzer pulls in the whole
    runtime, which the pure config filters never need)."""
    from ..verify.cli import main

    return main(argv)


def chaos_main(argv=None):
    """click-chaos CLI (lazy, like click-fuzz)."""
    from ..verify.chaos import main

    return main(argv)


def update_main(argv=None):
    """click-update CLI (lazy, like click-fuzz): replay control-plane
    updates against a live router and report how each installed."""
    from ..control.cli import main

    return main(argv)


def tune_main(argv=None):
    """click-tune CLI (lazy, like click-fuzz): search the runtime knob
    space for a workload and emit a TunedProfile artifact."""
    from ..tune.cli import main

    return main(argv)
