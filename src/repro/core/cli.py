"""Command-line entry points: each tool as a Unix filter.

"The optimizers read Click router configurations on standard input,
analyze and transform them in various ways, and write the optimized
configurations to standard output.  They are thus easily combined, much
like compiler optimization passes" (§1) — e.g.::

    click-fastclassifier < ip.click | click-xform | click-devirtualize
"""

from __future__ import annotations

import argparse
import sys

from .align import align
from .check import check
from .devirtualize import devirtualize
from .fastclassifier import fastclassifier
from .flatten import flatten
from .mkmindriver import mkmindriver
from .patterns import STANDARD_PATTERNS
from .pretty import pretty_html
from .toolchain import load_config, save_config
from .undead import undead
from .xform import PatternPair, xform


def _filter_main(tool, description, argv=None, extra_args=None, needs_args=False):
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "file", nargs="?", default="-", help="configuration file (default: stdin)"
    )
    parser.add_argument("-o", "--output", default="-", help="output file (default: stdout)")
    if extra_args:
        extra_args(parser)
    args = parser.parse_args(argv)

    if args.file == "-":
        text = sys.stdin.read()
    else:
        with open(args.file) as handle:
            text = handle.read()
    graph = load_config(text, args.file)
    result = tool(graph, args) if needs_args else tool(graph)
    output = result if isinstance(result, str) else save_config(result)
    if args.output == "-":
        sys.stdout.write(output)
    else:
        with open(args.output, "w") as handle:
            handle.write(output)
    return 0


def fastclassifier_main(argv=None):
    """click-fastclassifier CLI."""
    return _filter_main(fastclassifier, "Compile classifiers into specialized code.", argv)


def devirtualize_main(argv=None):
    """click-devirtualize CLI."""
    def extra(parser):
        parser.add_argument(
            "-n",
            "--no-devirtualize",
            action="append",
            default=[],
            metavar="ELEMENT",
            help="do not devirtualize this element (repeatable)",
        )

    def tool(graph, args):
        return devirtualize(graph, exclude=args.no_devirtualize)

    return _filter_main(
        tool, "Replace virtual packet transfers with direct calls.", argv,
        extra_args=extra, needs_args=True,
    )


def xform_main(argv=None):
    """click-xform CLI."""
    def extra(parser):
        parser.add_argument(
            "-p",
            "--patterns",
            action="append",
            default=[],
            metavar="FILE",
            help="pattern file: alternating pattern/replacement compound bodies "
            "separated by lines of '%%%%' (default: the standard combo patterns)",
        )

    def tool(graph, args):
        pairs = list(STANDARD_PATTERNS)
        for path in args.patterns:
            with open(path) as handle:
                pairs.extend(parse_pattern_file(handle.read(), path))
        return xform(graph, pairs)

    return _filter_main(
        tool, "Replace element collections with combination elements.", argv,
        extra_args=extra, needs_args=True,
    )


def parse_pattern_file(text, filename="<patterns>"):
    """Pattern files: pattern body, '%%' line, replacement body, '%%',
    next pattern body, ..."""
    sections = [part.strip() for part in text.split("\n%%\n")]
    sections = [part for part in sections if part]
    if len(sections) % 2:
        raise ValueError("%s: odd number of pattern/replacement sections" % filename)
    pairs = []
    for index in range(0, len(sections), 2):
        pairs.append(
            PatternPair.from_texts(
                sections[index], sections[index + 1], name="%s#%d" % (filename, index // 2)
            )
        )
    return pairs


def undead_main(argv=None):
    """click-undead CLI."""
    return _filter_main(undead, "Remove dead code from the configuration.", argv)


def align_main(argv=None):
    """click-align CLI."""
    return _filter_main(align, "Insert Align elements for strict-alignment machines.", argv)


def flatten_main(argv=None):
    """click-flatten CLI."""
    return _filter_main(flatten, "Compile away compound element abstractions.", argv)


def mkmindriver_main(argv=None):
    """click-mkmindriver CLI."""
    return _filter_main(mkmindriver, "Attach a minimal driver manifest.", argv)


def pretty_main(argv=None):
    """click-pretty CLI."""
    return _filter_main(
        lambda graph: pretty_html(graph), "Pretty-print the configuration as HTML.", argv
    )


def check_main(argv=None):
    """click-check CLI: exit status 1 on errors."""
    parser = argparse.ArgumentParser(description="Check a configuration for errors.")
    parser.add_argument("file", nargs="?", default="-")
    args = parser.parse_args(argv)
    text = sys.stdin.read() if args.file == "-" else open(args.file).read()
    collector = check(load_config(text, args.file))
    report = collector.format()
    if report:
        sys.stderr.write(report + "\n")
    return 0 if collector.ok else 1


def combine_main(argv=None):
    """click-combine CLI."""
    parser = argparse.ArgumentParser(
        description="Combine router configurations into one (§7.2)."
    )
    parser.add_argument(
        "-r",
        "--router",
        action="append",
        default=[],
        metavar="NAME=FILE",
        help="a router and its configuration file (repeatable)",
    )
    parser.add_argument(
        "-l",
        "--link",
        action="append",
        default=[],
        metavar="A.dev=B.dev",
        help="a link: router A's device connects to router B's device",
    )
    parser.add_argument("-o", "--output", default="-")
    args = parser.parse_args(argv)

    from collections import OrderedDict

    from .combine import Link, combine

    routers = OrderedDict()
    for spec in args.router:
        name, _, path = spec.partition("=")
        with open(path) as handle:
            routers[name] = load_config(handle.read(), path)
    links = []
    for spec in args.link:
        left, _, right = spec.partition("=")
        from_router, _, from_device = left.partition(".")
        to_router, _, to_device = right.partition(".")
        links.append(Link(from_router, from_device, to_router, to_device))
    output = save_config(combine(routers, links))
    if args.output == "-":
        sys.stdout.write(output)
    else:
        with open(args.output, "w") as handle:
            handle.write(output)
    return 0


def uncombine_main(argv=None):
    """click-uncombine CLI."""
    parser = argparse.ArgumentParser(
        description="Extract one router from a combined configuration."
    )
    parser.add_argument("router", help="router name to extract")
    parser.add_argument("file", nargs="?", default="-")
    parser.add_argument("-o", "--output", default="-")
    args = parser.parse_args(argv)

    from .combine import uncombine

    text = sys.stdin.read() if args.file == "-" else open(args.file).read()
    output = save_config(uncombine(load_config(text, args.file), args.router))
    if args.output == "-":
        sys.stdout.write(output)
    else:
        with open(args.output, "w") as handle:
            handle.write(output)
    return 0
