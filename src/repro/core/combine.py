"""click-combine / click-uncombine: multiple-router configurations (§7.2).

``combine`` encapsulates each router configuration inside a compound
element, then links the compounds through ``RouterLink`` elements: a
link specification like ``("A", "eth1", "B", "eth0")`` says router A's
``ToDevice(eth1)`` connects to router B's ``PollDevice(eth0)``
(Figure 7).  The RouterLink's configuration records both original
device bindings, which is exactly what ``uncombine`` needs to split the
combination apart again.

``eliminate_arp`` implements the paper's sample multiple-router
optimization: combined configurations expose the point-to-point nature
of links, so ARP on those links is unnecessary; a generated click-xform
pattern replaces each link's ARPQuerier with a static EtherEncap using
the peer's known hardware address.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ClickSemanticError
from ..graph.router import CompoundClass, RouterGraph
from ..lang.lexer import split_config_args
from .flatten import flatten
from .patterns import arp_elimination_pattern
from .xform import xform


@dataclass(frozen=True)
class Link:
    """One inter-router link."""

    from_router: str
    from_device: str
    to_router: str
    to_device: str


def _find_device_element(graph, class_names, device):
    for decl in graph.elements.values():
        if decl.class_name in class_names:
            args = split_config_args(decl.config)
            if args and args[0].strip() == device:
                return decl.name
    return None


def combine(routers, links):
    """Build the combined configuration.

    ``routers`` is an ordered mapping router name → RouterGraph;
    ``links`` is a list of :class:`Link`.  Each router becomes a
    compound whose linked ToDevice/PollDevice elements are replaced by
    ``output``/``input`` pseudo ports; instantiations are wired through
    RouterLinks.
    """
    combined = RouterGraph()
    port_maps = {}  # router -> {"out": {device: port}, "in": {device: port}}

    for router_name, graph in routers.items():
        body = flatten(graph) if graph.element_classes else graph.copy()
        out_ports = {}
        in_ports = {}
        body.add_element(CompoundClass.INPUT, "__compound_input__")
        body.add_element(CompoundClass.OUTPUT, "__compound_output__")
        for link in links:
            if link.from_router == router_name and link.from_device not in out_ports:
                element = _find_device_element(body, ("ToDevice",), link.from_device)
                if element is None:
                    raise ClickSemanticError(
                        "router %s has no ToDevice(%s)" % (router_name, link.from_device)
                    )
                port = len(out_ports)
                out_ports[link.from_device] = port
                for conn in list(body.connections_to(element)):
                    body.remove_connection(conn)
                    body.add_connection(
                        conn.from_element, conn.from_port, CompoundClass.OUTPUT, port
                    )
                body.remove_element(element)
            if link.to_router == router_name and link.to_device not in in_ports:
                element = _find_device_element(
                    body, ("PollDevice", "FromDevice"), link.to_device
                )
                if element is None:
                    raise ClickSemanticError(
                        "router %s has no PollDevice(%s)" % (router_name, link.to_device)
                    )
                port = len(in_ports)
                in_ports[link.to_device] = port
                for conn in list(body.connections_from(element)):
                    body.remove_connection(conn)
                    body.add_connection(
                        CompoundClass.INPUT, port, conn.to_element, conn.to_port
                    )
                body.remove_element(element)
        port_maps[router_name] = {"out": out_ports, "in": in_ports}
        compound = CompoundClass(name="Router_%s" % router_name, params=[], body=body)
        combined.element_classes[compound.name] = compound
        combined.add_element(router_name, compound.name)

    for link in links:
        link_decl = combined.add_element(
            None,
            "RouterLink",
            "%s %s, %s %s"
            % (link.from_router, link.from_device, link.to_router, link.to_device),
        )
        combined.add_connection(
            link.from_router,
            port_maps[link.from_router]["out"][link.from_device],
            link_decl.name,
            0,
        )
        combined.add_connection(
            link_decl.name,
            0,
            link.to_router,
            port_maps[link.to_router]["in"][link.to_device],
        )
    return combined


def _parse_link_config(config):
    args = split_config_args(config)
    if len(args) != 2:
        raise ClickSemanticError("bad RouterLink configuration %r" % config)
    from_router, from_device = args[0].split()
    to_router, to_device = args[1].split()
    return Link(from_router, from_device, to_router, to_device)


def uncombine(combined, router_name):
    """Extract one router from a combined configuration, restoring its
    ToDevice/PollDevice elements from the RouterLink records.

    Accepts combined configurations in compound form (fresh from
    ``combine``) or flattened form (after optimization passes, where the
    router's elements carry a ``name/`` prefix).
    """
    links = [
        _parse_link_config(decl.config)
        for decl in combined.elements.values()
        if decl.class_name == "RouterLink"
    ]
    flat = flatten(combined) if combined.element_classes else combined.copy()

    prefix = router_name + "/"
    extracted = RouterGraph()
    mine = {
        name: decl for name, decl in flat.elements.items() if name.startswith(prefix)
    }
    if not mine:
        raise ClickSemanticError("combined configuration has no router %r" % router_name)

    # Optimization passes over the combined graph (e.g. ARP elimination)
    # may have introduced elements without a router prefix; claim any
    # whose neighbours all belong to this router.
    def local_name(name):
        return name[len(prefix):] if name.startswith(prefix) else name.replace("/", "_")

    unclaimed = [
        name
        for name, decl in flat.elements.items()
        if name not in mine and decl.class_name != "RouterLink" and "/" not in name
    ]
    # Claim whole connected components of unprefixed elements whose
    # external (prefixed) neighbours all belong to this router — a
    # replacement subgraph may be several elements wired to each other.
    remaining = set(unclaimed)
    while remaining:
        seed = next(iter(remaining))
        component = {seed}
        frontier = [seed]
        externals = set()
        while frontier:
            current = frontier.pop()
            for conn in flat.connections:
                if current not in (conn.from_element, conn.to_element):
                    continue
                other = conn.to_element if conn.from_element == current else conn.from_element
                if other == current or flat.elements[other].class_name == "RouterLink":
                    continue
                if other in remaining and other not in component:
                    component.add(other)
                    frontier.append(other)
                elif other not in remaining:
                    externals.add(other)
        remaining -= component
        owners = {name.split("/", 1)[0] for name in externals if "/" in name}
        if externals and owners == {router_name} and all(n in mine for n in externals):
            for name in component:
                mine[name] = flat.elements[name]

    for name, decl in mine.items():
        extracted.add_element(local_name(name), decl.class_name, decl.config, decl.location)
    for conn in flat.connections:
        if conn.from_element in mine and conn.to_element in mine:
            extracted.add_connection(
                local_name(conn.from_element),
                conn.from_port,
                local_name(conn.to_element),
                conn.to_port,
            )

    # Restore the device elements for this router's ends of each link.
    for link in links:
        if link.from_router == router_name:
            device = extracted.add_element(None, "ToDevice", link.from_device)
            # Reconnect from the element that fed the link: find the
            # boundary connection in the flat graph.
            for conn in flat.connections:
                if (
                    conn.from_element in mine
                    and flat.elements[conn.to_element].class_name == "RouterLink"
                    and _parse_link_config(flat.elements[conn.to_element].config) == link
                ):
                    extracted.add_connection(
                        local_name(conn.from_element), conn.from_port, device.name, 0
                    )
        if link.to_router == router_name:
            device = extracted.add_element(None, "PollDevice", link.to_device)
            for conn in flat.connections:
                if (
                    conn.to_element in mine
                    and flat.elements[conn.from_element].class_name == "RouterLink"
                    and _parse_link_config(flat.elements[conn.from_element].config) == link
                ):
                    extracted.add_connection(
                        device.name, 0, local_name(conn.to_element), conn.to_port
                    )
    extracted.requirements = list(flat.requirements)
    extracted.archive = dict(flat.archive)
    return extracted


def _ether_address_of(graph, link):
    """The hardware address frames crossing ``link`` should be addressed
    to: the receiving router's address on the receiving device.  Found
    by following the link into the receiving router and reading the
    ARPResponder that answers for that interface (falling back to any of
    the router's ARPQueriers)."""
    link_names = [
        decl.name
        for decl in graph.elements.values()
        if decl.class_name == "RouterLink" and _parse_link_config(decl.config) == link
    ]
    for link_name in link_names:
        for conn in graph.connections_from(link_name):
            entry = conn.to_element  # the receiving router's classifier
            for downstream in graph.connections_from(entry):
                target = graph.elements[downstream.to_element]
                if target.class_name == "ARPResponder":
                    entry_args = split_config_args(target.config)
                    fields = entry_args[0].split() if entry_args else []
                    if len(fields) == 2:
                        return fields[1].strip()
    prefix = link.to_router + "/"
    for decl in graph.elements.values():
        if decl.class_name == "ARPQuerier" and decl.name.startswith(prefix):
            args = split_config_args(decl.config)
            if len(args) == 2:
                return args[1].strip()
    return None


def eliminate_arp(combined):
    """The MR optimization: run ARP-elimination xform patterns over the
    flattened combined configuration, one pattern per link direction,
    each parameterized by the peer's hardware address."""
    flat = flatten(combined) if combined.element_classes else combined.copy()
    links = [
        _parse_link_config(decl.config)
        for decl in flat.elements.values()
        if decl.class_name == "RouterLink"
    ]
    pairs = []
    for link in links:
        # Packets flowing from from_router toward to_router are
        # encapsulated by from_router's ARPQuerier; the peer's address
        # is to_router's on the receiving device.
        peer = _ether_address_of(flat, link)
        if peer is not None:
            link_config = "%s %s, %s %s" % (
                link.from_router, link.from_device, link.to_router, link.to_device,
            )
            pairs.append(arp_elimination_pattern(peer, link_config))
    if not pairs:
        return flat
    return xform(flat, patterns=pairs)
