"""The userlevel driver: run a configuration from the command line.

The analogue of the ``click`` userlevel binary: parse a configuration
(plain or archive), build the runtime router, drive the polling
scheduler for a number of iterations, then report handler values.
Devices named in the configuration are created as loopback devices
unless a pcap file is mapped onto them with ``--device``.

    click-run router.click --iterations 1000 \\
        --device eth0=in.pcap --save-device eth1=out.pcap \\
        --handler c.count
"""

from __future__ import annotations

import argparse
import sys

from ..elements.devices import LoopbackDevice
from ..elements.runtime import Router
from ..net.pcap import read_pcap, write_pcap
from .flatten import flatten
from .toolchain import load_config


def _device_names(graph):
    from ..lang.lexer import split_config_args

    names = set()
    for decl in graph.elements.values():
        if decl.class_name in ("PollDevice", "FromDevice", "ToDevice"):
            args = split_config_args(decl.config)
            if args:
                names.add(args[0].strip())
    return sorted(names)


def run_config(
    text,
    iterations=1000,
    device_captures=None,
    filename="<config>",
):
    """Build and drive a configuration; returns (router, devices)."""
    graph = load_config(text, filename)
    if graph.element_classes:
        graph = flatten(graph)
    devices = {}
    for name in _device_names(graph):
        devices[name] = LoopbackDevice(name, tx_capacity=1 << 30)
    for name, blob in (device_captures or {}).items():
        if name not in devices:
            devices[name] = LoopbackDevice(name, tx_capacity=1 << 30)
        for _, frame in read_pcap(blob):
            devices[name].receive_frame(frame)
    router = Router(graph, devices=devices)
    router.run_tasks(iterations)
    return router, devices


def main(argv=None):
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        description="Run a Click configuration (userlevel driver)."
    )
    parser.add_argument("file", nargs="?", default="-", help="configuration (default stdin)")
    parser.add_argument("-n", "--iterations", type=int, default=1000)
    parser.add_argument(
        "-d", "--device", action="append", default=[], metavar="DEV=PCAP",
        help="feed a device from a pcap capture (repeatable)",
    )
    parser.add_argument(
        "-s", "--save-device", action="append", default=[], metavar="DEV=PCAP",
        help="write a device's transmitted frames to a pcap file",
    )
    parser.add_argument(
        "-H", "--handler", action="append", default=[], metavar="ELEMENT.HANDLER",
        help="print a read handler's value after the run (repeatable)",
    )
    args = parser.parse_args(argv)

    text = sys.stdin.read() if args.file == "-" else open(args.file).read()
    captures = {}
    for spec in args.device:
        name, _, path = spec.partition("=")
        with open(path, "rb") as handle:
            captures[name] = handle.read()

    router, devices = run_config(
        text, iterations=args.iterations, device_captures=captures, filename=args.file
    )

    for spec in args.save_device:
        name, _, path = spec.partition("=")
        frames = devices[name].transmitted if name in devices else []
        with open(path, "wb") as handle:
            handle.write(write_pcap(frames))

    for path in args.handler:
        sys.stdout.write("%s: %s\n" % (path, router.read_handler(path)))
    if not args.handler:
        for name, device in sorted(devices.items()):
            sys.stdout.write("%s: %d transmitted\n" % (name, len(device.transmitted)))
    return 0
