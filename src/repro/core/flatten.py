"""click-flatten: compile away compound-element abstractions.

Every optimizer flattens before analyzing (§6.2: "click-xform, and the
other optimizers, compile away compound element abstractions before
analyzing router configurations.  This gives the optimizers a further
advantage over manual optimization").

Flattening replaces each instantiation of an ``elementclass`` with a
copy of its body: inner elements get ``outer/inner`` names (Click's
convention), ``$parameters`` in configuration strings are substituted
with the instantiation's arguments, and connections through the
``input``/``output`` pseudo elements are spliced to the outside.
"""

from __future__ import annotations

import re

from ..errors import ClickSemanticError
from ..graph.router import CompoundClass
from ..lang.lexer import split_config_args
from .pipeline import tool_api

_INPUT_CLASS = "__compound_input__"
_OUTPUT_CLASS = "__compound_output__"

_MAX_DEPTH = 64


def substitute_params(config, bindings):
    """Replace ``$name`` occurrences in a configuration string."""
    if config is None or not bindings:
        return config

    def replace(match):
        name = match.group(0)
        return bindings.get(name, name)

    return re.sub(r"\$[A-Za-z_][A-Za-z0-9_]*", replace, config)


def _expand_one(graph, name, compound, scope):
    """Expand the compound instantiation ``name`` in place."""
    decl = graph.elements[name]
    args = split_config_args(decl.config)
    if len(args) > len(compound.params):
        raise ClickSemanticError(
            "%s: too many arguments for compound %s (%d given, %d parameters)"
            % (name, compound.name, len(args), len(compound.params))
        )
    bindings = {}
    for index, param in enumerate(compound.params):
        bindings[param] = args[index] if index < len(args) else ""

    body = compound.body
    incoming = graph.connections_to(name)
    outgoing = graph.connections_from(name)
    graph.remove_element(name)

    # Copy inner elements (except pseudo ports) under prefixed names.
    name_map = {}
    for inner in body.elements.values():
        if inner.class_name in (_INPUT_CLASS, _OUTPUT_CLASS):
            continue
        new_name = "%s/%s" % (name, inner.name)
        name_map[inner.name] = new_name
        graph.add_element(
            new_name,
            inner.class_name,
            substitute_params(inner.config, bindings),
            inner.location,
        )

    # Inner connections not involving the pseudo ports.
    input_name = CompoundClass.INPUT
    output_name = CompoundClass.OUTPUT
    for conn in body.connections:
        if conn.from_element in (input_name, output_name) or conn.to_element in (
            input_name,
            output_name,
        ):
            continue
        graph.add_connection(
            name_map[conn.from_element], conn.from_port, name_map[conn.to_element], conn.to_port
        )

    # Splice the boundary: outer packets entering compound port p go to
    # whatever `input [p]` connects to inside, and vice versa for output.
    inner_inputs = {}  # port -> [(element, port)]
    for conn in body.connections:
        if conn.from_element == input_name and conn.to_element != output_name:
            inner_inputs.setdefault(conn.from_port, []).append((conn.to_element, conn.to_port))
    inner_outputs = {}
    for conn in body.connections:
        if conn.to_element == output_name and conn.from_element != input_name:
            inner_outputs.setdefault(conn.to_port, []).append((conn.from_element, conn.from_port))

    # Direct input->output pass-throughs are not representable after
    # flattening without a placeholder; Click handles them with a Null
    # element and so do we (class Idle).
    passthrough = {}
    for conn in body.connections:
        if conn.from_element == input_name and conn.to_element == output_name:
            shim = graph.add_element("%s/passthrough%d" % (name, conn.from_port), "Idle")
            passthrough[("in", conn.from_port)] = shim.name
            inner_inputs.setdefault(conn.from_port, []).append((None, None))
            inner_outputs.setdefault(conn.to_port, []).append((None, None))

    for conn in incoming:
        targets = inner_inputs.get(conn.to_port)
        if not targets:
            raise ClickSemanticError(
                "compound %s has no input port %d (connection from %s)"
                % (compound.name, conn.to_port, conn.from_element)
            )
        for target_element, target_port in targets:
            if target_element is None:
                shim = passthrough[("in", conn.to_port)]
                graph.add_connection(conn.from_element, conn.from_port, shim, 0)
            else:
                graph.add_connection(
                    conn.from_element, conn.from_port, name_map[target_element], target_port
                )
    for conn in outgoing:
        sources = inner_outputs.get(conn.from_port)
        if not sources:
            raise ClickSemanticError(
                "compound %s has no output port %d (connection to %s)"
                % (compound.name, conn.from_port, conn.to_element)
            )
        for source_element, source_port in sources:
            if source_element is None:
                shim = passthrough[("in", conn.from_port)]
                graph.add_connection(shim, 0, conn.to_element, conn.to_port)
            else:
                graph.add_connection(
                    name_map[source_element], source_port, conn.to_element, conn.to_port
                )


@tool_api()
def flatten(graph):
    """Return a flattened copy of ``graph``: no compound classes remain."""
    result = graph.copy()
    depth = 0
    while True:
        # Build the scope of compound classes (file scope only; nested
        # elementclass definitions inside bodies are merged into scope
        # under their compound-qualified lookup, which the elaborator
        # stores flat per body).
        scope = dict(result.element_classes)
        for compound in list(scope.values()):
            for inner_name, inner_compound in compound.body.element_classes.items():
                scope.setdefault(inner_name, inner_compound)
        targets = [
            decl.name for decl in result.elements.values() if decl.class_name in scope
        ]
        if not targets:
            break
        depth += 1
        if depth > _MAX_DEPTH:
            raise ClickSemanticError("compound elements nested too deeply (cycle?)")
        for name in targets:
            if name in result.elements:  # may have been removed by nesting
                _expand_one(result, name, scope[result.elements[name].class_name], scope)
    result.element_classes.clear()
    return result
