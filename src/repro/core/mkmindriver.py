"""click-mkmindriver: the minimal driver manifest for a configuration.

The real tool builds a Click kernel module containing only the element
classes a configuration needs.  Here the "driver" is a manifest listing
exactly those classes (the generated classes bundled in the archive are
already per-configuration), which :func:`make_minimal_class_table`
turns into the restricted class table a Router can be built against —
loading anything else fails, as a minimal driver would.
"""

from __future__ import annotations

from .flatten import flatten
from .pipeline import tool_api

MANIFEST_MEMBER = "mindriver.manifest"


def required_classes(graph):
    """Element classes the configuration instantiates (after
    flattening), sorted."""
    flat = flatten(graph) if graph.element_classes else graph
    return sorted({decl.class_name for decl in flat.elements.values()})


@tool_api()
def mkmindriver(graph):
    """The tool: attach the manifest to the configuration archive."""
    result = flatten(graph) if graph.element_classes else graph.copy()
    manifest = "\n".join(required_classes(result)) + "\n"
    result.archive[MANIFEST_MEMBER] = manifest
    return result


def make_minimal_class_table(graph):
    """A class table containing only the manifest's classes — the
    runtime analogue of linking a minimal driver."""
    from ..elements.registry import ELEMENT_CLASSES
    from ..elements.runtime import compile_archive_classes

    available = dict(ELEMENT_CLASSES)
    available.update(compile_archive_classes(graph.archive))
    needed = required_classes(graph)
    return {name: available[name] for name in needed if name in available}
