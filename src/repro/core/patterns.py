"""The standard click-xform pattern library (§6.2, Figures 4-6).

Three pattern-replacement pairs reduce the IP router's per-interface
forwarding chain from ten general-purpose elements (plus the shared
LookupIPRoute) to two combination elements:

1. Paint → Strip(14) → CheckIPHeader → GetIPAddress(16)
       ⇒ IPInputCombo                        (Figure 4's pair, extended
                                              by GetIPAddress as in
                                              Click's own combo)
2. DropBroadcasts → CheckPaint → IPGWOptions → FixIPSrc → DecIPTTL
       ⇒ IPOutputCombo
3. IPOutputCombo → IPFragmenter  ⇒  IPOutputCombo with an MTU — a
   second-stage pattern that matches the *output of pattern 2*, showing
   how pairs chain.
"""

from __future__ import annotations

from .xform import PatternPair

IP_INPUT_COMBO = PatternPair.from_texts(
    """
    input -> Paint($color)
          -> Strip(14)
          -> CheckIPHeader($badsrc)
          -> GetIPAddress(16)
          -> output;
    """,
    """
    input -> IPInputCombo($color, $badsrc) -> output;
    """,
    name="IPInputCombo",
)

IP_OUTPUT_COMBO = PatternPair.from_texts(
    """
    input -> DropBroadcasts
          -> cp :: CheckPaint($color)
          -> gio :: IPGWOptions($ip)
          -> FixIPSrc($ip)
          -> dt :: DecIPTTL
          -> output;
    cp [1] -> [1] output;
    gio [1] -> [2] output;
    dt [1] -> [3] output;
    """,
    """
    input -> oc :: IPOutputCombo($color, $ip) -> output;
    oc [1] -> [1] output;
    oc [2] -> [2] output;
    oc [3] -> [3] output;
    """,
    name="IPOutputCombo",
)

IP_OUTPUT_COMBO_FRAGMENTER = PatternPair.from_texts(
    """
    input -> oc :: IPOutputCombo($color, $ip)
          -> fr :: IPFragmenter($mtu)
          -> output;
    oc [1] -> [1] output;
    oc [2] -> [2] output;
    oc [3] -> [3] output;
    fr [1] -> [4] output;
    """,
    """
    input -> oc :: IPOutputCombo($color, $ip, $mtu) -> output;
    oc [1] -> [1] output;
    oc [2] -> [2] output;
    oc [3] -> [3] output;
    oc [4] -> [4] output;
    """,
    name="IPOutputComboFragmenter",
)

STANDARD_PATTERNS = [IP_INPUT_COMBO, IP_OUTPUT_COMBO, IP_OUTPUT_COMBO_FRAGMENTER]

# -- peephole cleanups --------------------------------------------------------
#
# Small always-sound simplifications in the spirit of §5.4's peephole
# analogy.  They surface after click-flatten exposes compound internals:
# abstractions often juxtapose inverse or idempotent operations.

STRIP_UNSTRIP = PatternPair.from_texts(
    """
    input -> s :: Strip($n) -> u :: Unstrip($n) -> output;
    """,
    """
    input -> Null -> output;
    """,
    name="StripUnstrip",
)

DOUBLE_PAINT = PatternPair.from_texts(
    """
    input -> a :: Paint($first) -> b :: Paint($second) -> output;
    """,
    """
    input -> Paint($second) -> output;
    """,
    name="DoublePaint",
)

DOUBLE_NULL = PatternPair.from_texts(
    """
    input -> a :: Null -> b :: Null -> output;
    """,
    """
    input -> Null -> output;
    """,
    name="DoubleNull",
)

CLEANUP_PATTERNS = [STRIP_UNSTRIP, DOUBLE_PAINT, DOUBLE_NULL]


def arp_elimination_pattern(peer_ether, link_config):
    """The multiple-router "MR" optimization (§7.2): on a link whose
    point-to-point nature a combined configuration exposes, "there is
    therefore no need for an ARP mechanism on that link".  The pattern
    anchors on the specific RouterLink (so only the link-facing
    ARPQuerier collapses) and replaces it with a static EtherEncap
    addressed to the peer's known hardware address; the ARP-response
    feed is discarded.  Input 2 admits other traffic into the shared
    output queue (the interface's ARPResponder also feeds it)."""
    return PatternPair.from_texts(
        """
        input -> arpq :: ARPQuerier($ip, $eth)
              -> q :: Queue($capacity)
              -> link :: RouterLink(%(link)s) -> output;
        input [1] -> [1] arpq;
        input [2] -> q;
        """
        % {"link": link_config},
        """
        input -> EtherEncap(0x0800, $eth, %(peer)s)
              -> q :: Queue($capacity)
              -> link :: RouterLink(%(link)s) -> output;
        input [1] -> Discard;
        input [2] -> q;
        """
        % {"peer": peer_ether, "link": link_config},
        name="ARPElimination",
    )
