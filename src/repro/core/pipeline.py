"""The pass manager: optimizer tools as observable compiler passes.

The paper's tools compose "much like compiler optimization passes" (§1,
§5).  This module supplies the pass framework that makes the analogy
real:

- :class:`Pass` wraps any tool — a ``RouterGraph -> RouterGraph``
  callable — with a name, bound options, and optional fixpoint
  iteration;
- :class:`Pipeline` runs a sequence of passes, recording per pass the
  wall-clock time, element and connection counts before and after, the
  element classes added or removed, and the archive members generated —
  collected into a :class:`PipelineReport` (printable as a table,
  serializable to JSON);
- ``validate="check"`` runs click-check semantics between passes and
  raises :class:`PassError` naming the offending pass;
- :func:`named_pipeline` builds the standard tool orderings, notably
  ``"paper"`` — fastclassifier → xform → undead → align → devirtualize,
  honouring §6.1's devirtualize-last rule (a :class:`PipelineWarning`
  fires when a pipeline violates it); and
- :func:`tool_api` is the decorator unifying every tool behind one
  calling convention: ``tool(graph, **options)`` plus an
  ``as_pass(**options)`` factory.
"""

from __future__ import annotations

import functools
import json
import time
import warnings
from dataclasses import dataclass, field

from ..errors import ClickSemanticError

#: Default bound on fixpoint iteration (divergence guard).
DEFAULT_MAX_ITERATIONS = 16

#: Passes that rewrite graph structure; devirtualize must follow them
#: (§6.1: it cements the order of elements in the graph).
_STRUCTURAL_PASS_NAMES = {
    "fastclassifier",
    "xform",
    "undead",
    "align",
    "flatten",
    "eliminate-arp",
}


class PassError(ClickSemanticError):
    """A pass failed, or left the configuration invalid; carries the
    name of the offending pass in ``pass_name``."""

    def __init__(self, message, pass_name=None):
        super().__init__(message)
        self.pass_name = pass_name


class PipelineWarning(UserWarning):
    """A pipeline is legal but suspicious (e.g. devirtualize not last)."""


class Pass:
    """One named pipeline stage: a tool plus bound options.

    A Pass is itself a tool (``pass_(graph) -> RouterGraph``), so passes
    nest inside :func:`~repro.core.toolchain.chain` or other pipelines.
    With ``fixpoint=True`` the tool is re-applied until the serialized
    configuration stops changing, bounded by ``max_iterations`` (the
    divergence guard — exceeding it raises :class:`PassError`).
    """

    def __init__(self, tool, name=None, options=None, fixpoint=False,
                 max_iterations=DEFAULT_MAX_ITERATIONS):
        self.tool = tool
        self.name = name or getattr(tool, "pass_name", None) or getattr(
            tool, "__name__", "pass"
        )
        self.options = dict(options or {})
        self.fixpoint = fixpoint
        self.max_iterations = max_iterations
        # chain() labels stages by __name__.
        self.__name__ = self.name

    def apply(self, graph):
        """Apply the tool once."""
        return self.tool(graph, **self.options)

    def run(self, graph):
        """Apply the tool, honouring ``fixpoint``; returns
        ``(graph, iterations)``."""
        if not self.fixpoint:
            return self.apply(graph), 1
        from .toolchain import save_config

        iterations = 0
        text = save_config(graph)
        while True:
            iterations += 1
            if iterations > self.max_iterations:
                raise PassError(
                    "pass %r failed to reach a fixpoint after %d iterations "
                    "(divergence guard; the pass keeps changing the graph)"
                    % (self.name, self.max_iterations),
                    pass_name=self.name,
                )
            graph = self.apply(graph)
            new_text = save_config(graph)
            if new_text == text:
                return graph, iterations
            text = new_text

    def __call__(self, graph):
        """Tool convention: graph in, transformed graph out."""
        return self.run(graph)[0]

    def __repr__(self):
        options = ", ".join("%s=%r" % item for item in sorted(self.options.items()))
        return "Pass(%s%s%s)" % (
            self.name, ", " + options if options else "",
            ", fixpoint" if self.fixpoint else "",
        )


@dataclass(frozen=True)
class PassRecord:
    """What one pass did: wall-clock time and graph deltas."""

    name: str
    seconds: float
    iterations: int
    elements_before: int
    elements_after: int
    connections_before: int
    connections_after: int
    classes_added: tuple = ()
    classes_removed: tuple = ()
    archive_members_added: tuple = ()
    requirements_added: tuple = ()

    @property
    def elements_delta(self):
        """Net change in element count."""
        return self.elements_after - self.elements_before

    @property
    def connections_delta(self):
        """Net change in connection count."""
        return self.connections_after - self.connections_before

    def to_dict(self):
        """The record as JSON-serializable primitives."""
        return {
            "name": self.name,
            "seconds": self.seconds,
            "iterations": self.iterations,
            "elements_before": self.elements_before,
            "elements_after": self.elements_after,
            "elements_delta": self.elements_delta,
            "connections_before": self.connections_before,
            "connections_after": self.connections_after,
            "connections_delta": self.connections_delta,
            "classes_added": list(self.classes_added),
            "classes_removed": list(self.classes_removed),
            "archive_members_added": list(self.archive_members_added),
            "requirements_added": list(self.requirements_added),
        }


class PipelineReport:
    """The structured observation record of one pipeline run: a
    :class:`PassRecord` per pass, printable (:meth:`to_table`) and
    serializable (:meth:`to_json`)."""

    def __init__(self, records=(), name=None):
        self.records = list(records)
        self.name = name

    @property
    def total_seconds(self):
        """Wall-clock time summed over all passes."""
        return sum(record.seconds for record in self.records)

    def __iter__(self):
        return iter(self.records)

    def __len__(self):
        return len(self.records)

    def record(self, name):
        """The first record for the pass called ``name``."""
        for record in self.records:
            if record.name == name:
                return record
        raise KeyError(name)

    def to_dict(self):
        """The report as JSON-serializable primitives."""
        return {
            "pipeline": self.name,
            "total_seconds": self.total_seconds,
            "passes": [record.to_dict() for record in self.records],
        }

    def to_json(self, indent=2):
        """The report as a JSON document (stable key order, so repeated
        runs diff cleanly)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def to_table(self):
        """The report as an aligned plain-text table."""
        headers = ["pass", "ms", "iter", "elements", "connections",
                   "classes", "archive"]
        rows = []
        for record in self.records:
            rows.append([
                record.name,
                "%.2f" % (record.seconds * 1e3),
                "%d" % record.iterations,
                "%d → %d" % (record.elements_before, record.elements_after),
                "%d → %d" % (record.connections_before, record.connections_after),
                "+%d/-%d" % (len(record.classes_added), len(record.classes_removed)),
                ", ".join(record.archive_members_added) or "-",
            ])
        rows.append([
            "total", "%.2f" % (self.total_seconds * 1e3), "", "", "", "", "",
        ])
        widths = [max(len(row[i]) for row in [headers] + rows) for i in range(len(headers))]
        lines = [
            "  ".join(cell.ljust(width) for cell, width in zip(headers, widths)).rstrip(),
            "  ".join("-" * width for width in widths),
        ]
        for row in rows:
            lines.append(
                "  ".join(cell.ljust(width) for cell, width in zip(row, widths)).rstrip()
            )
        return "\n".join(lines)

    def __str__(self):
        return self.to_table()

    def __repr__(self):
        return "PipelineReport(%r, %d passes, %.1f ms)" % (
            self.name, len(self.records), self.total_seconds * 1e3,
        )


@dataclass(frozen=True)
class PipelineResult:
    """What :meth:`Pipeline.run` returns: the transformed graph and the
    :class:`PipelineReport` observed while producing it."""

    graph: object
    report: PipelineReport = field(default_factory=PipelineReport)

    def __iter__(self):
        """Unpack as ``graph, report = pipeline.run(...)``."""
        return iter((self.graph, self.report))


class Pipeline:
    """A pass manager: run a sequence of passes over a RouterGraph,
    observing each one.

    ``passes`` may mix :class:`Pass` objects, unified tools (anything
    with an ``as_pass`` factory), and plain ``graph -> graph`` callables.
    ``validate="check"`` runs click-check semantics after every pass and
    raises :class:`PassError` naming the first pass that leaves the
    configuration invalid.  A pipeline is itself a tool:
    ``pipeline(graph)`` returns just the transformed graph (the report
    remains available as ``pipeline.last_report``).
    """

    def __init__(self, passes, name=None, validate=None, warn_misordered=True):
        self.passes = [self._coerce(item) for item in passes]
        self.name = name
        self.validate = self._check_validate(validate)
        self.last_report = None
        if warn_misordered:
            self._warn_if_misordered()

    @staticmethod
    def _coerce(item):
        if isinstance(item, Pass):
            return item
        if callable(item):
            factory = getattr(item, "as_pass", None)
            if factory is not None:
                return factory()
            return Pass(item)
        raise TypeError("not a pass or tool: %r" % (item,))

    @staticmethod
    def _check_validate(validate):
        if validate not in (None, "check"):
            raise ValueError("validate must be None or 'check', not %r" % (validate,))
        return validate

    def _warn_if_misordered(self):
        names = [pass_.name for pass_ in self.passes]
        if "devirtualize" in names:
            tail = names[names.index("devirtualize") + 1:]
            late = [name for name in tail if name in _STRUCTURAL_PASS_NAMES]
            if late:
                warnings.warn(
                    "devirtualize should be the last optimizer (§6.1: it "
                    "cements element order); %s run(s) after it" % ", ".join(late),
                    PipelineWarning,
                    stacklevel=3,
                )

    def run(self, graph, validate=None):
        """Run every pass over ``graph``; returns a
        :class:`PipelineResult` (graph + report).  ``validate``
        overrides the pipeline's validation mode for this run."""
        validate = self._check_validate(validate) or self.validate
        records = []
        current = graph
        for pass_ in self.passes:
            previous = current
            before = _snapshot(current)
            started = time.perf_counter()
            try:
                current, iterations = pass_.run(current)
            except PassError:
                raise
            except Exception as exc:
                raise PassError(
                    "pass %r failed: %s" % (pass_.name, exc), pass_name=pass_.name
                ) from exc
            elapsed = time.perf_counter() - started
            if validate == "check":
                self._validate_between(current, pass_.name)
            records.append(_record(pass_.name, elapsed, iterations, before, current))
            # Emulate the tools' textual boundary: a re-parse restarts
            # anonymous-name numbering, so the in-memory pipeline must
            # too for its output to match the equivalent shell pipe.
            if current is not previous and hasattr(current, "reset_anon_names"):
                current.reset_anon_names()
        report = PipelineReport(records, name=self.name)
        self.last_report = report
        return PipelineResult(current, report)

    @staticmethod
    def _validate_between(graph, pass_name):
        from .check import check

        collector = check(graph)
        if not collector.ok:
            raise PassError(
                "pass %r produced an invalid configuration:\n%s"
                % (pass_name, collector.format()),
                pass_name=pass_name,
            )

    def __call__(self, graph):
        """Tool convention: graph in, transformed graph out."""
        return self.run(graph).graph

    def __repr__(self):
        return "Pipeline(%s)" % ", ".join(repr(pass_) for pass_ in self.passes)


def _snapshot(graph):
    """The observable state of a graph a PassRecord diffs against."""
    return {
        "elements": len(graph.elements),
        "connections": len(graph.connections),
        "classes": {decl.class_name for decl in graph.elements.values()},
        "archive": set(graph.archive),
        "requirements": set(graph.requirements),
    }


def _record(name, seconds, iterations, before, graph):
    after = _snapshot(graph)
    return PassRecord(
        name=name,
        seconds=seconds,
        iterations=iterations,
        elements_before=before["elements"],
        elements_after=after["elements"],
        connections_before=before["connections"],
        connections_after=after["connections"],
        classes_added=tuple(sorted(after["classes"] - before["classes"])),
        classes_removed=tuple(sorted(before["classes"] - after["classes"])),
        archive_members_added=tuple(sorted(after["archive"] - before["archive"])),
        requirements_added=tuple(sorted(after["requirements"] - before["requirements"])),
    )


def tool_api(name=None, legacy=()):
    """Unify a tool behind the ``tool(graph, **options)`` convention.

    The decorated function keeps working with its legacy positional
    options, but those emit a :class:`DeprecationWarning`; new callers
    pass options by keyword only.  The tool also gains
    ``tool.as_pass(**options)``, a factory producing a bound
    :class:`Pass` (the reserved keywords ``fixpoint`` and
    ``max_iterations`` configure the pass itself).
    """

    def decorate(fn):
        tool_name = name or fn.__name__

        @functools.wraps(fn)
        def tool(graph, *args, **options):
            if args:
                if len(args) > len(legacy):
                    raise TypeError(
                        "%s() takes at most %d positional option(s) (%d given)"
                        % (tool_name, len(legacy), len(args))
                    )
                warnings.warn(
                    "%s(): positional options are deprecated; use keyword "
                    "arguments (%s)"
                    % (
                        tool_name,
                        ", ".join(
                            "%s=..." % param for param in legacy[: len(args)]
                        ),
                    ),
                    DeprecationWarning,
                    stacklevel=2,
                )
                for param, value in zip(legacy, args):
                    if param in options:
                        raise TypeError(
                            "%s() got multiple values for option %r" % (tool_name, param)
                        )
                    options[param] = value
            return fn(graph, **options)

        def as_pass(**options):
            """Build a :class:`Pass` running this tool with ``options``."""
            fixpoint = options.pop("fixpoint", False)
            max_iterations = options.pop("max_iterations", DEFAULT_MAX_ITERATIONS)
            return Pass(
                tool, name=tool_name, options=options,
                fixpoint=fixpoint, max_iterations=max_iterations,
            )

        tool.pass_name = tool_name
        tool.legacy_params = tuple(legacy)
        tool.as_pass = as_pass
        return tool

    return decorate


# ---------------------------------------------------------------------------
# Named standard pipelines.  Factories import the tools lazily: the tool
# modules import this module for tool_api, so top-level imports here
# would be circular.


def _paper_passes():
    """§6.1's full chain, devirtualize last: fastclassifier → xform →
    undead → align → devirtualize."""
    from .align import align
    from .devirtualize import devirtualize
    from .fastclassifier import fastclassifier
    from .undead import undead
    from .xform import xform

    return [
        fastclassifier.as_pass(),
        xform.as_pass(),
        undead.as_pass(),
        align.as_pass(),
        devirtualize.as_pass(),
    ]


def _forwarding_passes():
    """Figure 9's "All" variant: fastclassifier → xform → devirtualize."""
    from .devirtualize import devirtualize
    from .fastclassifier import fastclassifier
    from .xform import xform

    return [fastclassifier.as_pass(), xform.as_pass(), devirtualize.as_pass()]


def _cleanup_passes():
    """Abstraction removal only: flatten → undead."""
    from .flatten import flatten
    from .undead import undead

    return [flatten.as_pass(), undead.as_pass()]


#: Named standard pipelines: name → zero-argument pass-list factory.
NAMED_PIPELINES = {
    "paper": _paper_passes,
    "forwarding": _forwarding_passes,
    "cleanup": _cleanup_passes,
}


def named_pipeline(name, validate=None):
    """Build one of the standard pipelines (see :data:`NAMED_PIPELINES`)."""
    try:
        factory = NAMED_PIPELINES[name]
    except KeyError:
        raise ValueError(
            "unknown pipeline %r (available: %s)"
            % (name, ", ".join(sorted(NAMED_PIPELINES)))
        ) from None
    return Pipeline(factory(), name=name, validate=validate)
