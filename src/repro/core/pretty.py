"""click-pretty: render configurations as HTML or Graphviz dot."""

from __future__ import annotations

import html

from ..lang.unparse import unparse


def pretty_dot(graph, title="click"):
    """A Graphviz digraph of the configuration, elements as record
    nodes labelled name/class, port numbers on the edges."""
    lines = ["digraph %s {" % _dot_id(title), "  rankdir=LR;", "  node [shape=record];"]
    for decl in graph.elements.values():
        config = (decl.config or "").replace("\\", "\\\\").replace('"', '\\"')
        if len(config) > 24:
            config = config[:21] + "..."
        label = "%s\\n%s" % (decl.name, decl.class_name)
        if config:
            label += "(%s)" % config
        lines.append('  %s [label="%s"];' % (_dot_id(decl.name), label))
    for conn in graph.connections:
        attributes = []
        if conn.from_port:
            attributes.append('taillabel="%d"' % conn.from_port)
        if conn.to_port:
            attributes.append('headlabel="%d"' % conn.to_port)
        suffix = " [%s]" % ", ".join(attributes) if attributes else ""
        lines.append(
            "  %s -> %s%s;" % (_dot_id(conn.from_element), _dot_id(conn.to_element), suffix)
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def _dot_id(name):
    safe = "".join(ch if ch.isalnum() else "_" for ch in name)
    return "n_" + safe


def pretty_html(graph, title="Click configuration"):
    """An HTML page: declarations table plus the configuration source,
    with element names anchored and class names highlighted."""
    rows = []
    for decl in graph.elements.values():
        config = html.escape(decl.config) if decl.config else "&nbsp;"
        rows.append(
            '<tr id="e-%s"><td><a href="#e-%s">%s</a></td>'
            "<td><b>%s</b></td><td><code>%s</code></td>"
            "<td>%d in / %d out</td></tr>"
            % (
                html.escape(decl.name),
                html.escape(decl.name),
                html.escape(decl.name),
                html.escape(decl.class_name),
                config,
                graph.input_count(decl.name),
                graph.output_count(decl.name),
            )
        )
    connections = "\n".join(
        "<li><code>%s</code></li>" % html.escape(str(conn)) for conn in graph.connections
    )
    source = html.escape(unparse(graph))
    return (
        "<!DOCTYPE html>\n<html><head><meta charset='utf-8'>"
        "<title>%s</title></head><body>\n"
        "<h1>%s</h1>\n"
        "<h2>Elements</h2>\n"
        "<table border='1'><tr><th>name</th><th>class</th>"
        "<th>configuration</th><th>ports</th></tr>\n%s\n</table>\n"
        "<h2>Connections</h2>\n<ul>\n%s\n</ul>\n"
        "<h2>Source</h2>\n<pre>%s</pre>\n"
        "</body></html>\n"
        % (html.escape(title), html.escape(title), "\n".join(rows), connections, source)
    )
