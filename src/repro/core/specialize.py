"""Shared machinery for tools that generate specialized element classes.

click-devirtualize's generated classes are subclasses of the original
element classes whose packet transfers are direct calls: at the runtime
level, their ports are marked non-virtual (so the cost model charges a
direct call instead of a BTB-predicted indirect call), and the port
lookups that Click resolves at compile time ("``output(0).port()`` was
changed to ``0``") are frozen into cached attributes.
"""

from __future__ import annotations

from ..elements.registry import lookup


class DevirtualizedMixin:
    """Mixin for generated devirtualized classes."""

    devirtualized = True
    generated = True

    def initialize(self):
        super().initialize()
        # Direct calls: transfers out of (and pulls into) this element
        # no longer go through the virtual-function table.
        for port in range(self.noutputs):
            self.output(port).virtual = False
        for port in range(self.ninputs):
            self.input(port).virtual = False


def resolve_base_class(name, generated_classes=None):
    """Find the class a specialized class derives from: among classes
    generated earlier in the tool chain first, then the registry."""
    if generated_classes and name in generated_classes:
        return generated_classes[name]
    cls = lookup(name)
    if cls is None:
        raise KeyError("cannot specialize unknown element class %r" % name)
    return cls


def make_devirtualized_class(base_name, new_class_name, generated_classes=None):
    """Create a devirtualized subclass of ``base_name``."""
    base = resolve_base_class(base_name, generated_classes)
    python_name = "DV_" + new_class_name.replace("@", "_").replace("/", "_")
    return type(python_name, (DevirtualizedMixin, base), {"class_name": new_class_name})
