"""The tool framework: optimizers as composable configuration filters.

"In general, Click optimization tools are programs like
click-fastclassifier that read router configurations on standard input,
analyze and transform the configurations, and output the results on
standard output. ... They are thus easily combined, much like compiler
optimization passes." (§1, §5)

A *tool* here is any callable ``RouterGraph -> RouterGraph``.
:func:`chain` composes them; :func:`run_tool_on_text` adapts a tool to
the textual (archive-aware) stdin/stdout convention the CLI entry points
use.  :mod:`repro.core.pipeline` builds on this convention: a
:class:`~repro.core.pipeline.Pass` is a tool, and a
:class:`~repro.core.pipeline.Pipeline` is a chain that additionally
observes, validates, and reports on every stage.
"""

from __future__ import annotations

from ..elements.registry import default_specs
from ..lang.archive import CONFIG_MEMBER, read_archive
from ..lang.build import parse_graph
from ..lang.unparse import unparse_file


def chain(*tools):
    """Compose tools left to right: ``chain(fc, xf, dv)(graph)`` applies
    fastclassifier, then xform, then devirtualize — devirtualize last,
    as §6.1 prescribes.  ``Pass`` objects compose too; for per-stage
    timing and validation use :class:`repro.core.pipeline.Pipeline`."""

    def composed(graph):
        for tool in tools:
            graph = tool(graph)
        return graph

    composed.__name__ = "chain(%s)" % ", ".join(getattr(t, "__name__", repr(t)) for t in tools)
    return composed


def load_config(text, filename="<stdin>"):
    """Parse configuration text (plain or archive) into a RouterGraph,
    preserving non-config archive members."""
    members = read_archive(text)
    graph = parse_graph(members[CONFIG_MEMBER], filename)
    for name, content in members.items():
        if name != CONFIG_MEMBER:
            graph.archive[name] = content
    return graph


def save_config(graph):
    """Serialize a RouterGraph (with any archive members) to text."""
    return unparse_file(graph)


def run_tool_on_text(tool, text, filename="<stdin>"):
    """The stdin → stdout convention: text in, transformed text out."""
    return save_config(tool(load_config(text, filename)))


def tool_specs(graph):
    """The ClassSpec table a tool should use for ``graph``: the exported
    element specifications plus specs for any generated classes bundled
    in the configuration's archive."""
    from ..elements.runtime import compile_archive_classes

    extra = compile_archive_classes(graph.archive).values()
    return default_specs(extra_classes=extra)
