"""click-undead: dead-code elimination for configurations (§6.3).

Removes

- *StaticSwitch* elements (packets always take the configured branch, so
  the switch collapses to a wire) and their unused branches;
- elements that can never receive a packet: not reachable, following
  connections forward, from any packet source (devices, scheduled
  sources, ICMP generators are reached transitively); and
- elements all of whose packets are provably discarded (chains ending
  only in Discard/Idle with no side effects observed) — conservatively,
  only pure plumbing classes are treated as removable sinks.

Information elements (AlignmentInfo, ScheduleInfo — 0 in / 0 out) are
never dead.  "Generally, click-undead is effective only in the presence
of compound element abstractions, which are the most likely source of
dead code in Click configurations" — so the tool flattens first, like
every other optimizer.
"""

from __future__ import annotations

from ..graph.visitor import forward_reachable
from .flatten import flatten
from .pipeline import tool_api
from .toolchain import tool_specs

# Classes whose elements originate packets (roots for liveness).
SOURCE_CLASSES = {
    "PollDevice",
    "FromDevice",
    "InfiniteSource",
    "RatedSource",
    "TimedSource",
}

# Pure sinks with no externally visible effect: a chain feeding only
# these does no work worth keeping.
PURE_SINK_CLASSES = {"Discard", "Idle"}

# Pure plumbing that may be removed when it only feeds dead sinks.
# (Counter is NOT here: its counts are observable state users read.)
TRANSPARENT_CLASSES = {
    "Tee",
    "Queue",
    "Unqueue",
    "Strip",
    "Unstrip",
    "Paint",
}


def _is_info_element(graph, name, specs):
    spec = specs.get(graph.elements[name].class_name)
    if spec is None:
        return False
    return spec.port_counts.inputs_ok(0) and spec.port_counts.outputs_ok(0) and (
        graph.input_count(name) == 0 and graph.output_count(name) == 0
    )


def _collapse_static_switches(graph):
    changed = False
    for decl in list(graph.elements.values()):
        if decl.class_name != "StaticSwitch" or decl.name not in graph.elements:
            continue
        try:
            active = int((decl.config or "").strip())
        except ValueError:
            continue
        incoming = graph.connections_to(decl.name)
        live = graph.connections_from(decl.name, active) if active >= 0 else []
        graph.remove_element(decl.name)
        for before in incoming:
            for after in live:
                graph.add_connection(
                    before.from_element, before.from_port, after.to_element, after.to_port
                )
        changed = True
    return changed


def _remove_unreachable(graph, specs):
    roots = [
        decl.name
        for decl in graph.elements.values()
        if decl.class_name in SOURCE_CLASSES
    ]
    live = forward_reachable(graph, roots)
    removed = False
    for name in list(graph.elements):
        if name in live:
            continue
        if _is_info_element(graph, name, specs):
            continue
        # Pull-side elements (ToDevice behind a live Queue) are reached
        # through the same forward connection edges, so plain forward
        # reachability covers them.
        graph.remove_element(name)
        removed = True
    return removed


def _remove_dead_sinks(graph, specs):
    """Remove transparent chains that feed only pure sinks."""
    removed = False
    changed = True
    while changed:
        changed = False
        for decl in list(graph.elements.values()):
            name = decl.name
            if name not in graph.elements:
                continue
            if decl.class_name in PURE_SINK_CLASSES:
                # A sink with no inputs at all is dead.
                if not graph.connections_to(name):
                    graph.remove_element(name)
                    removed = changed = True
                continue
            if decl.class_name not in TRANSPARENT_CLASSES:
                continue
            outgoing = graph.connections_from(name)
            if not outgoing:
                continue
            if all(
                graph.elements[c.to_element].class_name in PURE_SINK_CLASSES
                for c in outgoing
            ):
                # Everything this element forwards is discarded; route
                # its inputs straight to a sink by deleting it (its
                # upstream's packets die one hop earlier).
                targets = [(c.to_element, c.to_port) for c in outgoing]
                incoming = graph.connections_to(name)
                graph.remove_element(name)
                for before in incoming:
                    for target_element, target_port in targets:
                        if target_element in graph.elements:
                            graph.add_connection(
                                before.from_element, before.from_port,
                                target_element, target_port,
                            )
                removed = changed = True
    return removed


@tool_api()
def undead(graph):
    """The tool."""
    result = flatten(graph) if graph.element_classes else graph.copy()
    specs = tool_specs(result)
    changed = True
    while changed:
        changed = False
        changed |= _collapse_static_switches(result)
        changed |= _remove_unreachable(result, specs)
        changed |= _remove_dead_sinks(result, specs)
    return result
