"""click-xform: pattern/replacement subgraph transformation (§6.2).

Patterns and replacements are router-configuration fragments written as
compound elements in the Click language, with ``input``/``output``
pseudo elements marking the boundary and ``$variables`` in configuration
strings acting as wildcards that must bind consistently across the
pattern.

A pattern matches a subset of the configuration graph if the subset
contains corresponding elements connected the same way, and connections
into or out of the subset occur only where the pattern's ``input`` and
``output`` ports allow.  Matching is Ullman subgraph isomorphism
(:mod:`repro.graph.subgraph`); replacement splices the replacement body
in, carrying the variable bindings into its configuration strings.
Patterns are applied until no occurrence of any pattern remains.
"""

from __future__ import annotations

import re
import warnings
from dataclasses import dataclass

from ..errors import ClickSemanticError
from ..graph.router import CompoundClass, RouterGraph
from ..graph.subgraph import SubgraphMatcher
from ..lang.build import build_graph
from ..lang.lexer import split_config_args
from ..lang.parser import parse
from .flatten import flatten, substitute_params
from .pipeline import tool_api

_VAR_RE = re.compile(r"^\$[A-Za-z_][A-Za-z0-9_]*$")
_MAX_APPLICATIONS = 10000


@dataclass
class PatternPair:
    """One pattern and its replacement."""

    name: str
    pattern: RouterGraph  # body graph with input/output pseudo elements
    replacement: RouterGraph

    @classmethod
    def from_texts(cls, pattern_text, replacement_text, name="pattern"):
        pattern = build_graph(parse(pattern_text, "<%s>" % name), inside_compound=True)
        replacement = build_graph(
            parse(replacement_text, "<%s-replacement>" % name), inside_compound=True
        )
        return cls(name=name, pattern=pattern, replacement=replacement)


def _match_config(pattern_config, host_config, bindings):
    """Match configuration strings argument by argument; ``$var``
    arguments bind (consistently), literals must be equal.  Returns the
    updated bindings dict or None."""
    pattern_args = split_config_args(pattern_config)
    host_args = split_config_args(host_config)
    if len(pattern_args) != len(host_args):
        return None
    updated = dict(bindings)
    for pattern_arg, host_arg in zip(pattern_args, host_args):
        pattern_arg = pattern_arg.strip()
        host_arg = host_arg.strip()
        if _VAR_RE.match(pattern_arg):
            if pattern_arg in updated and updated[pattern_arg] != host_arg:
                return None
            updated[pattern_arg] = host_arg
        elif pattern_arg != host_arg:
            return None
    return updated


class _Matcher:
    """One pattern applied to one host graph."""

    def __init__(self, pair, host):
        self.pair = pair
        self.host = host
        self.pseudo = {CompoundClass.INPUT, CompoundClass.OUTPUT}

    def find(self):
        """First valid (mapping, bindings) pair, or None."""
        pattern = self.pair.pattern

        def compatible(pattern_decl, host_decl):
            if pattern_decl.class_name != host_decl.class_name:
                return False
            return _match_config(pattern_decl.config, host_decl.config, {}) is not None

        matcher = SubgraphMatcher(pattern, self.host, compatible, exclude=self.pseudo)
        for mapping in matcher.matches():
            bindings = self._consistent_bindings(mapping)
            if bindings is None:
                continue
            if not self._boundary_ok(mapping):
                continue
            if not self._internal_edges_covered(mapping):
                continue
            return mapping, bindings
        return None

    def _consistent_bindings(self, mapping):
        bindings = {}
        for pattern_name, host_name in mapping.items():
            pattern_decl = self.pair.pattern.elements[pattern_name]
            host_decl = self.host.elements[host_name]
            bindings = _match_config(pattern_decl.config, host_decl.config, bindings)
            if bindings is None:
                return None
        return bindings

    def _boundary_ok(self, mapping):
        """Connections crossing the matched subset must occur only where
        the pattern's input/output pseudo elements allow."""
        matched = set(mapping.values())
        inverse = {host: pat for pat, host in mapping.items()}
        allowed_in = {
            (conn.to_element, conn.to_port)
            for conn in self.pair.pattern.connections
            if conn.from_element == CompoundClass.INPUT
        }
        allowed_out = {
            (conn.from_element, conn.from_port)
            for conn in self.pair.pattern.connections
            if conn.to_element == CompoundClass.OUTPUT
        }
        for conn in self.host.connections:
            if conn.to_element in matched and conn.from_element not in matched:
                if (inverse[conn.to_element], conn.to_port) not in allowed_in:
                    return False
            if conn.from_element in matched and conn.to_element not in matched:
                if (inverse[conn.from_element], conn.from_port) not in allowed_out:
                    return False
        return True

    def _internal_edges_covered(self, mapping):
        """Host connections between matched elements must all be images
        of pattern connections (otherwise replacement would drop them)."""
        matched = set(mapping.values())
        pattern_edges = {
            (mapping[c.from_element], c.from_port, mapping[c.to_element], c.to_port)
            for c in self.pair.pattern.connections
            if c.from_element not in self.pseudo and c.to_element not in self.pseudo
        }
        for conn in self.host.connections:
            if conn.from_element in matched and conn.to_element in matched:
                key = (conn.from_element, conn.from_port, conn.to_element, conn.to_port)
                if key not in pattern_edges:
                    return False
        return True

    def apply(self, mapping, bindings):
        """Splice the replacement in for one match."""
        pattern = self.pair.pattern
        replacement = self.pair.replacement

        # Build the replacement body with bindings substituted.
        body = RouterGraph()
        for decl in replacement.elements.values():
            if decl.class_name.startswith("__compound_"):
                continue
            body.add_element(
                "%s@xf" % decl.name,
                decl.class_name,
                substitute_params(decl.config, bindings),
                decl.location,
            )
        for conn in replacement.connections:
            if (
                conn.from_element in (CompoundClass.INPUT, CompoundClass.OUTPUT)
                or conn.to_element in (CompoundClass.INPUT, CompoundClass.OUTPUT)
            ):
                continue
            body.add_connection(
                "%s@xf" % conn.from_element,
                conn.from_port,
                "%s@xf" % conn.to_element,
                conn.to_port,
            )

        # Boundary map: pattern input port k enters pattern element
        # (p, q); replacement input port k enters replacement element
        # (r, s).  Host connections into m(p)[q] must land on r[s].
        boundary = {}
        for conn in pattern.connections:
            if conn.from_element == CompoundClass.INPUT:
                rep_conns = [
                    c
                    for c in replacement.connections
                    if c.from_element == CompoundClass.INPUT and c.from_port == conn.from_port
                ]
                if not rep_conns:
                    raise ClickSemanticError(
                        "pattern %s input %d has no replacement counterpart"
                        % (self.pair.name, conn.from_port)
                    )
                target = rep_conns[0]
                boundary[("in", mapping[conn.to_element], conn.to_port)] = (
                    "%s@xf" % target.to_element,
                    target.to_port,
                )
            if conn.to_element == CompoundClass.OUTPUT:
                rep_conns = [
                    c
                    for c in replacement.connections
                    if c.to_element == CompoundClass.OUTPUT and c.to_port == conn.to_port
                ]
                if not rep_conns:
                    raise ClickSemanticError(
                        "pattern %s output %d has no replacement counterpart"
                        % (self.pair.name, conn.to_port)
                    )
                source = rep_conns[0]
                boundary[("out", mapping[conn.from_element], conn.from_port)] = (
                    "%s@xf" % source.from_element,
                    source.from_port,
                )

        self.host.replace_subgraph(set(mapping.values()), body, boundary)


@tool_api(legacy=("patterns",))
def xform(graph, patterns=None):
    """The tool: apply every pattern pair until fixpoint.

    ``patterns`` defaults to the standard combo set
    (:data:`~repro.core.patterns.STANDARD_PATTERNS`).  Two guards catch
    replacements that re-create their own pattern (the one way the
    fixpoint diverges): a hard application count, and a growth limit — a
    legitimate pattern set never inflates the graph past a few times its
    original size.
    """
    if patterns is None:
        from .patterns import STANDARD_PATTERNS

        patterns = STANDARD_PATTERNS
    pairs = patterns
    result = flatten(graph) if graph.element_classes else graph.copy()
    growth_limit = 4 * len(result.elements) + 64
    applications = 0
    progress = True
    while progress:
        progress = False
        for pair in pairs:
            while True:
                matcher = _Matcher(pair, result)
                found = matcher.find()
                if found is None:
                    break
                matcher.apply(*found)
                progress = True
                applications += 1
                if applications > _MAX_APPLICATIONS or len(result.elements) > growth_limit:
                    raise ClickSemanticError(
                        "click-xform diverged (%d applications, %d elements); "
                        "a replacement likely re-creates its own pattern"
                        % (applications, len(result.elements))
                    )
    return result


def make_xform_tool(pairs):
    """Deprecated alias for ``xform.as_pass(patterns=...)``."""
    warnings.warn(
        "make_xform_tool() is deprecated; use xform.as_pass(patterns=...)",
        DeprecationWarning,
        stacklevel=2,
    )
    return xform.as_pass(patterns=pairs)
