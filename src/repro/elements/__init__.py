"""The element library: every packet-processing class the IP router and
the evaluation configurations use, plus the runtime Router that drives
them.

Importing this package populates the global element registry."""

from . import align, aqm, arp, classifiers, combos, devices, dump, ethernet, hotswap, icmp, infrastructure, ip, ping, routing, scheduling, udpip  # noqa: F401
from .hotswap import HotswapError, SwapReport, SwapResult, hotswap as hotswap_router
from .classifiers import (
    CLASSIFIER_CLASS_NAMES,
    Classifier,
    FastClassifierBase,
    IPClassifier,
    IPFilter,
    make_fast_classifier_class,
)
from .devices import LoopbackDevice
from .element import ConfigError, Element, ElementError, InputPort, OutputPort
from .registry import ELEMENT_CLASSES, default_specs, export_specs, lookup, parse_spec_file, register
from .runtime import Router, build_router, compile_archive_classes

__all__ = [
    "HotswapError",
    "SwapReport",
    "SwapResult",
    "hotswap_router",
    "CLASSIFIER_CLASS_NAMES",
    "Classifier",
    "FastClassifierBase",
    "IPClassifier",
    "IPFilter",
    "make_fast_classifier_class",
    "LoopbackDevice",
    "ConfigError",
    "Element",
    "ElementError",
    "InputPort",
    "OutputPort",
    "ELEMENT_CLASSES",
    "default_specs",
    "export_specs",
    "lookup",
    "parse_spec_file",
    "register",
    "Router",
    "build_router",
    "compile_archive_classes",
]
