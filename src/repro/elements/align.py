"""Alignment elements (§7.1).

``Align`` fixes packet-data alignment with a copy; ``AlignmentInfo``
records what alignments elements may assume.  Both exist so that
click-align can make a configuration safe for strict-alignment
architectures without complicating the packet data model.
"""

from __future__ import annotations

from .element import ConfigError, Element
from .registry import register


@register
class Align(Element):
    """``Align(MODULUS, OFFSET)``: ensure packet data satisfies
    ``address % MODULUS == OFFSET``, copying when it doesn't."""

    class_name = "Align"
    processing = "a/a"
    port_counts = "1/1"

    def configure(self, args):
        if len(args) != 2:
            raise ConfigError("Align(MODULUS, OFFSET)")
        self.modulus = int(args[0])
        self.offset = int(args[1])
        if self.modulus not in (2, 4, 8):
            raise ConfigError("Align modulus must be 2, 4, or 8")
        if not 0 <= self.offset < self.modulus:
            raise ConfigError("Align offset must be in [0, modulus)")
        self.copies = 0

    def simple_action(self, packet):
        if packet.data_alignment() % self.modulus != self.offset % self.modulus:
            packet.realign(self.modulus, self.offset)
            self.copies += 1
        return packet


@register
class AlignmentInfo(Element):
    """Pure specification carrier: ``AlignmentInfo(elt MOD OFF, ...)``
    tells named elements what alignment they can expect.  At run time it
    does nothing; click-align emits it and elements could consult it."""

    class_name = "AlignmentInfo"
    processing = "a/a"
    port_counts = "0/0"

    def configure(self, args):
        self.entries = {}
        for arg in args:
            fields = arg.split()
            if len(fields) != 3:
                raise ConfigError("bad AlignmentInfo entry %r" % arg)
            name, modulus, offset = fields
            self.entries[name] = (int(modulus), int(offset))
