"""Active queue management: RED.

RED is the paper's §6.1 example: "assume instead that every RED element
was immediately followed by a Queue" — the devirtualizer's motivating
case.  Like Click's RED, the element locates its downstream Queues at
initialization time by walking the configuration graph and drops
probabilistically based on their average occupancy.
"""

from __future__ import annotations

import random

from .element import ConfigError, Element
from .infrastructure import Queue
from .registry import register


@register
class RED(Element):
    """Random Early Detection: ``RED(MIN_THRESH, MAX_THRESH, MAX_P)``."""

    class_name = "RED"
    processing = "a/a"
    port_counts = "1/1"
    EWMA_WEIGHT = 0.5

    def configure(self, args):
        if len(args) != 3:
            raise ConfigError("RED(MIN_THRESH, MAX_THRESH, MAX_P)")
        self.min_thresh = int(args[0])
        self.max_thresh = int(args[1])
        self.max_p = float(args[2])
        if not 0 <= self.min_thresh <= self.max_thresh:
            raise ConfigError("need 0 <= MIN_THRESH <= MAX_THRESH")
        if not 0.0 < self.max_p <= 1.0:
            raise ConfigError("MAX_P must be in (0, 1]")
        self._queues = []
        self._avg = 0.0
        self.drops = 0
        self.forwarded = 0
        self.rng = random.Random(0xBEEF)

    def initialize(self):
        self._queues = self._find_downstream_queues()

    def _find_downstream_queues(self):
        """Follow connections downstream until Queues are found (Click's
        RED does the same wiring-time discovery)."""
        found = []
        seen = set()
        frontier = [self.output(p).target for p in range(self.noutputs)]
        while frontier:
            element = frontier.pop()
            if element is None or element.name in seen:
                continue
            seen.add(element.name)
            if isinstance(element, Queue):
                found.append(element)
                continue
            frontier.extend(
                element.output(p).target for p in range(element.noutputs)
            )
        return found

    def queue_length(self):
        return sum(len(q) for q in self._queues)

    def _should_drop(self):
        self._avg = (
            self.EWMA_WEIGHT * self.queue_length() + (1 - self.EWMA_WEIGHT) * self._avg
        )
        if self._avg < self.min_thresh:
            return False
        if self._avg >= self.max_thresh:
            return True
        fraction = (self._avg - self.min_thresh) / max(1, self.max_thresh - self.min_thresh)
        return self.rng.random() < fraction * self.max_p

    def simple_action(self, packet):
        if self._should_drop():
            self.drops += 1
            return None
        self.forwarded += 1
        return packet
