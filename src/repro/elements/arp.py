"""ARP elements: ARPQuerier, ARPResponder.

ARPQuerier is the Figure 2 element: the IP router has one per interface,
each connecting to a different downstream Queue — same class, different
targets, which is exactly the pattern that defeats the branch predictor.
It is also the element the "MR" multiple-router optimization removes on
point-to-point links (§7.2).
"""

from __future__ import annotations

from ..net.addresses import EtherAddress, IPAddress
from ..net.headers import (
    ARP_OP_REPLY,
    ARP_OP_REQUEST,
    ETHER_HEADER_LEN,
    ETHERTYPE_IP,
    ArpHeader,
    HeaderError,
    build_arp_reply,
    build_arp_request,
    make_ether_header,
)
from ..net.packet import Packet
from .element import ConfigError, Element
from .registry import register


@register
class ARPQuerier(Element):
    """Encapsulates IP packets in Ethernet headers, using ARP to find
    the destination's hardware address.

    Input 0 takes IP packets annotated with a next-hop address; input 1
    takes ARP responses from the wire.  Output 0 emits Ethernet frames —
    either encapsulated IP packets or ARP queries.  Packets for unknown
    destinations wait in a small per-address holding queue.
    """

    class_name = "ARPQuerier"
    processing = "h/h"
    flow_code = "xy/x"
    port_counts = "2/1"
    HOLD_LIMIT = 4
    # Port 0's push is exactly _handle_ip: encapsulated packets (and ARP
    # queries) leave via output(0) from inside the method, so it always
    # returns None and the fast path may inline it.  Port 1 (responses)
    # is traced as its own chain and still dispatches through push().
    fast_action = "_handle_ip"

    def configure(self, args):
        if len(args) != 2:
            raise ConfigError("ARPQuerier needs IP and Ethernet addresses")
        self.my_ip = IPAddress(args[0])
        self.my_ether = EtherAddress(args[1])
        self.table = {}  # IP value -> EtherAddress
        self._headers = {}  # IP value -> ready-made Ethernet header bytes
        # Bumped whenever the table (and so a cached header) may change;
        # the adaptive fast path bakes a header behind an epoch guard,
        # so any bump sends speculated packets back to the live dicts.
        # The lazy header build in _handle_ip does not bump: it only
        # materializes what the current table already implies.
        self._arp_epoch = 0
        self.pending = {}  # IP value -> [Packet]
        self.queries_sent = 0
        self.replies_handled = 0
        self.drops = 0

    def insert(self, ip, ether):
        """Seed the ARP table (tests and the MR configurations use this)."""
        value = IPAddress(ip).value
        self.table[value] = EtherAddress(ether)
        self._headers.pop(value, None)
        self._arp_epoch += 1

    def push(self, port, packet):
        if port == 0:
            self._handle_ip(packet)
        else:
            self._handle_response(packet)

    def _next_hop(self, packet):
        if packet.dest_ip_anno is not None:
            return packet.dest_ip_anno
        return None

    def _handle_ip(self, packet):
        next_hop = self._next_hop(packet)
        if next_hop is None:
            self.drops += 1
            return
        header = self._headers.get(next_hop.value)
        if header is None and next_hop.value in self.table:
            # Build the encapsulation header once per resolved address
            # (Click keeps it in the ARP entry for the same reason).
            header = make_ether_header(
                self.table[next_hop.value], self.my_ether, ETHERTYPE_IP
            )
            self._headers[next_hop.value] = header
        if header is not None:
            packet.push(header)
            self.output(0).push(packet)
            return
        # Unknown: hold the packet and broadcast a query.
        queue = self.pending.setdefault(next_hop.value, [])
        if len(queue) >= self.HOLD_LIMIT:
            queue.pop(0)
            self.drops += 1
        queue.append(packet)
        query = Packet(build_arp_request(self.my_ether, self.my_ip, next_hop))
        self.queries_sent += 1
        self.output(0).push(query)

    def _handle_response(self, packet):
        try:
            arp = ArpHeader.unpack(packet.data[ETHER_HEADER_LEN:])
        except HeaderError:
            self.drops += 1
            return
        if arp.operation != ARP_OP_REPLY:
            self.drops += 1
            return
        self.replies_handled += 1
        self.table[arp.sender_ip.value] = arp.sender_ether
        self._headers.pop(arp.sender_ip.value, None)
        self._arp_epoch += 1
        for held in self.pending.pop(arp.sender_ip.value, []):
            header = make_ether_header(arp.sender_ether, self.my_ether, ETHERTYPE_IP)
            held.push(header)
            self.output(0).push(held)


@register
class ARPResponder(Element):
    """Replies to ARP queries for the configured addresses.  Each
    configuration argument is ``"IP[/mask] ETHER"``."""

    class_name = "ARPResponder"
    processing = "a/a"
    port_counts = "1/1"

    def configure(self, args):
        if not args:
            raise ConfigError("ARPResponder needs at least one 'IP ETHER' entry")
        self.entries = []
        for arg in args:
            fields = arg.split()
            if len(fields) != 2:
                raise ConfigError("bad ARPResponder entry %r" % arg)
            from ..net.addresses import parse_ip_prefix

            addr, mask = parse_ip_prefix(fields[0])
            self.entries.append((addr.value & mask, mask, EtherAddress(fields[1])))
        self.replies_sent = 0

    def lookup(self, ip):
        value = IPAddress(ip).value
        for network, mask, ether in self.entries:
            if (value & mask) == network:
                return ether
        return None

    def simple_action(self, packet):
        try:
            arp = ArpHeader.unpack(packet.data[ETHER_HEADER_LEN:])
        except HeaderError:
            return None
        if arp.operation != ARP_OP_REQUEST:
            return None
        ether = self.lookup(arp.target_ip)
        if ether is None:
            return None
        self.replies_sent += 1
        reply = Packet(
            build_arp_reply(ether, arp.target_ip, arp.sender_ether, arp.sender_ip)
        )
        return reply
