"""Classification elements: Classifier, IPClassifier, IPFilter, and the
base class for click-fastclassifier's generated elements.

The generic elements "compile textual filter specifications ... into
decision tree structures traversed on each packet" (§3); they charge the
cost meter per tree step so the simulation sees exactly the memory-walk
cost the paper attributes to them.  FastClassifierBase runs a compiled
Python function instead and charges the (cheaper) compiled-step cost.
"""

from __future__ import annotations

from ..classifier.compile import CompiledClassifier
from ..classifier.ipfilter import compile_expressions, compile_filter_rules
from ..classifier.language import compile_patterns
from .element import ConfigError, Element
from .registry import register

CLASSIFIER_CLASS_NAMES = ("Classifier", "IPClassifier", "IPFilter")


class _TreeClassifier(Element):
    """Shared dispatch for the tree-walking classifier elements."""

    processing = "h/h"
    port_counts = "1/-"

    def build_tree(self, args):
        raise NotImplementedError

    def configure(self, args):
        if not args:
            raise ConfigError("%s needs at least one pattern" % self.class_name)
        try:
            # §3: the generic classifiers got "an extensive set of
            # decision tree optimizations, similar to BPF+'s" — the
            # elements themselves run the optimizer; fastclassifier then
            # compiles the already-optimized tree.
            from ..classifier.optimize import optimize

            self.tree = optimize(self.build_tree(args))
        except ValueError as exc:
            raise ConfigError("%s: %s" % (self.class_name, exc)) from exc
        # How many outputs this configuration declares (click-check
        # verifies they are all connected).
        self.configured_noutputs = self.tree.noutputs
        self.drops = 0

    def matcher_cell(self):
        """A one-slot list holding the compiled matcher for the current
        tree.  The fast path binds the *cell* (not the function) into
        generated code, so a control-plane rule patch swaps the matcher
        under already-compiled chains without recompiling them."""
        cell = getattr(self, "_matcher_cell", None)
        if cell is None:
            from ..classifier.compile import compiled_function_for

            cell = self._matcher_cell = [compiled_function_for(self.tree)]
        return cell

    def check_rules(self, args):
        """Compile and validate replacement rules without touching the
        live tree: the control plane's dry-run half.  The new rules
        must declare the same output count (changing the number of
        outputs rewires the graph, which needs a hot-swap); bad rules
        raise :class:`ConfigError`.  Returns the optimized tree for
        :meth:`commit_rules`."""
        if not args:
            raise ConfigError("%s needs at least one pattern" % self.class_name)
        try:
            from ..classifier.optimize import optimize

            tree = optimize(self.build_tree(args))
        except ValueError as exc:
            raise ConfigError("%s: %s" % (self.class_name, exc)) from exc
        if tree.noutputs != self.configured_noutputs:
            raise ConfigError(
                "rule update changes %s's output count %d -> %d "
                "(a wiring change needs a hot-swap)"
                % (self.name, self.configured_noutputs, tree.noutputs)
            )
        # Warm the matcher memo now so commit_rules cannot fail on
        # codegen: the staged-batch commit half must be infallible.
        from ..classifier.compile import compiled_function_for

        compiled_function_for(tree)
        return tree

    def commit_rules(self, tree):
        """Install a tree prepared by :meth:`check_rules`, swapping the
        compiled matcher under any live fast-path chains through the
        matcher cell."""
        self.tree = tree
        cell = getattr(self, "_matcher_cell", None)
        if cell is not None:
            from ..classifier.compile import compiled_function_for

            cell[0] = compiled_function_for(tree)

    def update_rules(self, args):
        """Replace the classification rules in place on a *live*
        element — the control plane's pure-data patch.  A bad update
        raises :class:`ConfigError` before anything is applied."""
        self.commit_rules(self.check_rules(args))

    def push(self, port, packet):
        data = packet.data
        if self.router is not None and self.router.meter is not None:
            self.charge("classifier_step", self.tree.steps(data))
        output = self.tree.match(data)
        if output is None or output >= self.noutputs:
            self.drops += 1
            return
        self.output(output).push(packet)


@register
class Classifier(_TreeClassifier):
    """Byte-pattern classifier: ``Classifier(12/0800, -)``."""

    class_name = "Classifier"

    def build_tree(self, args):
        return compile_patterns(args)


@register
class IPClassifier(_TreeClassifier):
    """Expression classifier over IP packets: one expression per output."""

    class_name = "IPClassifier"

    def build_tree(self, args):
        return compile_expressions(args)


@register
class IPFilter(_TreeClassifier):
    """allow/deny rule filter over IP packets: allowed packets exit
    output 0, denied packets are dropped."""

    class_name = "IPFilter"
    port_counts = "1/1"

    def build_tree(self, args):
        return compile_filter_rules(args)


class FastClassifierBase(Element):
    """Base class for elements generated by click-fastclassifier.

    Generated subclasses pin ``class_name`` (e.g. ``FastClassifier@@c``),
    ``tree`` (the optimized decision tree) and ``compiled`` (the
    CompiledClassifier).  They take no configuration string — the
    classification program is baked in, constants inlined (§4).
    """

    processing = "h/h"
    port_counts = "1/-"
    generated = True
    tree = None
    compiled = None

    def configure(self, args):
        if args:
            raise ConfigError("%s is generated; it takes no arguments" % self.class_name)
        self.configured_noutputs = self.tree.noutputs if self.tree is not None else None
        self.drops = 0

    def push(self, port, packet):
        data = packet.data
        if self.router is not None and self.router.meter is not None:
            # Compiled classification: one charge per step, at the
            # compiled (no-memory-walk) rate.
            self.charge("fast_classifier_step", self.tree.steps(data))
        output = self.compiled(data)
        if output is None or output >= self.noutputs:
            self.drops += 1
            return
        self.output(output).push(packet)


def make_fast_classifier_class(class_name, tree):
    """Create a FastClassifierBase subclass for ``tree`` (used by the
    tool in-process; the emitted archive source recreates the same class
    textually)."""
    compiled = CompiledClassifier(tree)
    return type(
        class_name.replace("@", "_"),
        (FastClassifierBase,),
        {
            "class_name": class_name,
            "tree": tree,
            "compiled": staticmethod(compiled),
        },
    )
