"""Combination elements installed by click-xform (§6.2).

"We discourage Click programmers from using these combination elements
directly, since they are relatively inflexible and have complex
specifications.  Instead, combination element programmers should write
click-xform patterns that replace general-purpose element collections
with the corresponding combination elements."

``IPInputCombo`` is Figure 4/6's replacement for the input-side chain;
``IPOutputCombo`` replaces the output-side chain (and, via a second
pattern, absorbs IPFragmenter's MTU check).  Their handlers do the same
per-packet work as the chains they replace, in one element body — no
inter-element transfers, shared header parsing, single dispatch — which
is where their speedup comes from.
"""

from __future__ import annotations

import struct

from ..net.addresses import IPAddress
from ..net.checksum import update_checksum_u16, verify_checksum
from ..net.headers import IP_HEADER_LEN
from .element import ConfigError, Element
from .ip import PACKET_TYPE_BROADCAST, fragment_ip_packet
from .registry import register


@register
class IPInputCombo(Element):
    """Paint(COLOR) + Strip(14) + CheckIPHeader(BADSRC) + GetIPAddress(16)
    in a single element.  Output 0 carries validated IP packets with the
    destination annotation set; bad packets are dropped."""

    class_name = "IPInputCombo"
    processing = "h/h"
    port_counts = "1/1"

    def configure(self, args):
        if not args or len(args) > 2:
            raise ConfigError("IPInputCombo(COLOR, [BADSRC...])")
        self.color = int(args[0])
        self.bad_src = set()
        if len(args) > 1:
            for addr in args[1].split():
                self.bad_src.add(IPAddress(addr).value)
        self.drops = 0

    def push(self, port, packet):
        # Paint.
        packet.paint = self.color
        # Strip(14).
        if len(packet) < 14 + IP_HEADER_LEN:
            self.drops += 1
            return
        packet.strip(14)
        data = packet.data
        # CheckIPHeader, on the already-fetched bytes.
        version_ihl = data[0]
        if version_ihl >> 4 != 4:
            self.drops += 1
            return
        header_length = (version_ihl & 0xF) * 4
        if header_length < IP_HEADER_LEN or len(data) < header_length:
            self.drops += 1
            return
        total_length = struct.unpack_from("!H", data, 2)[0]
        if total_length < header_length or total_length > len(data):
            self.drops += 1
            return
        if not verify_checksum(data[:header_length]):
            self.drops += 1
            return
        src = struct.unpack_from("!I", data, 12)[0]
        if src in self.bad_src or src == 0xFFFFFFFF:
            self.drops += 1
            return
        packet.ip_header_offset = 0
        # GetIPAddress(16).
        packet.set_dest_ip_anno(struct.unpack_from("!I", data, 16)[0])
        self.output(0).push(packet)


@register
class IPOutputCombo(Element):
    """DropBroadcasts + CheckPaint(COLOR) + IPGWOptions(IP) + FixIPSrc(IP)
    + DecIPTTL — plus, when an MTU is configured, IPFragmenter's
    fragmentation check — in a single element.

    Outputs: 0 forward; 1 same-interface copy (ICMP redirect); 2 option
    problem; 3 TTL expired; 4 fragmentation needed (only with MTU).
    """

    class_name = "IPOutputCombo"
    processing = "h/h"
    port_counts = "1/1-5"

    def configure(self, args):
        if len(args) not in (2, 3):
            raise ConfigError("IPOutputCombo(COLOR, IP, [MTU])")
        self.color = int(args[0])
        self.my_ip = IPAddress(args[1])
        self.mtu = int(args[2]) if len(args) == 3 else None
        self.drops = 0
        self.fragments_made = 0

    def push(self, port, packet):
        # DropBroadcasts.
        if packet.user_annos.get("packet_type") == PACKET_TYPE_BROADCAST:
            self.drops += 1
            return
        # CheckPaint (PaintTee semantics: copy to output 1, continue).
        if packet.paint == self.color and self.noutputs > 1:
            self.output(1).push(packet.clone())
        data = packet.data
        # IPGWOptions: options only when IHL > 5, validated by walking.
        header_length = (data[0] & 0xF) * 4
        if header_length > IP_HEADER_LEN:
            cursor = IP_HEADER_LEN
            while cursor < header_length:
                option = data[cursor]
                if option == 0:
                    break
                if option == 1:
                    cursor += 1
                    continue
                if cursor + 1 >= header_length or data[cursor + 1] < 2 or (
                    cursor + data[cursor + 1] > header_length
                ):
                    self.checked_push(2, packet)
                    return
                cursor += data[cursor + 1]
        # FixIPSrc.
        if packet.fix_ip_src_anno:
            checksum = struct.unpack_from("!H", data, 10)[0]
            new_src = self.my_ip.packed()
            for word_index in range(2):
                offset = 12 + word_index * 2
                old_word = struct.unpack_from("!H", data, offset)[0]
                new_word = struct.unpack_from("!H", new_src, word_index * 2)[0]
                checksum = update_checksum_u16(checksum, old_word, new_word)
            packet.replace(12, new_src)
            packet.replace(10, struct.pack("!H", checksum))
            packet.fix_ip_src_anno = False
            data = packet.data
        # DecIPTTL.
        ttl = data[8]
        if ttl <= 1:
            self.checked_push(3, packet)
            return
        old_word = struct.unpack_from("!H", data, 8)[0]
        old_checksum = struct.unpack_from("!H", data, 10)[0]
        packet.replace(8, bytes([ttl - 1]))
        packet.replace(
            10, struct.pack("!H", update_checksum_u16(old_checksum, old_word, old_word - 0x0100))
        )
        # Fragmentation check (absorbed IPFragmenter MTU test).
        if self.mtu is not None and len(packet) > self.mtu:
            from ..net.headers import IPHeader

            header = IPHeader.unpack(packet.data)
            if header.dont_fragment:
                self.checked_push(4, packet)
                return
            # Fragment exactly as the IPFragmenter this pattern absorbed
            # would have, so optimized and unoptimized graphs emit
            # identical bytes.
            fragments = fragment_ip_packet(packet, header, self.mtu)
            self.fragments_made += len(fragments)
            for fragment in fragments:
                self.output(0).push(fragment)
            return
        self.output(0).push(packet)
