"""Device elements: PollDevice, FromDevice, ToDevice.

Click replaces the interrupt-driven network stack with polling device
drivers scheduled by a constantly-active kernel thread (§3).  These
elements bind to *device objects* supplied by the environment — the
hardware simulation provides Tulip models (:mod:`repro.sim.nic`); tests
can use the in-memory :class:`LoopbackDevice`.

A device object implements:

    ``rx_dequeue() -> bytes | None``  — next received frame, if any
    ``tx_room() -> int``              — free transmit-ring slots
    ``tx_enqueue(bytes) -> bool``     — queue a frame for transmission

The per-packet CPU cost of talking to the hardware (DMA descriptor
reads, ring maintenance — Figure 8's "device interactions") is charged
through the meter as ``rx_device`` / ``tx_device`` work.
"""

from __future__ import annotations

from collections import deque

from ..net.addresses import EtherAddress
from ..net.packet import DEFAULT_HEADROOM, Packet
from .element import ConfigError, Element
from .ip import PACKET_TYPE_BROADCAST, PACKET_TYPE_HOST, PACKET_TYPE_MULTICAST
from .registry import register


class LoopbackDevice:
    """A trivial in-memory device for tests: frames placed on ``rx`` are
    received; transmitted frames accumulate in ``transmitted``."""

    def __init__(self, name="loop0", tx_capacity=64):
        self.name = name
        self.rx = deque()
        self.transmitted = []
        self.tx_capacity = tx_capacity

    def receive_frame(self, frame):
        self.rx.append(bytes(frame))

    def rx_dequeue(self):
        if not self.rx:
            return None
        return self.rx.popleft()

    def tx_room(self):
        return self.tx_capacity - len(self.transmitted)

    def tx_enqueue(self, frame):
        if self.tx_room() <= 0:
            return False
        self.transmitted.append(bytes(frame))
        return True


def _classify_frame(packet):
    # Unicast is the common case, and the group bit alone decides it —
    # look at one byte before paying for the 6-byte slice.
    buf = packet._buf
    offset = packet._data_offset
    if len(buf) > offset and not buf[offset] & 0x01:
        packet.user_annos["packet_type"] = PACKET_TYPE_HOST
        return packet
    dst = packet.data[:6]
    if dst == b"\xff\xff\xff\xff\xff\xff":
        packet.user_annos["packet_type"] = PACKET_TYPE_BROADCAST
    elif dst and dst[0] & 0x01:
        packet.user_annos["packet_type"] = PACKET_TYPE_MULTICAST
    else:
        packet.user_annos["packet_type"] = PACKET_TYPE_HOST
    return packet


@register
class PollDevice(Element):
    """Polls a device's receive ring and pushes frames into the graph.
    One of the two task elements on every forwarding path."""

    class_name = "PollDevice"
    processing = "h/h"
    port_counts = "0/1"
    BURST = 8

    def configure(self, args):
        if len(args) != 1:
            raise ConfigError("PollDevice needs a device name")
        self.devname = args[0].strip()
        self.device = None
        self.received = 0

    def initialize(self):
        self.device = self.router.devices.get(self.devname)
        if self.device is None:
            raise ConfigError("no such device %r" % self.devname)

    def is_task(self):
        return True

    def run_task(self):
        port = self.output(0)
        push_batch = getattr(port, "push_batch", None)
        if push_batch is not None:
            return self._run_task_batch(push_batch)
        worked = False
        for _ in range(self.BURST):
            frame = self.device.rx_dequeue()
            if frame is None:
                break
            self.charge("rx_device")
            packet = Packet(frame)
            packet.device_anno = self.devname
            _classify_frame(packet)
            self.received += 1
            port.push(packet)
            worked = True
        return worked

    def _run_task_batch(self, push_batch):
        """Batched fast path: drain up to BURST frames, build all the
        packets, then hand the whole burst to the compiled chain."""
        device = self.device
        devname = self.devname
        metered = self.router is not None and self.router.meter is not None
        packets = []
        if not metered and type(device) is LoopbackDevice:
            # Known device: read its receive deque directly, classify
            # the frame bytes before the Packet wraps them, and build
            # the Packet without the constructor call — every slot set
            # exactly as Packet.__init__ would (rx frames are bytes, so
            # they seed the contents cache).
            rx = device.rx
            popleft = rx.popleft
            for _ in range(self.BURST):
                if not rx:
                    break
                frame = popleft()
                packet = Packet.__new__(Packet)
                buf = bytearray(DEFAULT_HEADROOM + len(frame))
                buf[DEFAULT_HEADROOM:] = frame
                packet._buf = buf
                packet._data_offset = DEFAULT_HEADROOM
                packet._data_cache = frame
                packet.buffer_alignment = 0
                packet.paint = 0
                packet.dest_ip_anno = None
                packet.ip_header_offset = None
                packet.device_anno = devname
                packet.timestamp = None
                packet.fix_ip_src_anno = False
                if frame and not frame[0] & 0x01:
                    packet.user_annos = {"packet_type": PACKET_TYPE_HOST}
                else:
                    packet.user_annos = {}
                    _classify_frame(packet)
                packets.append(packet)
        else:
            dequeue = device.rx_dequeue
            charge = self.charge
            for _ in range(self.BURST):
                frame = dequeue()
                if frame is None:
                    break
                if metered:
                    charge("rx_device")
                packet = Packet(frame)
                packet.device_anno = devname
                _classify_frame(packet)
                packets.append(packet)
        if not packets:
            return False
        self.received += len(packets)
        push_batch(packets)
        return True


@register
class FromDevice(PollDevice):
    """Interrupt-style receive; identical behaviour under the polling
    simulation, kept as a distinct class name for configurations."""

    class_name = "FromDevice"


@register
class ToDevice(Element):
    """Pulls packets (normally from a Queue) and places them on a
    device's transmit ring; the other task element on each path."""

    class_name = "ToDevice"
    processing = "l/l"
    port_counts = "1/0"
    BURST = 8

    def configure(self, args):
        if len(args) != 1:
            raise ConfigError("ToDevice needs a device name")
        self.devname = args[0].strip()
        self.device = None
        self.sent = 0
        self.idle_polls = 0

    def initialize(self):
        self.device = self.router.devices.get(self.devname)
        if self.device is None:
            raise ConfigError("no such device %r" % self.devname)

    def is_task(self):
        return True

    def run_task(self):
        port = self.input(0)
        pull_batch = getattr(port, "pull_batch", None)
        if pull_batch is not None:
            return self._run_task_batch(pull_batch)
        worked = False
        for _ in range(self.BURST):
            if self.device.tx_room() <= 0:
                # Transmit DMA queue full: choose not to pull (the
                # behaviour §8.4's instrumentation observed).
                self.idle_polls += 1
                break
            packet = port.pull()
            if packet is None:
                break
            self.charge("tx_device")
            self.device.tx_enqueue(packet.data)
            self.sent += 1
            worked = True
        return worked

    def _run_task_batch(self, pull_batch):
        """Batched fast path: pull up to one burst (bounded by transmit
        ring room) through the compiled chain, then enqueue them all."""
        device = self.device
        fast_device = type(device) is LoopbackDevice
        if fast_device:
            limit = device.tx_capacity - len(device.transmitted)
            if limit > self.BURST:
                limit = self.BURST
        else:
            limit = min(self.BURST, device.tx_room())
        if limit <= 0:
            self.idle_polls += 1
            return False
        packets = pull_batch(limit)
        if not packets:
            return False
        metered = self.router is not None and self.router.meter is not None
        if fast_device and not metered:
            # len(packets) <= limit <= ring room, so every enqueue would
            # succeed, and packet.data is already the bytes tx_enqueue
            # would have stored.
            device.transmitted.extend([packet.data for packet in packets])
        else:
            charge = self.charge
            enqueue = device.tx_enqueue
            for packet in packets:
                if metered:
                    charge("tx_device")
                enqueue(packet.data)
        self.sent += len(packets)
        # The reference loop, having filled the ring mid-burst, observes
        # the full ring on its next iteration and counts an idle poll.
        if len(packets) == limit and limit < self.BURST:
            self.idle_polls += 1
        return True


@register
class EnsureEther(Element):
    """Guarantees an Ethernet header: packets that already look like
    Ethernet pass through; anything else gets the configured header."""

    class_name = "EnsureEther"
    processing = "a/a"
    port_counts = "1/1"

    def configure(self, args):
        if len(args) != 3:
            raise ConfigError("EnsureEther(ETHERTYPE, SRC, DST)")
        self.ether_type = int(args[0], 0)
        self.src = EtherAddress(args[1])
        self.dst = EtherAddress(args[2])

    def simple_action(self, packet):
        from ..net.headers import make_ether_header

        if len(packet) >= 14 and packet.data[12:14] == self.ether_type.to_bytes(2, "big"):
            return packet
        packet.push(make_ether_header(self.dst, self.src, self.ether_type))
        return packet
