"""Device elements: PollDevice, FromDevice, ToDevice.

Click replaces the interrupt-driven network stack with polling device
drivers scheduled by a constantly-active kernel thread (§3).  These
elements bind to *device objects* supplied by the environment — the
hardware simulation provides Tulip models (:mod:`repro.sim.nic`); tests
can use the in-memory :class:`LoopbackDevice`.

A device object implements:

    ``rx_dequeue() -> bytes | None``  — next received frame, if any
    ``tx_room() -> int``              — free transmit-ring slots
    ``tx_enqueue(bytes) -> bool``     — queue a frame for transmission

The per-packet CPU cost of talking to the hardware (DMA descriptor
reads, ring maintenance — Figure 8's "device interactions") is charged
through the meter as ``rx_device`` / ``tx_device`` work.
"""

from __future__ import annotations

from ..net.addresses import EtherAddress
from ..net.packet import Packet
from .element import ConfigError, Element
from .ip import PACKET_TYPE_BROADCAST, PACKET_TYPE_HOST, PACKET_TYPE_MULTICAST
from .registry import register


class LoopbackDevice:
    """A trivial in-memory device for tests: frames placed on ``rx`` are
    received; transmitted frames accumulate in ``transmitted``."""

    def __init__(self, name="loop0", tx_capacity=64):
        self.name = name
        self.rx = []
        self.transmitted = []
        self.tx_capacity = tx_capacity

    def receive_frame(self, frame):
        self.rx.append(bytes(frame))

    def rx_dequeue(self):
        if not self.rx:
            return None
        return self.rx.pop(0)

    def tx_room(self):
        return self.tx_capacity - len(self.transmitted)

    def tx_enqueue(self, frame):
        if self.tx_room() <= 0:
            return False
        self.transmitted.append(bytes(frame))
        return True


def _classify_frame(packet):
    dst = packet.data[:6]
    if dst == b"\xff\xff\xff\xff\xff\xff":
        packet.user_annos["packet_type"] = PACKET_TYPE_BROADCAST
    elif dst and dst[0] & 0x01:
        packet.user_annos["packet_type"] = PACKET_TYPE_MULTICAST
    else:
        packet.user_annos["packet_type"] = PACKET_TYPE_HOST
    return packet


@register
class PollDevice(Element):
    """Polls a device's receive ring and pushes frames into the graph.
    One of the two task elements on every forwarding path."""

    class_name = "PollDevice"
    processing = "h/h"
    port_counts = "0/1"
    BURST = 8

    def configure(self, args):
        if len(args) != 1:
            raise ConfigError("PollDevice needs a device name")
        self.devname = args[0].strip()
        self.device = None
        self.received = 0

    def initialize(self):
        self.device = self.router.devices.get(self.devname)
        if self.device is None:
            raise ConfigError("no such device %r" % self.devname)

    def is_task(self):
        return True

    def run_task(self):
        worked = False
        for _ in range(self.BURST):
            frame = self.device.rx_dequeue()
            if frame is None:
                break
            self.charge("rx_device")
            packet = Packet(frame)
            packet.device_anno = self.devname
            _classify_frame(packet)
            self.received += 1
            self.output(0).push(packet)
            worked = True
        return worked


@register
class FromDevice(PollDevice):
    """Interrupt-style receive; identical behaviour under the polling
    simulation, kept as a distinct class name for configurations."""

    class_name = "FromDevice"


@register
class ToDevice(Element):
    """Pulls packets (normally from a Queue) and places them on a
    device's transmit ring; the other task element on each path."""

    class_name = "ToDevice"
    processing = "l/l"
    port_counts = "1/0"
    BURST = 8

    def configure(self, args):
        if len(args) != 1:
            raise ConfigError("ToDevice needs a device name")
        self.devname = args[0].strip()
        self.device = None
        self.sent = 0
        self.idle_polls = 0

    def initialize(self):
        self.device = self.router.devices.get(self.devname)
        if self.device is None:
            raise ConfigError("no such device %r" % self.devname)

    def is_task(self):
        return True

    def run_task(self):
        worked = False
        for _ in range(self.BURST):
            if self.device.tx_room() <= 0:
                # Transmit DMA queue full: choose not to pull (the
                # behaviour §8.4's instrumentation observed).
                self.idle_polls += 1
                break
            packet = self.input(0).pull()
            if packet is None:
                break
            self.charge("tx_device")
            self.device.tx_enqueue(packet.data)
            self.sent += 1
            worked = True
        return worked


@register
class EnsureEther(Element):
    """Guarantees an Ethernet header: packets that already look like
    Ethernet pass through; anything else gets the configured header."""

    class_name = "EnsureEther"
    processing = "a/a"
    port_counts = "1/1"

    def configure(self, args):
        if len(args) != 3:
            raise ConfigError("EnsureEther(ETHERTYPE, SRC, DST)")
        self.ether_type = int(args[0], 0)
        self.src = EtherAddress(args[1])
        self.dst = EtherAddress(args[2])

    def simple_action(self, packet):
        from ..net.headers import make_ether_header

        if len(packet) >= 14 and packet.data[12:14] == self.ether_type.to_bytes(2, "big"):
            return packet
        packet.push(make_ether_header(self.dst, self.src, self.ether_type))
        return packet
