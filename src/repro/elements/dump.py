"""Trace elements: FromDump replays a pcap capture, ToDump records one.

The Click counterparts read and write real capture files; these operate
on files too (and, for tests, on in-memory byte strings via the
``preloaded`` hook).
"""

from __future__ import annotations

from ..net.packet import Packet
from ..net.pcap import read_pcap, write_pcap
from .element import ConfigError, Element
from .registry import register


@register
class FromDump(Element):
    """Replays the packets of a pcap file, ``burst`` per scheduler
    invocation; stops at end of file (optionally looping)."""

    class_name = "FromDump"
    processing = "h/h"
    port_counts = "0/1"
    BURST = 8

    def configure(self, args):
        if not args or len(args) > 2:
            raise ConfigError("FromDump(FILENAME, [LOOP])")
        self.filename = args[0].strip()
        self.loop = bool(args[1].strip()) if len(args) > 1 and args[1].strip() else False
        self._packets = None
        self._cursor = 0
        self.emitted = 0

    def preload(self, blob):
        """Tests inject capture bytes instead of reading the file."""
        self._packets = read_pcap(blob)

    def initialize(self):
        if self._packets is None:
            with open(self.filename, "rb") as handle:
                self._packets = read_pcap(handle.read())

    def is_task(self):
        return True

    def run_task(self):
        sent = 0
        while sent < self.BURST:
            if self._cursor >= len(self._packets):
                if not self.loop or not self._packets:
                    break
                self._cursor = 0
            timestamp, data = self._packets[self._cursor]
            self._cursor += 1
            packet = Packet(data)
            packet.timestamp = timestamp
            self.output(0).push(packet)
            self.emitted += 1
            sent += 1
        return sent > 0


@register
class ToDump(Element):
    """Records passing packets; writes the capture at ``flush()`` (and
    passes packets through when an output is connected)."""

    class_name = "ToDump"
    processing = "a/a"
    port_counts = "1/0-1"

    def configure(self, args):
        if not args or len(args) > 1:
            raise ConfigError("ToDump(FILENAME)")
        self.filename = args[0].strip()
        self.recorded = []

    def simple_action(self, packet):
        timestamp = packet.timestamp if packet.timestamp is not None else len(self.recorded) * 1e-6
        self.recorded.append((timestamp, packet.data))
        return packet

    def push(self, port, packet):
        self.simple_action(packet)
        if self.noutputs:
            self.output(0).push(packet)

    def capture_bytes(self):
        return write_pcap(self.recorded)

    def flush(self):
        with open(self.filename, "wb") as handle:
            handle.write(self.capture_bytes())
