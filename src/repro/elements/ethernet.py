"""Ethernet encapsulation elements."""

from __future__ import annotations

from ..net.addresses import EtherAddress
from ..net.headers import EtherHeader, make_ether_header
from .element import ConfigError, Element
from .ip import (
    PACKET_TYPE_BROADCAST,
    PACKET_TYPE_HOST,
    PACKET_TYPE_MULTICAST,
    PACKET_TYPE_OTHERHOST,
)
from .registry import register


@register
class EtherEncap(Element):
    """Prepends a fixed Ethernet header: ``EtherEncap(0x0800, SRC, DST)``."""

    class_name = "EtherEncap"
    processing = "a/a"
    port_counts = "1/1"

    def configure(self, args):
        if len(args) != 3:
            raise ConfigError("EtherEncap(ETHERTYPE, SRC, DST)")
        try:
            self.ether_type = int(args[0], 0)
        except ValueError:
            raise ConfigError("bad ethertype %r" % args[0]) from None
        self.src = EtherAddress(args[1])
        self.dst = EtherAddress(args[2])
        self._header = make_ether_header(self.dst, self.src, self.ether_type)

    def simple_action(self, packet):
        packet.push(self._header)
        return packet


@register
class HostEtherFilter(Element):
    """Marks packets by destination Ethernet address (host / broadcast /
    multicast / other-host), dropping other-host frames unless DROP_OWN
    says otherwise; the device layer's promiscuous-mode companion."""

    class_name = "HostEtherFilter"
    processing = "a/ah"
    port_counts = "1/1-2"

    def configure(self, args):
        if not args:
            raise ConfigError("HostEtherFilter needs our Ethernet address")
        self.my_ether = EtherAddress(args[0])
        self.drops = 0

    def push(self, port, packet):
        result = self._classify(packet)
        if result is not None:
            self.output(0).push(result)

    def pull(self, port):
        packet = self.input(0).pull()
        if packet is None:
            return None
        return self._classify(packet)

    def _classify(self, packet):
        try:
            header = EtherHeader.unpack(packet.data)
        except ValueError:
            self.drops += 1
            return None
        if header.dst == self.my_ether:
            packet.user_annos["packet_type"] = PACKET_TYPE_HOST
            return packet
        if header.dst.is_broadcast():
            packet.user_annos["packet_type"] = PACKET_TYPE_BROADCAST
            return packet
        if header.dst.is_group():
            packet.user_annos["packet_type"] = PACKET_TYPE_MULTICAST
            return packet
        packet.user_annos["packet_type"] = PACKET_TYPE_OTHERHOST
        if self.noutputs > 1:
            self.output(1).push(packet)
        else:
            self.drops += 1
        return None
