"""Hot-swap support: install a new configuration, preserving state.

§5.1: "To add an element to a Click router, the user must install an
entirely new configuration, although this can be done in such a way that
important state is transferred into the new router."  That is the
mechanism that keeps configurations static (enabling the optimizers)
without losing queues or ARP tables on every change.

State moves between elements that have the same *name* and compatible
classes: each element class may implement ``take_state(old_element)``;
the default transfers nothing.  Compatibility follows the runtime class
hierarchy, so a ``Devirtualize@@q`` Queue accepts state from a plain
``Queue`` and vice versa — optimizing a live router preserves its
queues.
"""

from __future__ import annotations

from .element import Element
from .runtime import Router


def _compatible(new_element, old_element):
    """Share state if either is an instance of the other's family —
    generated subclasses count as their base class."""
    for new_cls in type(new_element).__mro__:
        if new_cls is Element:
            break
        if isinstance(old_element, new_cls):
            return True
    for old_cls in type(old_element).__mro__:
        if old_cls is Element:
            break
        if isinstance(new_element, old_cls):
            return True
    return False


def hotswap(old_router, new_graph, **router_kwargs):
    """Build a Router from ``new_graph``, transferring state from
    ``old_router`` for same-named compatible elements.  Returns the new
    router (the old one should be discarded)."""
    router_kwargs.setdefault("devices", old_router.devices)
    new_router = Router(new_graph, **router_kwargs)
    transferred = []
    for name, new_element in new_router.elements.items():
        old_element = old_router.find(name)
        if old_element is None or not _compatible(new_element, old_element):
            continue
        take = getattr(new_element, "take_state", None)
        if take is not None and take(old_element):
            transferred.append(name)
    new_router.hotswap_transferred = transferred
    return new_router


# -- take_state implementations for the stateful elements ---------------------


def _queue_take_state(self, old):
    capacity_room = self.capacity
    # Mutate the deque in place: the fast-path compiler binds the deque
    # object itself into generated code, so its identity must be stable.
    self._deque.clear()
    self._deque.extend(list(old._deque)[:capacity_room])
    self.drops += max(0, len(old._deque) - capacity_room)
    return True


def _counter_take_state(self, old):
    self.count = old.count
    self.byte_count = old.byte_count
    return True


def _arpquerier_take_state(self, old):
    self.table = dict(old.table)
    self.pending = {key: list(value) for key, value in old.pending.items()}
    return True


def _discard_take_state(self, old):
    self.count = old.count
    return True


def install_take_state_handlers():
    """Attach take_state to the stateful element classes (done at import
    time; idempotent)."""
    from .arp import ARPQuerier
    from .infrastructure import Counter, Discard, Queue

    Queue.take_state = _queue_take_state
    Counter.take_state = _counter_take_state
    ARPQuerier.take_state = _arpquerier_take_state
    Discard.take_state = _discard_take_state


install_take_state_handlers()
