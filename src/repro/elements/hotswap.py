"""Hot-swap support: install a new configuration, preserving state.

§5.1: "To add an element to a Click router, the user must install an
entirely new configuration, although this can be done in such a way that
important state is transferred into the new router."  That is the
mechanism that keeps configurations static (enabling the optimizers)
without losing queues or ARP tables on every change.

State moves between elements that have the same *name* and compatible
classes: each element class may implement ``take_state(old_element)``;
the default transfers nothing.  Compatibility follows the runtime class
hierarchy, so a ``Devirtualize@@q`` Queue accepts state from a plain
``Queue`` and vice versa — optimizing a live router preserves its
queues.

The swap is a **two-phase commit**.  Phase one prepares everything that
can fail while the old router keeps serving: the new graph runs the
``check`` pass, a new router is built in reference mode, state is
transferred (``take_state`` handlers must treat the old element as
read-only — every stock handler copies), and the old router's execution
profile — fast/adaptive, batch flavor, adaptive config, supervision —
is recompiled onto the new router.  Only after all of that succeeds does
phase two commit: the old router is retired.  Any failure raises
:class:`HotswapError` and leaves the old router exactly as it was, still
serving, queues and ARP tables intact.

The swap is **scoped**: before recompiling, the graphs are diffed
(:func:`repro.graph.diff.diff_graphs`, or an explicit ``delta`` from the
control plane) and the old router's compiled fast paths are offered to
the new compile as *donors* — every chain whose reachable elements are
untouched by the delta is spliced in verbatim instead of re-emitted
(see :meth:`FastPath._reuse_chain`).  ``hotswap`` returns a
:class:`SwapResult` carrying the new router and a :class:`SwapReport`
with per-phase timings and the recompiled-vs-reused chain counts; the
result proxies attribute access to the router (with a
``DeprecationWarning``) so pre-SwapResult callers keep working.
"""

from __future__ import annotations

import time
import warnings
from collections import OrderedDict

from ..graph.diff import diff_graphs
from .element import Element
from .runtime import Router


class HotswapError(RuntimeError):
    """A hot-swap aborted before commit; the old router is untouched
    and still serving."""


class SwapReport:
    """What one configuration update did: its kind (``in-place`` data
    patch, ``scoped-swap``, ``full-swap``, or ``no-op``), per-phase wall
    times, and the recompiled-vs-reused chain accounting.  Shared by
    :func:`hotswap` and :meth:`repro.control.ControlPlane.apply`."""

    def __init__(self, kind, profile=None, delta=None):
        self.kind = kind
        self.profile = profile  # ExecutionProfile label (str) or None
        self.delta = delta  # GraphDelta summary (str) or None
        self.phases = OrderedDict()  # phase name -> seconds
        self.chains_recompiled = 0
        self.chains_reused = 0
        self.elements_patched = 0
        self.transferred = []  # element names that carried state over
        self.cache_hit = False

    @property
    def total_seconds(self):
        return sum(self.phases.values())

    def as_dict(self):
        return {
            "kind": self.kind,
            "profile": self.profile,
            "delta": self.delta,
            "phases": {name: round(value, 6) for name, value in self.phases.items()},
            "total_seconds": round(self.total_seconds, 6),
            "chains_recompiled": self.chains_recompiled,
            "chains_reused": self.chains_reused,
            "elements_patched": self.elements_patched,
            "transferred": list(self.transferred),
            "cache_hit": self.cache_hit,
        }

    def format(self):
        parts = ["%s in %.2f ms" % (self.kind, self.total_seconds * 1e3)]
        if self.delta:
            parts.append(self.delta)
        if self.kind == "in-place":
            parts.append("%d element(s) patched" % self.elements_patched)
        else:
            parts.append(
                "%d chain(s) recompiled, %d reused%s"
                % (
                    self.chains_recompiled,
                    self.chains_reused,
                    ", codegen-cache hit" if self.cache_hit else "",
                )
            )
        if self.transferred:
            parts.append("state carried for %d element(s)" % len(self.transferred))
        if self.profile:
            parts.append("profile %s" % self.profile)
        if self.phases:
            parts.append(
                "phases: "
                + ", ".join(
                    "%s=%.2fms" % (name, value * 1e3)
                    for name, value in self.phases.items()
                )
            )
        return "; ".join(parts)

    def __repr__(self):
        return "SwapReport(%s)" % self.format()


class SwapResult:
    """What :func:`hotswap` returns: the new live router plus the
    :class:`SwapReport` describing the swap.  Unknown attributes proxy
    to ``.router`` with a ``DeprecationWarning`` so callers written
    against the old router-returning signature keep working."""

    __slots__ = ("router", "report")

    def __init__(self, router, report):
        self.router = router
        self.report = report

    def __getattr__(self, name):
        router = self.router
        warnings.warn(
            "hotswap() returns a SwapResult; reading .%s off it is "
            "deprecated; use result.router.%s" % (name, name),
            DeprecationWarning,
            stacklevel=2,
        )
        return getattr(router, name)

    def __repr__(self):
        return "SwapResult(router=%r, report=%r)" % (self.router, self.report)


def _compatible(new_element, old_element):
    """Share state if either is an instance of the other's family —
    generated subclasses count as their base class."""
    for new_cls in type(new_element).__mro__:
        if new_cls is Element:
            break
        if isinstance(old_element, new_cls):
            return True
    for old_cls in type(old_element).__mro__:
        if old_cls is Element:
            break
        if isinstance(new_element, old_cls):
            return True
    return False


def _live_fastpaths(router):
    """Every compiled :class:`FastPath` the router currently holds —
    the plain fast path plus the adaptive engine's tiers — for use as
    scoped-swap reuse donors or for chain accounting."""
    paths = []
    if getattr(router, "fastpath", None) is not None:
        paths.append(router.fastpath)
    engine = getattr(router, "adaptive", None)
    if engine is not None:
        for path in (engine.tier1, engine.profiled, engine.tier2_fp):
            if path is not None:
                paths.append(path)
    return paths


def _chain_totals(router):
    """``(recompiled, reused, cache_hit)`` summed over the router's
    compiled fast paths.  A codegen-cache hit replays the whole module
    without re-emitting anything, so its chains all count as reused."""
    recompiled = reused = 0
    cache_hit = False
    for path in _live_fastpaths(router):
        report = path.report
        total = report.push_chains + report.pull_chains
        if report.cache_hit:
            cache_hit = True
            reused += total
        else:
            reused += report.reused_chains
            recompiled += total - report.reused_chains
    return recompiled, reused, cache_hit


def hotswap(old_router, new_graph, profile=None, mode=None, batch=None,
            validate=True, delta=None, **router_kwargs):
    """Two-phase-commit hot-swap: build a Router from ``new_graph``,
    transferring state from ``old_router`` for same-named compatible
    elements and carrying the old router's
    :class:`~repro.runtime.profile.ExecutionProfile` (mode, batch
    flavor, adaptive config, supervision) unless ``profile`` overrides
    it.  The swap is scoped by ``delta`` (computed via
    :func:`~repro.graph.diff.diff_graphs` when not supplied): compiled
    chains that cannot touch a changed element are spliced from the old
    router's fast paths instead of recompiled.  On success the old
    router is retired and a :class:`SwapResult` returned; on any
    failure a :class:`HotswapError` is raised and the old router keeps
    serving, untouched.  ``mode`` / ``batch`` are deprecated; use
    ``profile``."""
    if mode is not None or batch is not None:
        warnings.warn(
            "hotswap(mode=..., batch=...) is deprecated; use "
            "hotswap(..., profile=ExecutionProfile(...))",
            DeprecationWarning,
            stacklevel=2,
        )
        if profile is not None:
            raise ValueError("pass profile or legacy mode/batch, not both")
        base = old_router.profile
        try:
            profile = base.with_mode(
                mode if mode is not None else base.mode, batch=batch
            )
        except ValueError as exc:
            # The legacy signature promised HotswapError on a bad mode,
            # with the old router untouched.
            raise HotswapError(
                "invalid execution mode for hot-swap; old router still "
                "serving: %s" % exc
            ) from exc
    if profile is None:
        profile = old_router.profile

    if new_graph.element_classes:
        from ..core.flatten import flatten

        new_graph = flatten(new_graph)

    report = SwapReport("full-swap", profile=profile.label)
    started = time.perf_counter()

    # Phase 1a: validate.  Everything check would reject, the kernel
    # installer would have rejected before touching the live router.
    if validate:
        from ..core.check import check as check_config

        collector = check_config(new_graph)
        if not collector.ok:
            raise HotswapError(
                "new configuration failed check; old router still serving:\n%s"
                % collector.format()
            )
    report.phases["validate"] = time.perf_counter() - started

    # The delta scopes the swap: chains of the new compile that cannot
    # touch a dirty element are spliced from the old router's compiled
    # fast paths.  An explicit delta (the control plane's) wins; without
    # one, diff the graphs here.
    old_graph = getattr(old_router, "graph", None)
    if delta is None and old_graph is not None:
        delta = diff_graphs(old_graph, new_graph)
    if delta is not None:
        report.kind = "scoped-swap"
        report.delta = delta.summary()

    router_kwargs.setdefault("devices", old_router.devices)
    router_kwargs.setdefault("meter", old_router.meter)

    # Phase 1b: build (reference mode first — state transfer happens on
    # plain wiring; the carried profile compiles afterwards, over the
    # transferred state).
    started = time.perf_counter()
    try:
        new_router = Router(new_graph, **router_kwargs)
    except Exception as exc:
        raise HotswapError(
            "building the new router failed; old router still serving: %s: %s"
            % (type(exc).__name__, exc)
        ) from exc
    report.phases["build"] = time.perf_counter() - started

    # Phase 1b': carry fault injection (chaos harness).  Wrappers must be
    # installed before the carried mode compiles so the compiler sees
    # them; injector counters are keyed by element name, so fault
    # schedules continue across the swap.
    injector = getattr(old_router, "fault_injector", None)
    if injector is not None:
        injector.prepare_router(new_router)

    # Phase 1c: transfer state.  Handlers read the old element and
    # mutate only the new one, so a failure here abandons the half-built
    # new router without having disturbed the old.
    started = time.perf_counter()
    transferred = []
    for name, new_element in new_router.elements.items():
        old_element = old_router.find(name)
        if old_element is None or not _compatible(new_element, old_element):
            continue
        take = getattr(new_element, "take_state", None)
        if take is None:
            continue
        try:
            took = take(old_element)
        except Exception as exc:
            raise HotswapError(
                "state transfer for %r failed; old router still serving: %s: %s"
                % (name, type(exc).__name__, exc)
            ) from exc
        if took:
            transferred.append(name)
    report.phases["transfer"] = time.perf_counter() - started
    report.transferred = transferred

    # Phase 1d: recompile the carried execution profile, offering the
    # old router's compiled fast paths as scoped-reuse donors.
    started = time.perf_counter()
    donors = _live_fastpaths(old_router)
    if delta is not None and donors:
        new_router._fastpath_reuse = {
            "fastpaths": donors,
            "dirty": delta.dirty_names(),
        }
    try:
        new_router.configure(profile)
    except Exception as exc:
        raise HotswapError(
            "compiling the new router (profile=%s) failed; old router still "
            "serving: %s: %s" % (profile.label, type(exc).__name__, exc)
        ) from exc
    finally:
        if getattr(new_router, "_fastpath_reuse", None) is not None:
            new_router._fastpath_reuse = None
    report.phases["compile"] = time.perf_counter() - started
    recompiled, reused, cache_hit = _chain_totals(new_router)
    report.chains_recompiled = recompiled
    report.chains_reused = reused
    report.cache_hit = cache_hit

    # Phase 2: commit.
    started = time.perf_counter()
    new_router.hotswap_transferred = transferred
    old_router.retire()
    report.phases["commit"] = time.perf_counter() - started
    return SwapResult(new_router, report)


# -- take_state implementations for the stateful elements ---------------------


def _queue_take_state(self, old):
    capacity_room = self.capacity
    # Mutate the deque in place: the fast-path compiler binds the deque
    # object itself into generated code, so its identity must be stable.
    self._deque.clear()
    self._deque.extend(list(old._deque)[:capacity_room])
    self.drops += max(0, len(old._deque) - capacity_room)
    return True


def _counter_take_state(self, old):
    self.count = old.count
    self.byte_count = old.byte_count
    return True


def _arpquerier_take_state(self, old):
    self.table = dict(old.table)
    self.pending = {key: list(value) for key, value in old.pending.items()}
    return True


def _discard_take_state(self, old):
    self.count = old.count
    return True


def install_take_state_handlers():
    """Attach take_state to the stateful element classes (done at import
    time; idempotent)."""
    from .arp import ARPQuerier
    from .infrastructure import Counter, Discard, Queue

    Queue.take_state = _queue_take_state
    Counter.take_state = _counter_take_state
    ARPQuerier.take_state = _arpquerier_take_state
    Discard.take_state = _discard_take_state


install_take_state_handlers()
