"""Hot-swap support: install a new configuration, preserving state.

§5.1: "To add an element to a Click router, the user must install an
entirely new configuration, although this can be done in such a way that
important state is transferred into the new router."  That is the
mechanism that keeps configurations static (enabling the optimizers)
without losing queues or ARP tables on every change.

State moves between elements that have the same *name* and compatible
classes: each element class may implement ``take_state(old_element)``;
the default transfers nothing.  Compatibility follows the runtime class
hierarchy, so a ``Devirtualize@@q`` Queue accepts state from a plain
``Queue`` and vice versa — optimizing a live router preserves its
queues.

The swap is a **two-phase commit**.  Phase one prepares everything that
can fail while the old router keeps serving: the new graph runs the
``check`` pass, a new router is built in reference mode, state is
transferred (``take_state`` handlers must treat the old element as
read-only — every stock handler copies), and the old router's execution
mode — fast/adaptive, batch flavor, adaptive config, supervision — is
recompiled onto the new router.  Only after all of that succeeds does
phase two commit: the old router is retired.  Any failure raises
:class:`HotswapError` and leaves the old router exactly as it was, still
serving, queues and ARP tables intact.
"""

from __future__ import annotations

from .element import Element
from .runtime import Router


class HotswapError(RuntimeError):
    """A hot-swap aborted before commit; the old router is untouched
    and still serving."""


def _compatible(new_element, old_element):
    """Share state if either is an instance of the other's family —
    generated subclasses count as their base class."""
    for new_cls in type(new_element).__mro__:
        if new_cls is Element:
            break
        if isinstance(old_element, new_cls):
            return True
    for old_cls in type(old_element).__mro__:
        if old_cls is Element:
            break
        if isinstance(new_element, old_cls):
            return True
    return False


def hotswap(old_router, new_graph, mode=None, batch=None, validate=True, **router_kwargs):
    """Two-phase-commit hot-swap: build a Router from ``new_graph``,
    transferring state from ``old_router`` for same-named compatible
    elements and carrying the old router's execution mode (and adaptive
    config, batch flavor, and supervision) unless overridden by ``mode``
    / ``batch``.  On success the old router is retired and the new
    router returned; on any failure a :class:`HotswapError` is raised
    and the old router keeps serving, untouched."""
    if new_graph.element_classes:
        from ..core.flatten import flatten

        new_graph = flatten(new_graph)

    # Phase 1a: validate.  Everything check would reject, the kernel
    # installer would have rejected before touching the live router.
    if validate:
        from ..core.check import check as check_config

        collector = check_config(new_graph)
        if not collector.ok:
            raise HotswapError(
                "new configuration failed check; old router still serving:\n%s"
                % collector.format()
            )

    if mode is None:
        mode = old_router.mode
    if batch is None:
        batch = getattr(old_router, "_batch", False)
    router_kwargs.setdefault("devices", old_router.devices)
    router_kwargs.setdefault("meter", old_router.meter)
    router_kwargs.setdefault("adaptive_config", old_router._adaptive_config)

    # Phase 1b: build (reference mode first — state transfer happens on
    # plain wiring; the carried mode compiles afterwards, over the
    # transferred state).
    try:
        new_router = Router(new_graph, **router_kwargs)
    except Exception as exc:
        raise HotswapError(
            "building the new router failed; old router still serving: %s: %s"
            % (type(exc).__name__, exc)
        ) from exc

    # Phase 1b': carry fault injection (chaos harness).  Wrappers must be
    # installed before the carried mode compiles so the compiler sees
    # them; injector counters are keyed by element name, so fault
    # schedules continue across the swap.
    injector = getattr(old_router, "fault_injector", None)
    if injector is not None:
        injector.prepare_router(new_router)

    # Phase 1c: transfer state.  Handlers read the old element and
    # mutate only the new one, so a failure here abandons the half-built
    # new router without having disturbed the old.
    transferred = []
    for name, new_element in new_router.elements.items():
        old_element = old_router.find(name)
        if old_element is None or not _compatible(new_element, old_element):
            continue
        take = getattr(new_element, "take_state", None)
        if take is None:
            continue
        try:
            took = take(old_element)
        except Exception as exc:
            raise HotswapError(
                "state transfer for %r failed; old router still serving: %s: %s"
                % (name, type(exc).__name__, exc)
            ) from exc
        if took:
            transferred.append(name)

    # Phase 1d: recompile the carried execution mode.
    try:
        if mode != "reference":
            new_router.set_mode(mode, batch=batch)
        if old_router.supervisor is not None:
            new_router.attach_supervisor(old_router.supervisor.config)
    except Exception as exc:
        raise HotswapError(
            "compiling the new router (mode=%r) failed; old router still "
            "serving: %s: %s" % (mode, type(exc).__name__, exc)
        ) from exc

    # Phase 2: commit.
    new_router.hotswap_transferred = transferred
    old_router.retire()
    return new_router


# -- take_state implementations for the stateful elements ---------------------


def _queue_take_state(self, old):
    capacity_room = self.capacity
    # Mutate the deque in place: the fast-path compiler binds the deque
    # object itself into generated code, so its identity must be stable.
    self._deque.clear()
    self._deque.extend(list(old._deque)[:capacity_room])
    self.drops += max(0, len(old._deque) - capacity_room)
    return True


def _counter_take_state(self, old):
    self.count = old.count
    self.byte_count = old.byte_count
    return True


def _arpquerier_take_state(self, old):
    self.table = dict(old.table)
    self.pending = {key: list(value) for key, value in old.pending.items()}
    return True


def _discard_take_state(self, old):
    self.count = old.count
    return True


def install_take_state_handlers():
    """Attach take_state to the stateful element classes (done at import
    time; idempotent)."""
    from .arp import ARPQuerier
    from .infrastructure import Counter, Discard, Queue

    Queue.take_state = _queue_take_state
    Counter.take_state = _counter_take_state
    ARPQuerier.take_state = _arpquerier_take_state
    Discard.take_state = _discard_take_state


install_take_state_handlers()
