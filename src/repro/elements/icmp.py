"""ICMP error generation."""

from __future__ import annotations

from ..net.addresses import IPAddress
from ..net.headers import IP_HEADER_LEN, IP_PROTO_ICMP, IPHeader, make_icmp_error
from ..net.packet import Packet
from .element import ConfigError, Element
from .registry import register

_TYPE_NAMES = {
    "unreachable": 3,
    "timeexceeded": 11,
    "time-exceeded": 11,
    "parameterproblem": 12,
    "parameter-problem": 12,
    "redirect": 5,
}

_CODE_NAMES = {
    "net": 0,
    "host": 1,
    "protocol": 2,
    "port": 3,
    "needfrag": 4,
    "transit": 0,
    "reassembly": 1,
    "host-redirect": 1,
}


@register
class ICMPError(Element):
    """Consumes an IP packet and emits the corresponding ICMP error
    message, addressed to the packet's source.  The outgoing packet's
    Fix-IP-Source annotation is set so FixIPSrc stamps the address of
    the interface it actually leaves through — the reason Figure 1's
    output path contains FixIPSrc at all."""

    class_name = "ICMPError"
    processing = "a/a"
    port_counts = "1/1"

    def configure(self, args):
        if len(args) != 3:
            raise ConfigError("ICMPError(MYADDR, TYPE, CODE)")
        self.my_ip = IPAddress(args[0])
        self.icmp_type = self._named(args[1], _TYPE_NAMES, "ICMP type")
        self.icmp_code = self._named(args[2], _CODE_NAMES, "ICMP code")
        self.errors_sent = 0

    @staticmethod
    def _named(text, table, what):
        key = text.strip().lower()
        if key in table:
            return table[key]
        try:
            return int(text)
        except ValueError:
            raise ConfigError("bad %s %r" % (what, text)) from None

    def simple_action(self, packet):
        try:
            original = IPHeader.unpack(packet.data)
        except ValueError:
            return None
        if original.protocol == IP_PROTO_ICMP:
            # Never send ICMP errors about ICMP errors (RFC 1122).
            first_byte = packet.data[original.header_length: original.header_length + 1]
            if first_byte and first_byte[0] not in (0, 8):
                return None
        body = make_icmp_error(self.icmp_type, self.icmp_code, packet.data)
        header = IPHeader(
            src=self.my_ip,
            dst=original.src,
            protocol=IP_PROTO_ICMP,
            ttl=255,
            total_length=IP_HEADER_LEN + len(body),
        )
        error = Packet(header.pack() + body)
        error.set_dest_ip_anno(original.src)
        error.fix_ip_src_anno = True
        self.errors_sent += 1
        return error
