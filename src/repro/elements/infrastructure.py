"""Infrastructure elements: queues, fan-out, switches, sources, sinks.

These are the general-purpose plumbing elements of Figure 1 and of the
"Simple" configuration (device → Queue → device) used throughout the
evaluation.
"""

from __future__ import annotations

import random
from collections import deque

from ..net.packet import Packet
from .element import ConfigError, Element
from .registry import register


@register
class Queue(Element):
    """A FIFO packet queue: push input, pull output — the push/pull
    boundary of every forwarding path.  Drops arriving packets when full
    (the "Queue drop" outcome of §8.4)."""

    class_name = "Queue"
    processing = "h/l"
    port_counts = "1/1"
    DEFAULT_CAPACITY = 1000

    def configure(self, args):
        if len(args) > 1:
            raise ConfigError("Queue takes at most one argument (capacity)")
        self.capacity = self.DEFAULT_CAPACITY
        if args and args[0]:
            try:
                self.capacity = int(args[0])
            except ValueError:
                raise ConfigError("bad Queue capacity %r" % args[0]) from None
            if self.capacity < 1:
                raise ConfigError("Queue capacity must be positive")
        self._deque = deque()
        self.drops = 0
        self.highwater = 0

    def __len__(self):
        return len(self._deque)

    def push(self, port, packet):
        if len(self._deque) >= self.capacity:
            self.drops += 1
            self.charge("queue_drop")
            return
        self._deque.append(packet)
        if len(self._deque) > self.highwater:
            self.highwater = len(self._deque)

    def pull(self, port):
        if not self._deque:
            return None
        return self._deque.popleft()


@register
class FrontDropQueue(Queue):
    """A Queue that makes room for new packets by dropping the *oldest*
    instead of the arrival — better for feedback-based protocols, since
    the surviving packets carry fresher information."""

    class_name = "FrontDropQueue"

    def push(self, port, packet):
        if len(self._deque) >= self.capacity:
            self._deque.popleft()
            self.drops += 1
        self._deque.append(packet)
        if len(self._deque) > self.highwater:
            self.highwater = len(self._deque)


@register
class Shaper(Element):
    """A pull rate limiter: passes at most RATE packets per simulated
    second of scheduler time (one millisecond per task pass downstream,
    matching RatedSource's clock)."""

    class_name = "Shaper"
    processing = "l/l"
    port_counts = "1/1"
    TICK_SECONDS = 1e-3

    def configure(self, args):
        if len(args) != 1:
            raise ConfigError("Shaper(RATE)")
        self.rate = float(args[0])
        self._credit = 0.0
        self.passed = 0

    def tick(self):
        """Advance the shaper's clock one scheduler pass."""
        self._credit = min(self._credit + self.rate * self.TICK_SECONDS, self.rate)

    def is_task(self):
        return True

    def run_task(self):
        self.tick()
        return False  # the tick is bookkeeping, not useful work

    def pull(self, port):
        if self._credit < 1.0:
            return None
        packet = self.input(0).pull()
        if packet is None:
            return None
        self._credit -= 1.0
        self.passed += 1
        return packet


@register
class TimedSource(Element):
    """Emits one configured packet every INTERVAL simulated seconds
    (scheduler passes model milliseconds, as for RatedSource)."""

    class_name = "TimedSource"
    processing = "h/h"
    port_counts = "0/1"
    TICK_SECONDS = 1e-3

    def configure(self, args):
        if len(args) > 2:
            raise ConfigError("TimedSource(INTERVAL, DATA)")
        self.interval = float(args[0]) if args and args[0] else 0.5
        data = args[1] if len(args) > 1 and args[1] else "Timed data."
        if data.startswith('"') and data.endswith('"'):
            data = data[1:-1]
        self.data = data.encode("utf-8", "surrogateescape")
        self._elapsed = 0.0
        self.emitted = 0

    def is_task(self):
        return True

    def run_task(self):
        self._elapsed += self.TICK_SECONDS
        if self._elapsed < self.interval:
            return False
        self._elapsed -= self.interval
        self.output(0).push(Packet(self.data))
        self.emitted += 1
        return True


@register
class Discard(Element):
    """Sinks every packet.  Dead ends like this are what let
    click-devirtualize share code between whole upstream paths (§6.1)."""

    class_name = "Discard"
    processing = "h/h"
    flow_code = "x/-"
    port_counts = "1/0"

    def configure(self, args):
        self.count = 0

    def push(self, port, packet):
        self.count += 1


@register
class Counter(Element):
    """Counts passing packets and bytes; otherwise transparent."""

    class_name = "Counter"
    processing = "a/a"
    port_counts = "1/1"

    def configure(self, args):
        self.count = 0
        self.byte_count = 0

    def simple_action(self, packet):
        self.count += 1
        self.byte_count += len(packet)
        return packet


@register
class Tee(Element):
    """Copies each input packet to every output (push)."""

    class_name = "Tee"
    processing = "h/h"
    port_counts = "1/1-"

    def configure(self, args):
        if len(args) > 1:
            raise ConfigError("Tee takes at most one argument")
        self.declared_outputs = int(args[0]) if args and args[0] else None

    def push(self, port, packet):
        for out in range(self.noutputs - 1):
            self.output(out).push(packet.clone())
        self.output(self.noutputs - 1).push(packet)


@register
class StaticSwitch(Element):
    """Routes every packet to one fixed output chosen at configuration
    time; the canonical source of dead branches click-undead removes
    (§6.3).  ``StaticSwitch(-1)`` drops everything."""

    class_name = "StaticSwitch"
    processing = "h/h"
    port_counts = "1/-"

    def configure(self, args):
        if len(args) != 1:
            raise ConfigError("StaticSwitch needs exactly one argument (output)")
        try:
            self.active_output = int(args[0])
        except ValueError:
            raise ConfigError("bad StaticSwitch output %r" % args[0]) from None

    def push(self, port, packet):
        self.checked_push(self.active_output, packet)


@register
class Switch(StaticSwitch):
    """Like StaticSwitch but writable at run time (so *not* subject to
    dead-branch elimination)."""

    class_name = "Switch"

    def set_output(self, output):
        self.active_output = output

    def read_handlers(self):
        handlers = super().read_handlers()
        handlers["switch"] = lambda: self.active_output
        return handlers

    def write_handlers(self):
        return {"switch": lambda value: self.set_output(int(value))}


@register
class Null(Element):
    """Forwards every packet unchanged — the canonical do-nothing
    conduit (useful as a placeholder in pattern replacements)."""

    class_name = "Null"
    processing = "a/a"
    port_counts = "1/1"

    def configure(self, args):
        if args:
            raise ConfigError("Null takes no configuration arguments")


@register
class Idle(Element):
    """Connects to anything, does nothing: discards pushed packets,
    returns None for pulls.  Used to cap unused ports."""

    class_name = "Idle"
    processing = "a/a"
    port_counts = "-/-"

    def configure(self, args):
        pass

    def push(self, port, packet):
        pass

    def pull(self, port):
        return None


@register
class InfiniteSource(Element):
    """A scheduled source: emits ``burst`` copies of a configured packet
    per task invocation, up to ``limit`` total (-1 = unlimited)."""

    class_name = "InfiniteSource"
    processing = "h/h"
    port_counts = "0/1"

    def configure(self, args):
        if len(args) > 3:
            raise ConfigError("InfiniteSource(DATA, LIMIT, BURST)")
        data = args[0] if len(args) > 0 and args[0] else "Random bulk data."
        if data.startswith('"') and data.endswith('"'):
            data = data[1:-1]
        self.data = data.encode("utf-8", "surrogateescape")
        self.limit = int(args[1]) if len(args) > 1 and args[1] else -1
        self.burst = int(args[2]) if len(args) > 2 and args[2] else 1
        self.emitted = 0

    def is_task(self):
        return True

    def run_task(self):
        if self.limit >= 0 and self.emitted >= self.limit:
            return False
        count = self.burst
        if self.limit >= 0:
            count = min(count, self.limit - self.emitted)
        for _ in range(count):
            self.output(0).push(Packet(self.data))
            self.emitted += 1
        return count > 0


@register
class Unqueue(Element):
    """A scheduled pull-to-push conduit: each task invocation pulls up to
    ``burst`` packets upstream and pushes them downstream."""

    class_name = "Unqueue"
    processing = "l/h"
    port_counts = "1/1"

    def configure(self, args):
        if len(args) > 1:
            raise ConfigError("Unqueue takes at most one argument (burst)")
        self.burst = int(args[0]) if args and args[0] else 1
        self.count = 0

    def is_task(self):
        return True

    def run_task(self):
        moved = 0
        for _ in range(self.burst):
            packet = self.input(0).pull()
            if packet is None:
                break
            self.output(0).push(packet)
            moved += 1
        self.count += moved
        return moved > 0


@register
class RandomSample(Element):
    """Forwards each packet with the configured probability, dropping
    (or diverting to output 1) the rest."""

    class_name = "RandomSample"
    processing = "a/ah"
    port_counts = "1/1-2"

    def configure(self, args):
        if len(args) != 1:
            raise ConfigError("RandomSample needs a probability")
        self.probability = float(args[0])
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigError("probability must be in [0, 1]")
        self.rng = random.Random(0x5EED)
        self.drops = 0

    def push(self, port, packet):
        if self.rng.random() < self.probability:
            self.output(0).push(packet)
        else:
            self.drops += 1
            if self.noutputs > 1:
                self.output(1).push(packet)

    def pull(self, port):
        packet = self.input(0).pull()
        if packet is None:
            return None
        if self.rng.random() < self.probability:
            return packet
        self.drops += 1
        return None


@register
class Strip(Element):
    """Removes a fixed number of bytes from the front of each packet —
    ``Strip(14)`` removes the Ethernet header in Figure 1."""

    class_name = "Strip"
    processing = "a/a"
    port_counts = "1/1"

    def configure(self, args):
        if len(args) != 1:
            raise ConfigError("Strip needs a byte count")
        try:
            self.nbytes = int(args[0])
        except ValueError:
            raise ConfigError("bad Strip count %r" % args[0]) from None
        if self.nbytes < 0:
            raise ConfigError("Strip count must be non-negative")

    def simple_action(self, packet):
        if len(packet) < self.nbytes:
            return None
        packet.strip(self.nbytes)
        return packet


@register
class RatedSource(Element):
    """A scheduled source that emits at a bounded average rate: at most
    ``rate`` packets per ``run_task`` invocation-second, implemented as
    a token bucket refilled by the scheduler's notion of time (one tick
    per task invocation)."""

    class_name = "RatedSource"
    processing = "h/h"
    port_counts = "0/1"
    TICK_SECONDS = 1e-3  # one scheduler pass models a millisecond

    def configure(self, args):
        if len(args) > 3:
            raise ConfigError("RatedSource(DATA, RATE, LIMIT)")
        data = args[0] if len(args) > 0 and args[0] else "Rated data."
        if data.startswith('"') and data.endswith('"'):
            data = data[1:-1]
        self.data = data.encode("utf-8", "surrogateescape")
        self.rate = float(args[1]) if len(args) > 1 and args[1] else 10.0
        self.limit = int(args[2]) if len(args) > 2 and args[2] else -1
        self.emitted = 0
        self._credit = 0.0

    def is_task(self):
        return True

    def run_task(self):
        if self.limit >= 0 and self.emitted >= self.limit:
            return False
        self._credit = min(self._credit + self.rate * self.TICK_SECONDS, self.rate)
        sent = 0
        while self._credit >= 1.0:
            if self.limit >= 0 and self.emitted >= self.limit:
                break
            self.output(0).push(Packet(self.data))
            self.emitted += 1
            self._credit -= 1.0
            sent += 1
        return sent > 0


@register
class PaintSwitch(Element):
    """Routes each packet to the output numbered by its paint
    annotation; out-of-range paints are dropped."""

    class_name = "PaintSwitch"
    processing = "h/h"
    port_counts = "1/-"

    def configure(self, args):
        if args:
            raise ConfigError("PaintSwitch takes no arguments")
        self.drops = 0

    def push(self, port, packet):
        if 0 <= packet.paint < self.noutputs:
            self.output(packet.paint).push(packet)
        else:
            self.drops += 1


@register
class CheckLength(Element):
    """Packets longer than the configured maximum leave on output 1 (or
    are dropped when it doesn't exist)."""

    class_name = "CheckLength"
    processing = "a/ah"
    port_counts = "1/1-2"

    def configure(self, args):
        if len(args) != 1:
            raise ConfigError("CheckLength(MAX)")
        self.max_length = int(args[0])
        self.drops = 0

    def push(self, port, packet):
        if len(packet) <= self.max_length:
            self.output(0).push(packet)
        elif self.noutputs > 1:
            self.output(1).push(packet)
        else:
            self.drops += 1

    def pull(self, port):
        packet = self.input(0).pull()
        if packet is None:
            return None
        if len(packet) <= self.max_length:
            return packet
        if self.noutputs > 1:
            self.output(1).push(packet)
        else:
            self.drops += 1
        return None


@register
class Unstrip(Element):
    """Restores bytes at the front of the packet (from headroom)."""

    class_name = "Unstrip"
    processing = "a/a"
    port_counts = "1/1"

    def configure(self, args):
        if len(args) != 1:
            raise ConfigError("Unstrip needs a byte count")
        self.nbytes = int(args[0])

    def simple_action(self, packet):
        if packet.headroom < self.nbytes:
            return None
        # Expose previously-stripped bytes without rewriting them.  The
        # cached data view (if any) reflects the old offset and must be
        # dropped, or downstream readers see the stripped payload.
        packet._data_offset -= self.nbytes
        packet._data_cache = None
        return packet
