"""IP-path elements: the per-packet work of Figure 1's forwarding path.

Every element here corresponds to one box on the IP router's forwarding
path: Paint, CheckIPHeader, GetIPAddress, DropBroadcasts, CheckPaint,
IPGWOptions, FixIPSrc, DecIPTTL, IPFragmenter.  Their semantics follow
Click's element documentation; errors leave on secondary outputs (wired
to ICMPError elements in the IP router) when those outputs exist.
"""

from __future__ import annotations

import struct

from ..net.addresses import IPAddress
from ..net.checksum import update_checksum_u16
from ..net.packet import _DEST_IP_CACHE
from ..net.headers import IP_HEADER_LEN, IPHeader
from .element import ConfigError, Element
from .registry import register

PACKET_TYPE_HOST = "host"
PACKET_TYPE_BROADCAST = "broadcast"
PACKET_TYPE_MULTICAST = "multicast"
PACKET_TYPE_OTHERHOST = "otherhost"


@register
class Paint(Element):
    """Sets the paint annotation; the IP router paints each packet with
    its input interface number to detect same-interface forwarding."""

    class_name = "Paint"
    processing = "a/a"
    port_counts = "1/1"

    def configure(self, args):
        if len(args) != 1:
            raise ConfigError("Paint needs a color")
        try:
            self.color = int(args[0])
        except ValueError:
            raise ConfigError("bad Paint color %r" % args[0]) from None

    def simple_action(self, packet):
        packet.paint = self.color
        return packet


@register
class PaintTee(Element):
    """Sends packets whose paint matches the configured color out both
    output 0 (a copy) and output 1; everything else goes to output 0
    only.  Figure 1 labels this box CheckPaint."""

    class_name = "PaintTee"
    processing = "a/ah"
    port_counts = "1/1-2"
    fast_action = "_tee"

    def configure(self, args):
        if len(args) != 1:
            raise ConfigError("PaintTee needs a color")
        self.color = int(args[0])

    def _tee(self, packet):
        if packet.paint == self.color and self.noutputs > 1:
            self.output(1).push(packet.clone())
        return packet

    def push(self, port, packet):
        result = self._tee(packet)
        if result is not None:
            self.output(0).push(result)

    def pull(self, port):
        packet = self.input(0).pull()
        if packet is None:
            return None
        return self._tee(packet)


@register
class CheckPaint(PaintTee):
    """Alias matching Figure 1's label for the paint check."""

    class_name = "CheckPaint"


@register
class CheckIPHeader(Element):
    """Validates the IP header: version, header length, total length,
    checksum, and source address sanity; sets the destination-IP
    annotation.  Bad packets go to output 1 if it exists, else are
    dropped.  (On strict-alignment architectures it also requires
    word-aligned packet data — the constraint click-align enforces.)"""

    class_name = "CheckIPHeader"
    processing = "a/ah"
    port_counts = "1/1-2"
    fast_action = "_check"
    # The alignment click-align must guarantee at our input (modulus 4,
    # offset 0: a word-aligned IP header).
    required_alignment = (4, 0)

    def configure(self, args):
        self.bad_src = set()
        self.offset = 0
        self.drops = 0
        self.strict_alignment = False
        for arg in args:
            arg = arg.strip()
            if not arg:
                continue
            if arg.upper().startswith("OFFSET"):
                self.offset = int(arg.split()[1])
            else:
                for addr in arg.split():
                    self.bad_src.add(IPAddress(addr).value)

    def _fail(self, port_packet):
        self.drops += 1
        if self.noutputs > 1:
            self.output(1).push(port_packet)
        return None

    def push(self, port, packet):
        result = self._check(packet)
        if result is not None:
            self.output(0).push(result)

    def pull(self, port):
        packet = self.input(0).pull()
        if packet is None:
            return None
        return self._check(packet)

    def _check(self, packet):
        data = packet._data_cache
        if data is None:
            data = packet.data
        if self.offset:
            data = data[self.offset:]
        if self.strict_alignment and (packet.data_alignment() + self.offset) % 4 != 0:
            raise RuntimeError(
                "CheckIPHeader %s: unaligned packet data (alignment %d) — "
                "on ARM this is a crash; run click-align"
                % (self.name, packet.data_alignment())
            )
        length = len(data)
        if length < IP_HEADER_LEN:
            return self._fail(packet)
        version_ihl = data[0]
        if version_ihl >> 4 != 4:
            return self._fail(packet)
        header_length = (version_ihl & 0xF) * 4
        if header_length < IP_HEADER_LEN or length < header_length:
            return self._fail(packet)
        # One big-int conversion serves every remaining test: RFC 1071
        # verification (the header is valid iff its one's-complement sum
        # folds to 0xFFFF, i.e. the big-endian value is a nonzero
        # multiple of 0xFFFF — the all-zero header cannot reach here, it
        # fails the version test), and the length/source/destination
        # fields, extracted by shifting instead of re-slicing the bytes.
        header = int.from_bytes(data[:header_length], "big")
        shift = header_length * 8
        total_length = (header >> (shift - 32)) & 0xFFFF
        if total_length < header_length or total_length > length:
            return self._fail(packet)
        if header % 0xFFFF:
            return self._fail(packet)
        src = (header >> (shift - 128)) & 0xFFFFFFFF
        if src == 0xFFFFFFFF or src in self.bad_src:
            return self._fail(packet)
        packet.ip_header_offset = self.offset
        dst = (header >> (shift - 160)) & 0xFFFFFFFF
        anno = _DEST_IP_CACHE.get(dst)
        if anno is None:
            packet.set_dest_ip_anno(dst)
        else:
            packet.dest_ip_anno = anno
        return packet


@register
class SetIPChecksum(Element):
    """Recomputes the IP header checksum from scratch (used after
    header-rewriting elements that don't update incrementally)."""

    class_name = "SetIPChecksum"
    processing = "a/a"
    port_counts = "1/1"

    def configure(self, args):
        if args:
            raise ConfigError("SetIPChecksum takes no arguments")

    def simple_action(self, packet):
        from ..net.checksum import internet_checksum

        data = packet.data
        if len(data) < IP_HEADER_LEN:
            return None
        header_length = (data[0] & 0xF) * 4
        if header_length < IP_HEADER_LEN or len(data) < header_length:
            return None
        header = bytearray(data[:header_length])
        header[10:12] = b"\x00\x00"
        packet.replace(10, struct.pack("!H", internet_checksum(header)))
        return packet


@register
class StripToNetworkHeader(Element):
    """Strips everything before the network header (per the annotation
    CheckIPHeader/IPInputCombo set)."""

    class_name = "StripToNetworkHeader"
    processing = "a/a"
    port_counts = "1/1"

    def configure(self, args):
        if args:
            raise ConfigError("StripToNetworkHeader takes no arguments")

    def simple_action(self, packet):
        offset = packet.ip_header_offset
        if offset is None or offset <= 0:
            return packet
        packet.strip(offset)
        packet.ip_header_offset = 0
        return packet


@register
class GetIPAddress(Element):
    """Copies 4 bytes at the configured offset into the destination-IP
    annotation (offset 16 = the IP destination field)."""

    class_name = "GetIPAddress"
    processing = "a/a"
    port_counts = "1/1"

    def configure(self, args):
        if len(args) != 1:
            raise ConfigError("GetIPAddress needs an offset")
        self.offset = int(args[0])

    def simple_action(self, packet):
        data = packet.data
        if len(data) < self.offset + 4:
            return None
        packet.set_dest_ip_anno(struct.unpack_from("!I", data, self.offset)[0])
        return packet


@register
class DropBroadcasts(Element):
    """Drops packets the device layer marked as link-level broadcasts
    (routers must not forward those)."""

    class_name = "DropBroadcasts"
    processing = "a/a"
    port_counts = "1/1"

    def configure(self, args):
        self.drops = 0

    def simple_action(self, packet):
        if packet.user_annos.get("packet_type") == PACKET_TYPE_BROADCAST:
            self.drops += 1
            return None
        return packet


@register
class IPGWOptions(Element):
    """Processes IP options a gateway must handle.  Headers without
    options (IHL == 5) pass untouched — the common case the combo
    elements exploit.  Packets with broken options exit output 1."""

    class_name = "IPGWOptions"
    processing = "a/ah"
    port_counts = "1/1-2"
    fast_action = "_process"

    def configure(self, args):
        if len(args) > 1:
            raise ConfigError("IPGWOptions takes at most the router address")
        self.my_ip = IPAddress(args[0]) if args and args[0] else None
        self.problems = 0

    def push(self, port, packet):
        result = self._process(packet)
        if result is not None:
            self.output(0).push(result)

    def pull(self, port):
        packet = self.input(0).pull()
        if packet is None:
            return None
        return self._process(packet)

    def _process(self, packet):
        data = packet.data
        header_length = (data[0] & 0xF) * 4
        if header_length <= IP_HEADER_LEN:
            return packet
        # Walk the options; we understand EOL, NOP, and (by validating
        # lengths) pass RR/TS through.  Anything malformed is a
        # parameter problem.
        cursor = IP_HEADER_LEN
        while cursor < header_length:
            option = data[cursor]
            if option == 0:  # end of options
                break
            if option == 1:  # no-op
                cursor += 1
                continue
            if cursor + 1 >= header_length:
                return self._problem(packet)
            opt_len = data[cursor + 1]
            if opt_len < 2 or cursor + opt_len > header_length:
                return self._problem(packet)
            cursor += opt_len
        return packet

    def _problem(self, packet):
        self.problems += 1
        if self.noutputs > 1:
            self.output(1).push(packet)
        return None


@register
class FixIPSrc(Element):
    """If the Fix-IP-Source annotation is set (by ICMPError for locally
    generated errors), rewrite the IP source to this router's address on
    the outgoing interface and repair the checksum."""

    class_name = "FixIPSrc"
    processing = "a/a"
    port_counts = "1/1"

    def configure(self, args):
        if len(args) != 1:
            raise ConfigError("FixIPSrc needs the interface IP address")
        self.my_ip = IPAddress(args[0])

    def simple_action(self, packet):
        if not packet.fix_ip_src_anno:
            return packet
        data = packet.data
        old_checksum = struct.unpack_from("!H", data, 10)[0]
        checksum = old_checksum
        new_src = self.my_ip.packed()
        for word_index in range(2):
            offset = 12 + word_index * 2
            old_word = struct.unpack_from("!H", data, offset)[0]
            new_word = struct.unpack_from("!H", new_src, word_index * 2)[0]
            checksum = update_checksum_u16(checksum, old_word, new_word)
        packet.replace(12, new_src)
        packet.replace(10, struct.pack("!H", checksum))
        packet.fix_ip_src_anno = False
        return packet


@register
class DecIPTTL(Element):
    """Decrements the IP TTL with an incremental checksum update; packets
    whose TTL has expired leave on output 1 (to an ICMPError in the IP
    router)."""

    class_name = "DecIPTTL"
    processing = "a/ah"
    port_counts = "1/1-2"
    fast_action = "_decrement"

    def configure(self, args):
        self.expired = 0

    def push(self, port, packet):
        result = self._decrement(packet)
        if result is not None:
            self.output(0).push(result)

    def pull(self, port):
        packet = self.input(0).pull()
        if packet is None:
            return None
        return self._decrement(packet)

    def _decrement(self, packet):
        data = packet.data
        ttl = data[8]
        if ttl <= 1:
            self.expired += 1
            if self.noutputs > 1:
                self.output(1).push(packet)
            return None
        old_word = (ttl << 8) | data[9]
        old_checksum = (data[10] << 8) | data[11]
        # RFC 1624 incremental update, inlined: HC' = ~(~HC + ~m + m')
        # where m' = m - 0x0100 (the TTL byte dropping by one).
        total = ((~old_checksum) & 0xFFFF) + ((~old_word) & 0xFFFF) + (old_word - 0x0100)
        while total > 0xFFFF:
            total = (total & 0xFFFF) + (total >> 16)
        new_checksum = (~total) & 0xFFFF
        # Poke the three changed bytes directly; reading data[11] above
        # already guaranteed they are inside the buffer.
        buf = packet._buf
        base = packet._data_offset + 8
        buf[base] = ttl - 1
        buf[base + 2] = new_checksum >> 8
        buf[base + 3] = new_checksum & 0xFF
        packet._data_cache = None
        return packet


@register
class IPFragmenter(Element):
    """Fragments IP packets larger than the configured MTU.  Packets
    with DF set that would need fragmenting leave on output 1 (the
    ICMP "fragmentation needed" path)."""

    class_name = "IPFragmenter"
    processing = "h/h"
    port_counts = "1/1-2"
    # The common case (packet fits the MTU) returns the packet untouched;
    # fragments and DF rejects are pushed from inside the method, so the
    # fast path can inline the MTU test into its chains.
    fast_action = "_maybe_fragment"

    def configure(self, args):
        if not args or len(args) > 1:
            raise ConfigError("IPFragmenter needs an MTU")
        self.mtu = int(args[0])
        if self.mtu < 68:
            raise ConfigError("MTU must be at least 68")
        self.fragments_made = 0
        self.df_drops = 0

    def push(self, port, packet):
        packet = self._maybe_fragment(packet)
        if packet is not None:
            self.output(0).push(packet)

    def _maybe_fragment(self, packet):
        if len(packet) <= self.mtu:
            return packet
        header = IPHeader.unpack(packet.data)
        if header.dont_fragment:
            self.df_drops += 1
            if self.noutputs > 1:
                self.output(1).push(packet)
            return None
        for fragment in self._fragment(packet, header):
            self.output(0).push(fragment)
        return None

    def _fragment(self, packet, header):
        fragments = fragment_ip_packet(packet, header, self.mtu)
        self.fragments_made += len(fragments)
        return fragments


def fragment_ip_packet(packet, header, mtu):
    """Split ``packet`` into MTU-sized IP fragments, preserving header
    options; shared by IPFragmenter and the IPOutputCombo pattern so the
    optimized and unoptimized graphs emit identical bytes."""
    from ..net.checksum import internet_checksum

    data = packet.data
    header_bytes = data[: header.header_length]
    payload = data[header.header_length: header.total_length]
    max_payload = ((mtu - header.header_length) // 8) * 8
    fragments = []
    cursor = 0
    while cursor < len(payload):
        chunk = payload[cursor:cursor + max_payload]
        more = (cursor + len(chunk)) < len(payload)
        # Patch the original header bytes (preserving any options)
        # rather than rebuilding, as Click does.
        frag_header = bytearray(header_bytes)
        struct.pack_into("!H", frag_header, 2, header.header_length + len(chunk))
        flags = header.flags | 0x1 if more else header.flags
        offset_units = header.fragment_offset + cursor // 8
        struct.pack_into("!H", frag_header, 6, (flags << 13) | offset_units)
        frag_header[10:12] = b"\x00\x00"
        struct.pack_into("!H", frag_header, 10, internet_checksum(frag_header))
        fragment = packet.clone()
        fragment.set_data(bytes(frag_header) + chunk)
        fragments.append(fragment)
        cursor += len(chunk)
    return fragments
