"""ICMP echo (ping) handling."""

from __future__ import annotations

import struct

from ..net.checksum import internet_checksum
from ..net.headers import ICMP_ECHO, ICMP_ECHO_REPLY, IP_HEADER_LEN, IP_PROTO_ICMP
from .element import ConfigError, Element
from .registry import register


@register
class ICMPPingResponder(Element):
    """Answers ICMP echo requests addressed to this host: swaps the IP
    source and destination, flips the ICMP type to echo-reply, repairs
    both checksums, and emits the reply.  Non-echo traffic is dropped
    (upstream classification should have isolated pings).  The reply's
    destination annotation is set for routing back."""

    class_name = "ICMPPingResponder"
    processing = "a/a"
    port_counts = "1/1"

    def configure(self, args):
        if args:
            raise ConfigError("ICMPPingResponder takes no arguments")
        self.replies_sent = 0

    def simple_action(self, packet):
        data = packet.data
        if len(data) < IP_HEADER_LEN + 8 or data[9] != IP_PROTO_ICMP:
            return None
        header_length = (data[0] & 0xF) * 4
        if data[header_length] != ICMP_ECHO:
            return None
        # Swap IP addresses, reset TTL, clear fragmentation.
        src = data[12:16]
        dst = data[16:20]
        packet.replace(12, dst + src)
        packet.replace(8, bytes([64]))
        ip_header = bytearray(packet.data[:header_length])
        ip_header[10:12] = b"\x00\x00"
        packet.replace(10, struct.pack("!H", internet_checksum(ip_header)))
        # Echo -> echo reply; recompute the ICMP checksum.
        packet.replace(header_length, bytes([ICMP_ECHO_REPLY]))
        icmp = bytearray(packet.data[header_length:])
        icmp[2:4] = b"\x00\x00"
        packet.replace(header_length + 2, struct.pack("!H", internet_checksum(icmp)))
        from ..net.addresses import IPAddress

        packet.set_dest_ip_anno(IPAddress(bytes(src)))
        self.replies_sent += 1
        return packet
