"""The element-class registry and specification export.

Optimization tools must know element properties — processing codes, flow
codes, port counts — without linking against element implementations
(§5.3).  :func:`export_specs` plays the role of the paper's "scripts
[that] extract these specifications from the source and write them, in
structured form, into files read by the optimizers": it scrapes the
class-level attributes into :class:`~repro.graph.ports.ClassSpec`
objects (or a textual spec file) that the tools consume.
"""

from __future__ import annotations

from ..graph.ports import ClassSpec

ELEMENT_CLASSES = {}


def register(cls):
    """Class decorator: add an element class to the global registry."""
    name = cls.class_name
    if name in ELEMENT_CLASSES and ELEMENT_CLASSES[name] is not cls:
        raise ValueError("element class %r registered twice" % name)
    ELEMENT_CLASSES[name] = cls
    return cls


def lookup(class_name):
    """The element class registered under ``class_name``, or None."""
    return ELEMENT_CLASSES.get(class_name)


def spec_for_class(cls):
    """The ClassSpec scraped from an element class's attributes."""
    return ClassSpec(
        class_name=cls.class_name,
        processing=cls.processing,
        flow_code=cls.flow_code,
        port_counts=cls.port_counts,
    )


def default_specs(extra_classes=()):
    """ClassSpec table for every registered class (what a tool loads
    instead of the element code itself)."""
    specs = {name: spec_for_class(cls) for name, cls in ELEMENT_CLASSES.items()}
    for cls in extra_classes:
        specs[cls.class_name] = spec_for_class(cls)
    return specs


def export_specs():
    """The structured spec file: one line per class,
    ``name<TAB>processing<TAB>flow<TAB>ports``."""
    lines = []
    for name in sorted(ELEMENT_CLASSES):
        cls = ELEMENT_CLASSES[name]
        lines.append("%s\t%s\t%s\t%s" % (name, cls.processing, cls.flow_code, cls.port_counts))
    return "\n".join(lines) + "\n"


# -- legal-composition introspection (for repro.verify's generator) -------

# Port counts are declared as ranges ("1/1-2", "-/1"); probing a small
# window is enough because no stock element wants more ports than this.
_PROBE_LIMIT = 8


def composition_info(cls):
    """Everything a config *generator* needs to wire an element of this
    class legally: the concrete port counts its spec allows (probed
    through :class:`~repro.graph.ports.PortCountSpec` so range syntax
    need not be re-parsed), and the per-port push/pull codes.

    Returns a dict with keys ``class_name``, ``input_counts``,
    ``output_counts`` (sorted lists of legal counts within the probe
    window), ``input_code(port)``/``output_code(port)`` results exposed
    as ``input_codes``/``output_codes`` strings over that window, and
    ``flow_code``."""
    spec = spec_for_class(cls)
    input_counts = [n for n in range(_PROBE_LIMIT + 1) if spec.port_counts.inputs_ok(n)]
    output_counts = [n for n in range(_PROBE_LIMIT + 1) if spec.port_counts.outputs_ok(n)]
    max_in = max(input_counts) if input_counts else 0
    max_out = max(output_counts) if output_counts else 0
    return {
        "class_name": cls.class_name,
        "input_counts": input_counts,
        "output_counts": output_counts,
        "input_codes": "".join(spec.processing.input_code(p) for p in range(max(max_in, 1))),
        "output_codes": "".join(spec.processing.output_code(p) for p in range(max(max_out, 1))),
        "flow_code": spec.flow_code.text,
    }


def composition_table(class_names=None):
    """``{class_name: composition_info(cls)}`` for the requested classes
    (default: every registered class)."""
    names = sorted(ELEMENT_CLASSES) if class_names is None else list(class_names)
    table = {}
    for name in names:
        cls = ELEMENT_CLASSES.get(name)
        if cls is not None:
            table[name] = composition_info(cls)
    return table


def parse_spec_file(text):
    """Parse :func:`export_specs` output back into a ClassSpec table —
    this is what a tool running in a separate process would load."""
    specs = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split("\t")
        if len(fields) != 4:
            raise ValueError("bad spec line %r" % line)
        name, processing, flow_code, port_counts = fields
        specs[name] = ClassSpec(name, processing, flow_code, port_counts)
    return specs
