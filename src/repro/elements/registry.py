"""The element-class registry and specification export.

Optimization tools must know element properties — processing codes, flow
codes, port counts — without linking against element implementations
(§5.3).  :func:`export_specs` plays the role of the paper's "scripts
[that] extract these specifications from the source and write them, in
structured form, into files read by the optimizers": it scrapes the
class-level attributes into :class:`~repro.graph.ports.ClassSpec`
objects (or a textual spec file) that the tools consume.
"""

from __future__ import annotations

from ..graph.ports import ClassSpec

ELEMENT_CLASSES = {}


def register(cls):
    """Class decorator: add an element class to the global registry."""
    name = cls.class_name
    if name in ELEMENT_CLASSES and ELEMENT_CLASSES[name] is not cls:
        raise ValueError("element class %r registered twice" % name)
    ELEMENT_CLASSES[name] = cls
    return cls


def lookup(class_name):
    """The element class registered under ``class_name``, or None."""
    return ELEMENT_CLASSES.get(class_name)


def spec_for_class(cls):
    """The ClassSpec scraped from an element class's attributes."""
    return ClassSpec(
        class_name=cls.class_name,
        processing=cls.processing,
        flow_code=cls.flow_code,
        port_counts=cls.port_counts,
    )


def default_specs(extra_classes=()):
    """ClassSpec table for every registered class (what a tool loads
    instead of the element code itself)."""
    specs = {name: spec_for_class(cls) for name, cls in ELEMENT_CLASSES.items()}
    for cls in extra_classes:
        specs[cls.class_name] = spec_for_class(cls)
    return specs


def export_specs():
    """The structured spec file: one line per class,
    ``name<TAB>processing<TAB>flow<TAB>ports``."""
    lines = []
    for name in sorted(ELEMENT_CLASSES):
        cls = ELEMENT_CLASSES[name]
        lines.append("%s\t%s\t%s\t%s" % (name, cls.processing, cls.flow_code, cls.port_counts))
    return "\n".join(lines) + "\n"


def parse_spec_file(text):
    """Parse :func:`export_specs` output back into a ClassSpec table —
    this is what a tool running in a separate process would load."""
    specs = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split("\t")
        if len(fields) != 4:
            raise ValueError("bad spec line %r" % line)
        name, processing, flow_code, port_counts = fields
        specs[name] = ClassSpec(name, processing, flow_code, port_counts)
    return specs
