"""IP routing-table elements.

``LookupIPRoute`` (Click's StaticIPLookup) is the routing step in
Figure 1: longest-prefix match on the destination-IP annotation, which
selects an output port and optionally rewrites the annotation to the
gateway address for ARPQuerier.  ``RadixIPLookup`` provides the same
interface over a binary trie, for large tables.
"""

from __future__ import annotations

from ..net.addresses import IPAddress, parse_ip_prefix
from .element import ConfigError, Element
from .registry import register


def _parse_route(arg):
    """``"addr/mask [gw] port"`` → (network, mask, gateway|None, port)."""
    fields = arg.split()
    if len(fields) == 2:
        prefix_text, port_text = fields
        gateway = None
    elif len(fields) == 3:
        prefix_text, gw_text, port_text = fields
        gateway = IPAddress(gw_text)
        if gateway.value == 0:
            gateway = None
    else:
        raise ConfigError("bad route %r (want 'addr/mask [gw] port')" % arg)
    addr, mask = parse_ip_prefix(prefix_text)
    try:
        port = int(port_text)
    except ValueError:
        raise ConfigError("bad route port %r" % port_text) from None
    return (addr.value & mask, mask, gateway, port)


class _IPRouteTable(Element):
    """Shared behaviour: route parsing, annotation handling, dispatch."""

    processing = "h/h"
    port_counts = "1/-"

    def configure(self, args):
        if not args:
            raise ConfigError("%s needs at least one route" % self.class_name)
        self.routes = [_parse_route(arg) for arg in args]
        self._build()
        self.no_route_drops = 0

    def check_routes(self, args):
        """Parse and validate a replacement route table without touching
        the live one: the control plane's dry-run half.  The new table
        must fit the existing wiring (no route may select an unwired
        output — a wiring change needs a hot-swap); a bad table raises
        :class:`ConfigError`.  Returns the parsed routes for
        :meth:`commit_routes`."""
        if not args:
            raise ConfigError("%s needs at least one route" % self.class_name)
        routes = [_parse_route(arg) for arg in args]
        noutputs = len(getattr(self, "_output_ports", ()))
        if noutputs:
            for arg, route in zip(args, routes):
                if not 0 <= route[3] < noutputs:
                    raise ConfigError(
                        "route %r selects output %d; element %s has %d "
                        "output(s) (a wiring change needs a hot-swap)"
                        % (arg, route[3], self.name, noutputs)
                    )
        return routes

    def commit_routes(self, routes):
        """Install routes prepared by :meth:`check_routes`.  Cannot
        fail: the staged-batch commit half."""
        self.routes = routes
        self._build()

    def update_routes(self, args):
        """Replace the route table in place on a *live* element — the
        control plane's pure-data patch.  A bad update raises
        :class:`ConfigError` before anything is applied, leaving the
        running table untouched."""
        self.commit_routes(self.check_routes(args))

    def _build(self):
        raise NotImplementedError

    def lookup_route(self, addr):
        """(gateway|None, port) for ``addr``, or None when unrouteable."""
        raise NotImplementedError

    def push(self, port, packet):
        if packet.dest_ip_anno is None:
            self.no_route_drops += 1
            return
        result = self.lookup_route(packet.dest_ip_anno)
        if result is None:
            self.no_route_drops += 1
            return
        gateway, out_port = result
        if gateway is not None:
            packet.set_dest_ip_anno(gateway)
        self.checked_push(out_port, packet)


@register
class LookupIPRoute(_IPRouteTable):
    """Linear longest-prefix-match table (Click's StaticIPLookup), ample
    for the handful of routes in the evaluation's IP router."""

    class_name = "LookupIPRoute"

    def _build(self):
        # Sort by decreasing prefix specificity so the first hit is the
        # longest match.
        self._ordered = sorted(self.routes, key=lambda r: bin(r[1]).count("1"), reverse=True)
        # Results are memoized per destination (bounded; traffic reuses
        # few).  The dict's *identity* must survive rebuilds: the fast
        # path binds self._memo.get straight into generated code, so a
        # control-plane route patch clears in place instead of
        # reassigning.
        memo = getattr(self, "_memo", None)
        if memo is None:
            self._memo = {}
        else:
            memo.clear()

    def lookup_route(self, addr):
        value = addr.value if type(addr) is IPAddress else IPAddress(addr).value
        try:
            return self._memo[value]
        except KeyError:
            pass
        result = None
        for network, mask, gateway, port in self._ordered:
            if (value & mask) == network:
                result = (gateway, port)
                break
        if len(self._memo) < 65536:
            self._memo[value] = result
        return result


@register
class StaticIPLookup(LookupIPRoute):
    """Click's name for the same element."""

    class_name = "StaticIPLookup"


@register
class RadixIPLookup(_IPRouteTable):
    """Binary-trie longest-prefix match for large tables."""

    class_name = "RadixIPLookup"

    def _build(self):
        self._root = {}
        for network, mask, gateway, port in self.routes:
            prefix_len = bin(mask).count("1")
            node = self._root
            for bit_index in range(prefix_len):
                bit = (network >> (31 - bit_index)) & 1
                node = node.setdefault(bit, {})
            node["route"] = (gateway, port)

    def lookup_route(self, addr):
        value = IPAddress(addr).value
        node = self._root
        best = node.get("route")
        for bit_index in range(32):
            bit = (value >> (31 - bit_index)) & 1
            node = node.get(bit)
            if node is None:
                break
            if "route" in node:
                best = node["route"]
        return best
