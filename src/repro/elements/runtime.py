"""The runtime router: instantiate, wire, and drive a configuration.

A :class:`Router` is built from a *finished* RouterGraph and never
mutates afterwards (§5.1: configurations are static; to change one, the
user installs an entirely new configuration).  Compound elements must
already be flattened (:mod:`repro.core.flatten` does this, as the Click
kernel parser does automatically).

Archives may carry generated element code (from click-fastclassifier or
click-devirtualize).  Like Click, which "will first compile the source
code and dynamically link with the result" (§4), the router execs the
bundled Python source and adds the classes it exports to the
configuration's private class table before resolving class names.
"""

from __future__ import annotations

import warnings
from collections import ChainMap

from ..errors import ClickSemanticError
from ..graph.ports import PULL, PUSH, resolve_processing
from .element import Element
from .registry import ELEMENT_CLASSES, default_specs

GENERATED_MEMBER_SUFFIX = ".py"
EXPORT_NAME = "ELEMENT_EXPORTS"


def compile_archive_classes(archive):
    """Exec every ``*.py`` archive member; collect the element classes
    each exports via an ``ELEMENT_EXPORTS`` list.

    Members are compiled in archive order, and each sees the classes
    earlier members exported (as ``GENERATED_CLASSES``) — so that, e.g.,
    click-devirtualize's generated code can specialize element classes
    click-fastclassifier generated earlier in the chain.
    """
    classes = {}
    for member_name, source in archive.items():
        if not member_name.endswith(GENERATED_MEMBER_SUFFIX):
            continue
        namespace = {"Element": Element, "GENERATED_CLASSES": dict(classes)}
        code = compile(source, "<archive:%s>" % member_name, "exec")
        exec(code, namespace)  # noqa: S102 - configuration-bundled code
        for cls in namespace.get(EXPORT_NAME, []):
            classes[cls.class_name] = cls
    return classes


class Router:
    """A running router built from a configuration graph."""

    def __init__(
        self,
        graph,
        extra_classes=None,
        meter=None,
        devices=None,
        profile=None,
        mode=None,
        batch=None,
        adaptive_config=None,
        supervised=None,
        supervisor_config=None,
    ):
        profile = self._fold_legacy_kwargs(
            profile, mode, batch, adaptive_config, supervised, supervisor_config
        )
        self.graph = graph
        self.meter = meter
        self.adaptive = None
        self._adaptive_config = None
        # Tuned-profile extras: node_budget feeds the FDD engine; the
        # shard knobs are inert on a single router but must round-trip
        # through .profile so a sharded plane's shard-local routers can
        # reconstruct the full profile.
        self._node_budget = None
        self._queue_capacity = None
        self._divide_capacity = False
        self._chunk_frames = None
        self.supervisor = None
        self.fault_injector = None
        self.retired = False
        # Keep the caller's mapping object (even when empty): device
        # lookups go through its .get, so callers may pass lazy or
        # auto-populating mappings.
        self.devices = {} if devices is None else devices
        # Layer per-configuration classes over the global registry
        # instead of copying it: building a router stops being
        # O(registry size), and the registry stays shared and read-only.
        overlay = dict(compile_archive_classes(graph.archive))
        if extra_classes:
            overlay.update(extra_classes)
        self._classes = ChainMap(overlay, ELEMENT_CLASSES)
        self.elements = {}
        self._tasks = []
        self.fastpath = None
        self._mode = "reference"
        self._batch = False
        self._build()
        if profile is not None:
            self.configure(profile)

    @staticmethod
    def _fold_legacy_kwargs(profile, mode, batch, adaptive_config, supervised, supervisor_config):
        """Fold the pre-profile constructor keywords into an
        :class:`ExecutionProfile`, warning on their use."""
        legacy = (
            mode is not None
            or batch is not None
            or adaptive_config is not None
            or supervised is not None
            or supervisor_config is not None
        )
        if not legacy:
            return profile
        if profile is not None:
            raise ValueError(
                "pass either profile= or the legacy mode/batch/adaptive_config/"
                "supervised/supervisor_config keywords, not both"
            )
        warnings.warn(
            "Router(mode=..., batch=..., supervised=...) is deprecated; use "
            "Router(profile=ExecutionProfile(...))",
            DeprecationWarning,
            stacklevel=3,
        )
        from ..runtime.profile import ExecutionProfile

        return ExecutionProfile(
            mode=mode if mode is not None else "reference",
            batch=bool(batch) if batch and mode in ("fast", "adaptive") else False,
            adaptive=adaptive_config,
            supervised=bool(supervised),
            supervisor=supervisor_config,
        )

    # -- construction ---------------------------------------------------------

    def _build(self):
        graph = self.graph
        if graph.element_classes:
            raise ClickSemanticError(
                "runtime router requires a flattened configuration "
                "(compound classes remain: %s)" % ", ".join(graph.element_classes)
            )
        # Instantiate.
        for decl in graph.elements.values():
            cls = self._classes.get(decl.class_name)
            if cls is None:
                raise ClickSemanticError(
                    "unknown element class %r for element %r" % (decl.class_name, decl.name)
                )
            element = cls(decl.name, decl.config)
            element.router = self
            self.elements[decl.name] = element

        # Resolve push/pull over the whole configuration.
        specs = default_specs(extra_classes=self._classes.values())
        resolved = resolve_processing(graph, specs)

        # Allocate and wire ports.
        for name, element in self.elements.items():
            ninputs = graph.input_count(name)
            noutputs = graph.output_count(name)
            cls = type(element)
            counts = specs[cls.class_name].port_counts
            if not counts.inputs_ok(ninputs):
                raise ClickSemanticError(
                    "%s (%s) has %d input(s); %r allowed"
                    % (name, cls.class_name, ninputs, counts.text)
                )
            if not counts.outputs_ok(noutputs):
                raise ClickSemanticError(
                    "%s (%s) has %d output(s); %r allowed"
                    % (name, cls.class_name, noutputs, counts.text)
                )
            element.set_nports(ninputs, noutputs)

        for name in self.elements:
            in_codes, out_codes = resolved[name]
            for port, code in enumerate(out_codes):
                conns = graph.connections_from(name, port)
                if not conns:
                    raise ClickSemanticError(
                        "%s output [%d] is unconnected" % (name, port)
                    )
                if code == PUSH and len(conns) > 1:
                    raise ClickSemanticError(
                        "%s push output [%d] has %d connections; push outputs "
                        "connect to exactly one input" % (name, port, len(conns))
                    )
                if code == PUSH:
                    conn = conns[0]
                    self.elements[name].output(port).connect(
                        self.elements[conn.to_element], conn.to_port
                    )
            for port, code in enumerate(in_codes):
                conns = graph.connections_to(name, port)
                if not conns:
                    raise ClickSemanticError("%s input [%d] is unconnected" % (name, port))
                if code == PULL and len(conns) > 1:
                    raise ClickSemanticError(
                        "%s pull input [%d] has %d connections; pull inputs "
                        "connect to exactly one output" % (name, port, len(conns))
                    )
                if code == PULL:
                    conn = conns[0]
                    self.elements[name].input(port).connect(
                        self.elements[conn.from_element], conn.from_port
                    )

        # Initialize, collect tasks in declaration order.
        for element in self.elements.values():
            element.initialize()
            if element.is_task():
                self._tasks.append(element)

    # -- execution mode --------------------------------------------------------

    @property
    def mode(self):
        """``"reference"`` (the interpreting oracle), ``"fast"``, or
        ``"adaptive"`` (tiered profile-guided recompilation)."""
        return self._mode

    def compile_fastpath(self, batch=False):
        """Compile this router's fast path (without installing it) and
        return the :class:`~repro.runtime.fastpath.FastPath`."""
        from ..runtime.codegen_cache import default_cache
        from ..runtime.fastpath import FastPath

        if self.fastpath is not None and self.fastpath.installed:
            self.fastpath.uninstall()
        self.fastpath = FastPath(self, batch=batch, cache=default_cache())
        return self.fastpath

    @property
    def profile(self):
        """The :class:`~repro.runtime.profile.ExecutionProfile` this
        router currently runs under (reconstructed from live state, so
        it survives shims, hot-swaps, and supervisor demotions)."""
        from ..runtime.profile import ExecutionProfile

        supervisor = self.supervisor
        return ExecutionProfile(
            mode=self._mode,
            batch=self._batch,
            adaptive=self._adaptive_config,
            supervised=supervisor is not None,
            supervisor=supervisor.config if supervisor is not None else None,
            queue_capacity=self._queue_capacity,
            divide_capacity=self._divide_capacity,
            node_budget=self._node_budget,
            chunk_frames=self._chunk_frames,
        )

    def configure(self, profile=None):
        """Apply an :class:`~repro.runtime.profile.ExecutionProfile`:
        the execution tier (compiling on first use), batch flavor,
        adaptive configuration, and supervision, as one declarative
        switch.  ``None`` means the default reference profile.  Returns
        ``self``."""
        from ..runtime.profile import ExecutionProfile

        if profile is None:
            profile = ExecutionProfile()
        if profile.workers > 1:
            raise ValueError(
                "a plain Router is single-shard; profiles with workers > 1 "
                "need a ShardedRouter (use build_router, which dispatches)"
            )
        if not profile.supervised and self.supervisor is not None:
            self.supervisor.detach()
        if (
            self.adaptive is not None
            and profile.adaptive is not self._adaptive_config
        ):
            # A changed adaptive config must rebuild the engine, not be
            # silently ignored by the mode switch below.
            self.adaptive.uninstall()
            self.adaptive = None
        if self.adaptive is not None and profile.mode == "fdd":
            from ..runtime.fdd import DEFAULT_NODE_BUDGET

            wanted = profile.node_budget or DEFAULT_NODE_BUDGET
            if getattr(self.adaptive, "node_budget", wanted) != wanted:
                # Same reasoning as above: a changed node budget must
                # recompile the diagrams, not keep the old expansion.
                self.adaptive.uninstall()
                self.adaptive = None
        self._adaptive_config = profile.adaptive
        self._node_budget = profile.node_budget
        self._queue_capacity = profile.queue_capacity
        self._divide_capacity = profile.divide_capacity
        self._chunk_frames = profile.chunk_frames
        self._set_mode(profile.mode, batch=profile.batch)
        if profile.supervised:
            self._attach_supervisor(profile.supervisor)
        return self

    def _set_mode(self, mode, batch=False):
        """Switch between the reference interpreter, the compiled fast
        path, and the adaptive tiered engine; compiles on first use
        (and on batch-flavor change)."""
        if mode not in ("reference", "fast", "adaptive", "fdd"):
            raise ValueError(
                "mode must be 'reference', 'fast', 'adaptive', or 'fdd', "
                "not %r" % (mode,)
            )
        # Mode changes swap port lists wholesale; supervision wraps the
        # current ports, so it must come off first and back on after.
        supervisor = self.supervisor
        if supervisor is not None:
            supervisor_config = supervisor.config
            supervisor.detach()
        if self.adaptive is not None and (
            getattr(self.adaptive, "mode_label", "adaptive") != mode
            or self.adaptive.batch != bool(batch)
        ):
            self.adaptive.uninstall()
            self.adaptive = None
        if mode == "reference":
            if self.fastpath is not None and self.fastpath.installed:
                self.fastpath.uninstall()
        elif mode in ("adaptive", "fdd"):
            if self.adaptive is None:
                engine_kwargs = {}
                if mode == "fdd":
                    from ..runtime.fdd import FDDEngine as engine_class

                    if self._node_budget is not None:
                        engine_kwargs["node_budget"] = self._node_budget
                else:
                    from ..runtime.adaptive import AdaptiveEngine as engine_class

                if self.fastpath is not None and self.fastpath.installed:
                    self.fastpath.uninstall()
                self.adaptive = engine_class(
                    self, config=self._adaptive_config, batch=batch, **engine_kwargs
                )
                self.adaptive.install()
        else:
            if self.fastpath is None or self.fastpath.batch != bool(batch):
                self.compile_fastpath(batch=batch)
            self.fastpath.install()
        self._mode = mode
        self._batch = bool(batch) if mode != "reference" else False
        if supervisor is not None:
            self._attach_supervisor(supervisor_config)
        return self

    def set_mode(self, mode, batch=False):
        """Deprecated shim for :meth:`configure`."""
        warnings.warn(
            "Router.set_mode is deprecated; use "
            "Router.configure(ExecutionProfile(mode=..., batch=...))",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._set_mode(mode, batch=batch)

    def _attach_supervisor(self, config=None):
        """Attach (or re-attach) supervised execution: error boundaries
        around every compiled chain entry, tiered demotion, circuit
        breakers, and the task watchdog.  Returns the supervisor."""
        from ..runtime.supervisor import Supervisor

        if self.supervisor is not None:
            self.supervisor.detach()
        supervisor = Supervisor(self, config=config)
        supervisor.attach()
        return supervisor

    def attach_supervisor(self, config=None):
        """Deprecated shim for :meth:`configure` with a supervised
        profile."""
        warnings.warn(
            "Router.attach_supervisor is deprecated; use "
            "Router.configure(profile.with_supervision(...))",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._attach_supervisor(config)

    def detach_supervisor(self):
        """Remove supervision, restoring the unwrapped ports."""
        if self.supervisor is not None:
            self.supervisor.detach()

    def retire(self):
        """Decommission this router after a hot-swap: supervision and
        compiled state come off, and the scheduler goes inert.  The
        wiring and element state stay readable (the new router's
        ``take_state`` handlers already copied what they needed)."""
        if self.retired:
            return
        self.detach_supervisor()
        if self.adaptive is not None:
            self.adaptive.uninstall()
            self.adaptive = None
        if self.fastpath is not None and self.fastpath.installed:
            self.fastpath.uninstall()
        self._mode = "reference"
        self.retired = True

    def force_deopt(self, reason="forced"):
        """Deterministic harness hook: force the adaptive engine back to
        tier 1 (profiles reset, specialized code discarded).  A no-op in
        the other modes — which is what makes a forced deopt a valid
        differential-testing event: it must never change behaviour,
        only which tier executes it.  Returns True if a deopt happened."""
        if self.adaptive is None:
            return False
        self.adaptive.deopt(reason)
        return True

    def bump_arp_epochs(self):
        """Deterministic harness hook: invalidate every ARPQuerier's
        baked-header guard (as a table change would) without altering
        table contents.  Returns the number of elements bumped."""
        bumped = 0
        for element in self.elements.values():
            if hasattr(element, "_arp_epoch"):
                element._arp_epoch += 1
                bumped += 1
        return bumped

    # -- access ------------------------------------------------------------------

    def __getitem__(self, name):
        return self.elements[name]

    def find(self, name):
        """The element named ``name``, or None."""
        return self.elements.get(name)

    def elements_of_class(self, class_name):
        """All element instances of the given class."""
        return [e for e in self.elements.values() if e.class_name == class_name]

    @property
    def tasks(self):
        return list(self._tasks)

    # -- driving --------------------------------------------------------------------

    def run_tasks(self, iterations=1):
        """Drive the polling scheduler: each iteration gives every task
        element one run_task call (Click's constantly-active kernel
        thread, round-robin).  A retired router (after a hot-swap) is
        inert.  Under supervision each task call gets a containing
        boundary and watchdog bookkeeping."""
        if self.retired:
            return 0
        if self.supervisor is not None:
            return self._run_tasks_supervised(iterations)
        useful = 0
        adaptive = self.adaptive
        for _ in range(iterations):
            worked = 0
            for task in self._tasks:
                if self.meter is not None:
                    self.meter.on_task(task)
                if task.run_task():
                    worked += 1
            useful += worked
            if adaptive is not None and not worked:
                # An idle scheduler pass is when Click would do
                # housekeeping; the adaptive engine uses it to promote
                # chains whose profiles matured off the packet path.
                adaptive.on_idle()
        return useful

    def _run_tasks_supervised(self, iterations):
        """The supervised scheduler loop: the port boundaries drop the
        exact packet that raised; this task-level backstop catches
        anything that escapes them (and counts the pass as worked — the
        task did consume input before failing), so a supervised router
        never lets a task kill the driver."""
        useful = 0
        adaptive = self.adaptive
        supervisor = self.supervisor
        for _ in range(iterations):
            worked = 0
            for task in self._tasks:
                if supervisor.task_benched(task):
                    continue
                try:
                    did = task.run_task()
                except Exception as exc:  # noqa: BLE001 - supervised backstop
                    supervisor.on_task_error(task, exc)
                    did = True
                else:
                    supervisor.note_task(task, did)
                if did:
                    worked += 1
            useful += worked
            if adaptive is not None and not worked:
                adaptive.on_idle()
        return useful

    def push_packet(self, element_name, port, packet):
        """Inject a packet into a push input (testing convenience)."""
        element = self.elements[element_name]
        if self.meter is not None:
            self.meter.on_element_work(element)
        element.push(port, packet)

    # -- handlers (Click's /click/<element>/<handler> interface) -----------

    def read_handler(self, path):
        """Read ``"element.handler"`` (or ``"element/handler"``)."""
        element_name, handler = self._split_handler_path(path)
        return self.elements[element_name].read_handler(handler)

    def write_handler(self, path, value):
        """Write ``value`` to ``"element.handler"``."""
        element_name, handler = self._split_handler_path(path)
        self.elements[element_name].write_handler(handler, value)

    @staticmethod
    def _split_handler_path(path):
        for separator in (".", "/"):
            if separator in path:
                element_name, _, handler = path.rpartition(separator)
                return element_name, handler
        raise KeyError("bad handler path %r (want element.handler)" % path)


def build_router(graph, **kwargs):
    """Flatten ``graph`` if needed and build a router from it: a plain
    :class:`Router`, or — when the profile carries ``workers > 1`` — a
    :class:`~repro.runtime.shard.ShardedRouter` fanning the profile out
    across hash-partitioned worker shards."""
    if graph.element_classes:
        from ..core.flatten import flatten

        graph = flatten(graph)
    profile = kwargs.get("profile")
    if profile is not None and getattr(profile, "workers", 1) > 1:
        from ..runtime.shard import ShardedRouter

        return ShardedRouter(graph, **kwargs)
    return Router(graph, **kwargs)
