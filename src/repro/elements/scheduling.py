"""Scheduling elements: packet schedulers, metadata carriers, and the
multi-router linking element."""

from __future__ import annotations

from .element import ConfigError, Element
from .registry import register


@register
class RoundRobinSched(Element):
    """Pull scheduler: responds to pulls by pulling from its inputs in
    round-robin order, skipping empty ones."""

    class_name = "RoundRobinSched"
    processing = "l/l"
    flow_code = "x/x"
    port_counts = "1-/1"

    def configure(self, args):
        if args:
            raise ConfigError("RoundRobinSched takes no arguments")
        self._next = 0

    def pull(self, port):
        for offset in range(self.ninputs):
            index = (self._next + offset) % self.ninputs
            packet = self.input(index).pull()
            if packet is not None:
                self._next = (index + 1) % self.ninputs
                return packet
        return None


@register
class PrioSched(Element):
    """Pull scheduler with strict priority: input 0 is always drained
    before input 1, and so on."""

    class_name = "PrioSched"
    processing = "l/l"
    flow_code = "x/x"
    port_counts = "1-/1"

    def configure(self, args):
        if args:
            raise ConfigError("PrioSched takes no arguments")

    def pull(self, port):
        for index in range(self.ninputs):
            packet = self.input(index).pull()
            if packet is not None:
                return packet
        return None


@register
class ScheduleInfo(Element):
    """Task-scheduling priority hints: ``ScheduleInfo(elt weight, ...)``.
    A pure specification carrier, like Click's."""

    class_name = "ScheduleInfo"
    processing = "a/a"
    port_counts = "0/0"

    def configure(self, args):
        self.weights = {}
        for arg in args:
            fields = arg.split()
            if len(fields) != 2:
                raise ConfigError("bad ScheduleInfo entry %r" % arg)
            self.weights[fields[0]] = float(fields[1])


@register
class RouterLink(Element):
    """A link between two routers inside a click-combine configuration
    (§7.2, Figure 7).  Stands in for the wire: a scheduled pull-to-push
    conduit (it pulls from the sending router's output queue and pushes
    into the receiving router's classifier), so combined configurations
    are runnable for analysis.  Its configuration records the original
    device bindings, which click-uncombine uses to split the
    configuration apart again."""

    class_name = "RouterLink"
    processing = "l/h"
    port_counts = "1/1"
    BURST = 8

    def configure(self, args):
        if len(args) != 2:
            raise ConfigError("RouterLink(FROM-DEVICE-SPEC, TO-DEVICE-SPEC)")
        self.from_spec = args[0]
        self.to_spec = args[1]
        self.carried = 0

    def is_task(self):
        return True

    def run_task(self):
        moved = 0
        for _ in range(self.BURST):
            packet = self.input(0).pull()
            if packet is None:
                break
            self.output(0).push(packet)
            moved += 1
        self.carried += moved
        return moved > 0
