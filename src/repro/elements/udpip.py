"""UDP/IP encapsulation and checksum elements."""

from __future__ import annotations

import struct

from ..net.addresses import IPAddress
from ..net.checksum import internet_checksum
from ..net.headers import IP_HEADER_LEN, IP_PROTO_UDP, IPHeader, UDP_HEADER_LEN, UDPHeader
from .element import ConfigError, Element
from .registry import register


@register
class UDPIPEncap(Element):
    """Encapsulates payloads in UDP-in-IP:
    ``UDPIPEncap(SRC, SPORT, DST, DPORT)``.  Sets the destination-IP
    annotation so a downstream ARPQuerier can do its job — the classic
    Click traffic-generator head (``InfiniteSource -> UDPIPEncap ->
    ARPQuerier -> ToDevice``)."""

    class_name = "UDPIPEncap"
    processing = "a/a"
    port_counts = "1/1"

    def configure(self, args):
        if len(args) != 4:
            raise ConfigError("UDPIPEncap(SRC, SPORT, DST, DPORT)")
        self.src = IPAddress(args[0])
        self.src_port = int(args[1])
        self.dst = IPAddress(args[2])
        self.dst_port = int(args[3])
        self._identification = 0

    def simple_action(self, packet):
        payload_length = len(packet)
        udp = UDPHeader(
            self.src_port, self.dst_port, length=UDP_HEADER_LEN + payload_length
        )
        ip = IPHeader(
            src=self.src,
            dst=self.dst,
            protocol=IP_PROTO_UDP,
            total_length=IP_HEADER_LEN + UDP_HEADER_LEN + payload_length,
            identification=self._identification,
        )
        self._identification = (self._identification + 1) & 0xFFFF
        packet.push(udp.pack())
        packet.push(ip.pack())
        packet.set_dest_ip_anno(self.dst)
        packet.ip_header_offset = 0
        return packet


@register
class SetUDPChecksum(Element):
    """Computes the UDP checksum (with the IPv4 pseudo-header) for
    UDP-in-IP packets whose data begins at the IP header."""

    class_name = "SetUDPChecksum"
    processing = "a/a"
    port_counts = "1/1"

    def configure(self, args):
        if args:
            raise ConfigError("SetUDPChecksum takes no arguments")

    def simple_action(self, packet):
        data = packet.data
        if len(data) < IP_HEADER_LEN + UDP_HEADER_LEN:
            return None
        header_length = (data[0] & 0xF) * 4
        udp_start = header_length
        udp_length = struct.unpack_from("!H", data, udp_start + 4)[0]
        if udp_start + udp_length > len(data):
            return None
        # Pseudo header: src, dst, zero, protocol, UDP length.
        pseudo = data[12:20] + bytes([0, IP_PROTO_UDP]) + struct.pack("!H", udp_length)
        segment = bytearray(data[udp_start:udp_start + udp_length])
        segment[6:8] = b"\x00\x00"
        checksum = internet_checksum(pseudo + bytes(segment))
        if checksum == 0:
            checksum = 0xFFFF  # 0 means "no checksum" in UDP
        packet.replace(udp_start + 6, struct.pack("!H", checksum))
        return packet
