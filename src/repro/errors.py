"""Diagnostics for the Click configuration language.

Unlike the in-kernel Click parser, the tool parser keeps precise source
locations (the paper's §5.2 notes the two parsers deliberately differ:
the kernel parser keeps "only general information about the locations of
errors", which is inappropriate for optimizers).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourceLocation:
    """A position in a configuration file."""

    filename: str
    line: int
    column: int

    def __str__(self):
        return "%s:%d:%d" % (self.filename, self.line, self.column)


UNKNOWN_LOCATION = SourceLocation("<unknown>", 0, 0)


class ClickSyntaxError(SyntaxError):
    """A lexical or grammatical error in a configuration file."""

    def __init__(self, message, location=UNKNOWN_LOCATION):
        super().__init__("%s: %s" % (location, message))
        self.location = location
        self.bare_message = message


class ClickSemanticError(ValueError):
    """A well-formed configuration that doesn't make sense (duplicate
    declarations, unknown element classes where classes are required,
    port or push/pull violations)."""

    def __init__(self, message, location=UNKNOWN_LOCATION):
        super().__init__("%s: %s" % (location, message))
        self.location = location
        self.bare_message = message


class ErrorCollector:
    """Accumulates diagnostics so tools can report many errors per run,
    as click-check does, instead of aborting at the first."""

    def __init__(self):
        self.errors = []
        self.warnings = []

    def error(self, message, location=UNKNOWN_LOCATION):
        self.errors.append((location, message))

    def warning(self, message, location=UNKNOWN_LOCATION):
        self.warnings.append((location, message))

    @property
    def ok(self):
        return not self.errors

    def raise_if_errors(self):
        if self.errors:
            location, message = self.errors[0]
            summary = message
            if len(self.errors) > 1:
                summary += " (and %d more errors)" % (len(self.errors) - 1)
            raise ClickSemanticError(summary, location)

    def format(self):
        lines = ["%s: error: %s" % (loc, msg) for loc, msg in self.errors]
        lines += ["%s: warning: %s" % (loc, msg) for loc, msg in self.warnings]
        return "\n".join(lines)
