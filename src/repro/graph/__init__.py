"""Router-configuration graphs and the manipulations tools share."""

from .diff import ElementChange, GraphDelta, diff_graphs
from .flow import FlowCode, FlowError
from .ports import (
    AGNOSTIC,
    PROCESSING_AGNOSTIC,
    PROCESSING_PULL,
    PROCESSING_PUSH,
    PROCESSING_PUSH_TO_PULL,
    PULL,
    PUSH,
    ClassSpec,
    PortCountSpec,
    ProcessingCode,
    ProcessingError,
    resolve_processing,
)
from .router import CompoundClass, Conn, ElementDecl, RouterGraph
from .subgraph import SubgraphMatcher, find_subgraph
from .visitor import (
    backward_reachable,
    flow_forward_ports,
    flow_reachable_connections,
    forward_reachable,
    topological_order,
)

__all__ = [
    "diff_graphs",
    "ElementChange",
    "GraphDelta",
    "FlowCode",
    "FlowError",
    "AGNOSTIC",
    "PROCESSING_AGNOSTIC",
    "PROCESSING_PULL",
    "PROCESSING_PUSH",
    "PROCESSING_PUSH_TO_PULL",
    "PULL",
    "PUSH",
    "ClassSpec",
    "PortCountSpec",
    "ProcessingCode",
    "ProcessingError",
    "resolve_processing",
    "CompoundClass",
    "Conn",
    "ElementDecl",
    "RouterGraph",
    "SubgraphMatcher",
    "find_subgraph",
    "backward_reachable",
    "flow_forward_ports",
    "flow_reachable_connections",
    "forward_reachable",
    "topological_order",
]
