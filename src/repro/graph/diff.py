"""Graph diffing: what changed between two router configurations.

The control plane (:mod:`repro.control`) decides how to install an
update by looking at its *shape*: a delta that only rewrites the
configuration strings of data-table elements (route tables, classifier
rules) can be patched into the live router in place, while anything
that adds, removes, rewires, or re-classes elements needs a (scoped)
hot-swap.  :func:`diff_graphs` computes that shape as a
:class:`GraphDelta`; ``dirty_names()`` is the seed set the scoped swap
uses to decide which compiled chains must be rebuilt.

Elements pair up by *name* — exactly the identity hot-swap state
transfer uses — so a rename is a removal plus an addition, never a
change.
"""

from __future__ import annotations

__all__ = ["ElementChange", "GraphDelta", "diff_graphs"]


class ElementChange:
    """One element present in both graphs whose declaration differs."""

    __slots__ = ("name", "old_class", "new_class", "old_config", "new_config")

    def __init__(self, name, old_class, new_class, old_config, new_config):
        self.name = name
        self.old_class = old_class
        self.new_class = new_class
        self.old_config = old_config
        self.new_config = new_config

    @property
    def class_changed(self):
        return self.old_class != self.new_class

    @property
    def config_changed(self):
        return self.old_config != self.new_config

    def as_dict(self):
        return {
            "name": self.name,
            "old_class": self.old_class,
            "new_class": self.new_class,
            "old_config": self.old_config,
            "new_config": self.new_config,
        }

    def __repr__(self):
        if self.class_changed:
            return "ElementChange(%s: %s -> %s)" % (self.name, self.old_class, self.new_class)
        return "ElementChange(%s: config)" % self.name


class GraphDelta:
    """The difference between two configurations, element-name keyed.

    ``added`` / ``removed`` are element names; ``changed`` is a list of
    :class:`ElementChange`; ``added_connections`` /
    ``removed_connections`` are :class:`~repro.graph.router.Conn`
    tuples.  ``structural`` is the control plane's routing bit: False
    exactly when the delta is *pure data* — only configuration strings
    changed, on elements that exist on both sides with the same class.
    """

    __slots__ = (
        "added",
        "removed",
        "changed",
        "added_connections",
        "removed_connections",
    )

    def __init__(self, added=(), removed=(), changed=(), added_connections=(), removed_connections=()):
        self.added = list(added)
        self.removed = list(removed)
        self.changed = list(changed)
        self.added_connections = list(added_connections)
        self.removed_connections = list(removed_connections)

    @property
    def empty(self):
        return not (
            self.added
            or self.removed
            or self.changed
            or self.added_connections
            or self.removed_connections
        )

    @property
    def structural(self):
        """True when installing this delta changes the graph's shape:
        elements appear/disappear, wiring changes, or an element's
        class changes.  A pure-config delta is not structural."""
        if self.added or self.removed or self.added_connections or self.removed_connections:
            return True
        return any(change.class_changed for change in self.changed)

    def dirty_names(self):
        """Every element name the delta touches: changed/added/removed
        elements plus both endpoints of every changed connection.  The
        scoped hot-swap rebuilds exactly the chains that can reach (or
        be reached from) one of these."""
        names = {name for name, _class, _config in self.added}
        names.update(self.removed)
        names.update(change.name for change in self.changed)
        for conn in self.added_connections + self.removed_connections:
            names.add(conn.from_element)
            names.add(conn.to_element)
        return names

    def apply_to(self, graph):
        """A copy of ``graph`` with this delta applied (removals first,
        then additions, then config/class changes).  The inverse of
        :func:`diff_graphs`: ``diff_graphs(old, new).apply_to(old)``
        equals ``new`` up to declaration order."""
        result = graph.copy()
        for conn in self.removed_connections:
            if conn in result.connections:
                result.remove_connection(conn)
        for name in self.removed:
            if name in result.elements:
                result.remove_element(name)
        for name, class_name, config in self.added:
            result.add_element(name, class_name, config)
        for conn in self.added_connections:
            result.add_connection(conn.from_element, conn.from_port, conn.to_element, conn.to_port)
        for change in self.changed:
            decl = result.elements[change.name]
            decl.class_name = change.new_class
            decl.config = change.new_config
        return result

    def summary(self):
        """One human line, e.g. ``+2 elements, 1 changed, +3/-1 connections``."""
        parts = []
        if self.added:
            parts.append("+%d element(s)" % len(self.added))
        if self.removed:
            parts.append("-%d element(s)" % len(self.removed))
        if self.changed:
            parts.append("%d changed" % len(self.changed))
        if self.added_connections or self.removed_connections:
            parts.append(
                "+%d/-%d connection(s)"
                % (len(self.added_connections), len(self.removed_connections))
            )
        if not parts:
            return "no changes"
        return ", ".join(parts)

    def as_dict(self):
        return {
            "added": [[name, class_name, config] for name, class_name, config in self.added],
            "removed": list(self.removed),
            "changed": [change.as_dict() for change in self.changed],
            "added_connections": [list(c) for c in self._conn_tuples(self.added_connections)],
            "removed_connections": [list(c) for c in self._conn_tuples(self.removed_connections)],
            "structural": self.structural,
        }

    @staticmethod
    def _conn_tuples(conns):
        return [(c.from_element, c.from_port, c.to_element, c.to_port) for c in conns]

    def __repr__(self):
        return "GraphDelta(%s)" % self.summary()


def diff_graphs(old, new):
    """The :class:`GraphDelta` taking configuration graph ``old`` to
    ``new``.  Elements are matched by name; ``added`` entries carry the
    full declaration ``(name, class_name, config)`` so the delta alone
    can reproduce ``new`` from ``old`` via :meth:`GraphDelta.apply_to`.
    """
    added = []
    removed = []
    changed = []
    for name, decl in new.elements.items():
        old_decl = old.elements.get(name)
        if old_decl is None:
            added.append((name, decl.class_name, decl.config))
        elif old_decl.class_name != decl.class_name or old_decl.config != decl.config:
            changed.append(
                ElementChange(
                    name,
                    old_decl.class_name,
                    decl.class_name,
                    old_decl.config,
                    decl.config,
                )
            )
    for name in old.elements:
        if name not in new.elements:
            removed.append(name)

    old_conns = set(old.connections)
    new_conns = set(new.connections)
    added_connections = [c for c in new.connections if c not in old_conns]
    # Connections to/from removed elements are listed too (not implied):
    # their surviving endpoint's chains change, so dirty_names() must
    # see them.
    removed_connections = [c for c in old.connections if c not in new_conns]
    return GraphDelta(
        added=added,
        removed=removed,
        changed=changed,
        added_connections=added_connections,
        removed_connections=removed_connections,
    )
