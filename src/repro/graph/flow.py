"""Flow codes: which input ports' packets can emerge from which outputs.

A flow code like ``"xy/x"`` (ARPQuerier) says packets arriving on input 0
(``x``) may leave output 0 (``x``), while input 1's packets (``y``) never
reach any output.  ``"#/#"`` ties equal port numbers (a Tee-like element
where input *i* feeds output *i*).  As with processing codes, the last
character repeats for extra ports.

``click-devirtualize`` and ``click-align`` both traverse configurations
along flow edges, so flow codes determine which downstream contexts
matter for code sharing and which alignment constraints propagate.
"""

from __future__ import annotations


class FlowError(ValueError):
    """Raised for malformed flow codes."""

_ALLOWED = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ#-")


class FlowCode:
    """A parsed flow code.

    >>> FlowCode("xy/x").flows(0, 0), FlowCode("xy/x").flows(1, 0)
    (True, False)
    >>> FlowCode("#/#").flows(2, 2), FlowCode("#/#").flows(2, 3)
    (True, False)
    """

    __slots__ = ("text", "_inputs", "_outputs")

    def __init__(self, text):
        self.text = text
        if "/" not in text:
            in_part, out_part = text, text
        else:
            in_part, out_part = text.split("/", 1)
        for part in (in_part, out_part):
            if not part or any(ch not in _ALLOWED for ch in part):
                raise FlowError("bad flow code %r" % text)
        self._inputs = in_part
        self._outputs = out_part

    def _input_char(self, port):
        return self._inputs[min(port, len(self._inputs) - 1)]

    def _output_char(self, port):
        return self._outputs[min(port, len(self._outputs) - 1)]

    def flows(self, in_port, out_port):
        """True if packets entering ``in_port`` may leave ``out_port``."""
        in_char = self._input_char(in_port)
        out_char = self._output_char(out_port)
        if in_char == "-" or out_char == "-":
            return False
        if in_char == "#" or out_char == "#":
            return in_port == out_port
        return in_char == out_char

    def forward_ports(self, in_port, n_outputs):
        """Output ports reachable from ``in_port``."""
        return [p for p in range(n_outputs) if self.flows(in_port, p)]

    def backward_ports(self, out_port, n_inputs):
        """Input ports that can reach ``out_port``."""
        return [p for p in range(n_inputs) if self.flows(p, out_port)]

    def __repr__(self):
        return "FlowCode(%r)" % self.text

    def __eq__(self, other):
        return isinstance(other, FlowCode) and self.text == other.text

    def __hash__(self):
        return hash(("FlowCode", self.text))
