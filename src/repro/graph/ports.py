"""Processing codes and push/pull resolution.

Each element class declares a *processing code* (§5.3), a small textual
specification like ``"a/ah"``: characters before the slash describe input
ports, characters after describe outputs; the last character repeats for
any extra ports.  ``h`` means push, ``l`` means pull, ``a`` means
agnostic (takes on whatever its context requires).

Push/pull agreement is resolved over a whole configuration: a push output
must feed a push input, a pull input must draw from a pull output, and an
element's agnostic ports resolve together (all agnostic ports of one
element share a binding, as for ``simple_action`` elements in Click).
"""

from __future__ import annotations

from .flow import FlowCode

PUSH = "h"
PULL = "l"
AGNOSTIC = "a"

PROCESSING_PUSH = "h/h"
PROCESSING_PULL = "l/l"
PROCESSING_AGNOSTIC = "a/a"
PROCESSING_PUSH_TO_PULL = "h/l"


class ProcessingError(ValueError):
    """Raised for malformed processing codes or push/pull conflicts."""


class ProcessingCode:
    """A parsed processing code.

    >>> code = ProcessingCode("a/ah")
    >>> code.input_code(0), code.output_code(0), code.output_code(1), code.output_code(5)
    ('a', 'a', 'h', 'h')
    """

    __slots__ = ("text", "_inputs", "_outputs")

    def __init__(self, text):
        self.text = text
        if "/" not in text:
            # A bare code applies to both sides (Click allows "a" for "a/a").
            in_part, out_part = text, text
        else:
            in_part, out_part = text.split("/", 1)
        for part in (in_part, out_part):
            if not part or any(ch not in (PUSH, PULL, AGNOSTIC) for ch in part):
                raise ProcessingError("bad processing code %r" % text)
        self._inputs = in_part
        self._outputs = out_part

    def input_code(self, port):
        return self._inputs[min(port, len(self._inputs) - 1)]

    def output_code(self, port):
        return self._outputs[min(port, len(self._outputs) - 1)]

    def __repr__(self):
        return "ProcessingCode(%r)" % self.text

    def __eq__(self, other):
        return isinstance(other, ProcessingCode) and self.text == other.text

    def __hash__(self):
        return hash(("ProcessingCode", self.text))


class ClassSpec:
    """What a tool may know about an element class (§5.3): its name, its
    processing code, its flow code, and its port-count ranges — never its
    implementation.  Tools receive these from a spec registry; they do not
    link with element definitions."""

    __slots__ = ("class_name", "processing", "flow_code", "port_counts", "extras")

    def __init__(self, class_name, processing="a/a", flow_code="x/x", port_counts="1/1", extras=None):
        self.class_name = class_name
        self.processing = ProcessingCode(processing)
        self.flow_code = FlowCode(flow_code)
        self.port_counts = PortCountSpec(port_counts)
        self.extras = dict(extras or {})

    def __repr__(self):
        return "ClassSpec(%r, %r, %r, %r)" % (
            self.class_name,
            self.processing.text,
            self.flow_code.text,
            self.port_counts.text,
        )


class PortCountSpec:
    """Port-count specification, e.g. ``"1/2"`` (one input, two outputs),
    ``"1/1-2"`` (one or two outputs), ``"1-/1"``, ``"-/1"`` (any number of
    inputs), ``"0/0"``."""

    __slots__ = ("text", "_in_range", "_out_range")

    def __init__(self, text):
        self.text = text
        if "/" not in text:
            in_part, out_part = text, text
        else:
            in_part, out_part = text.split("/", 1)
        self._in_range = self._parse_range(in_part)
        self._out_range = self._parse_range(out_part)

    @staticmethod
    def _parse_range(part):
        part = part.strip()
        if part in ("-", ""):
            return (0, None)
        if "-" in part:
            low_text, high_text = part.split("-", 1)
            low = int(low_text) if low_text else 0
            high = int(high_text) if high_text else None
            return (low, high)
        count = int(part)
        return (count, count)

    def inputs_ok(self, count):
        low, high = self._in_range
        return count >= low and (high is None or count <= high)

    def outputs_ok(self, count):
        low, high = self._out_range
        return count >= low and (high is None or count <= high)

    def __repr__(self):
        return "PortCountSpec(%r)" % self.text


def resolve_processing(graph, specs):
    """Resolve every port in ``graph`` to push or pull.

    ``specs`` maps class name → :class:`ClassSpec`.  Returns a dict
    ``{element_name: ("hh...", "hl...")}`` giving the resolved per-port
    codes, with agnostic ports bound (defaulting to push when nothing
    constrains them, as in Click).  Raises :class:`ProcessingError` on a
    push/pull conflict, naming the offending connection.
    """
    # Per-element agnostic binding: None (unbound), 'h', or 'l'.
    agnostic_binding = {}

    def port_code(element, port, is_output):
        spec = specs.get(graph.elements[element].class_name)
        if spec is None:
            return AGNOSTIC  # unknown classes don't constrain
        code = spec.processing.output_code(port) if is_output else spec.processing.input_code(port)
        return code

    def effective(element, port, is_output):
        code = port_code(element, port, is_output)
        if code == AGNOSTIC:
            return agnostic_binding.get(element)
        return code

    changed = True
    while changed:
        changed = False
        for conn in graph.connections:
            out_code = effective(conn.from_element, conn.from_port, True)
            in_code = effective(conn.to_element, conn.to_port, False)
            if out_code and in_code and out_code != in_code:
                raise ProcessingError(
                    "push/pull conflict on %s[%d] -> [%d]%s"
                    % (conn.from_element, conn.from_port, conn.to_port, conn.to_element)
                )
            binding = out_code or in_code
            if binding:
                for element, port, is_output in (
                    (conn.from_element, conn.from_port, True),
                    (conn.to_element, conn.to_port, False),
                ):
                    if port_code(element, port, is_output) == AGNOSTIC:
                        previous = agnostic_binding.get(element)
                        if previous is None:
                            agnostic_binding[element] = binding
                            changed = True
                        elif previous != binding:
                            raise ProcessingError(
                                "agnostic element %s bound both push and pull" % element
                            )

    resolved = {}
    for name in graph.elements:
        n_in = graph.input_count(name)
        n_out = graph.output_count(name)
        in_codes = []
        out_codes = []
        for port in range(n_in):
            code = port_code(name, port, False)
            if code == AGNOSTIC:
                code = agnostic_binding.get(name) or PUSH
            in_codes.append(code)
        for port in range(n_out):
            code = port_code(name, port, True)
            if code == AGNOSTIC:
                code = agnostic_binding.get(name) or PUSH
            out_codes.append(code)
        resolved[name] = ("".join(in_codes), "".join(out_codes))
    return resolved
