"""The router-configuration graph: the IR every optimization tool shares.

Elements sit at the vertices; connections are directed edges between
numbered ports (§3).  The paper's §5.1 observes that optimizers "treat
configurations more as graphs" and rely on "an extensive set of graph
manipulations — adding and removing elements and so forth"; this module
is that library.

A :class:`RouterGraph` is freely mutable; runtime routers
(:mod:`repro.elements.runtime`) are built from a *finished* graph and
never change afterwards — mirroring Click's install-a-whole-configuration
model, the single design decision the paper credits with making
optimizers possible.
"""

from __future__ import annotations

import re
from collections import OrderedDict
from dataclasses import dataclass, field, replace

from ..errors import UNKNOWN_LOCATION, ClickSemanticError, SourceLocation


@dataclass
class ElementDecl:
    """One element in a configuration graph."""

    name: str
    class_name: str
    config: str = None
    location: SourceLocation = field(default=UNKNOWN_LOCATION, repr=False)

    def copy(self):
        return replace(self)


@dataclass(frozen=True)
class Conn:
    """A connection: ``from_element [from_port] -> [to_port] to_element``."""

    from_element: str
    from_port: int
    to_element: str
    to_port: int

    def __str__(self):
        return "%s [%d] -> [%d] %s" % (
            self.from_element,
            self.from_port,
            self.to_port,
            self.to_element,
        )


@dataclass
class CompoundClass:
    """An ``elementclass`` definition: a named, parameterized
    configuration fragment (the language's abstraction facility)."""

    name: str
    params: list
    body: object  # a RouterGraph with `input` / `output` pseudo elements

    INPUT = "input"
    OUTPUT = "output"


_ANON_RE = re.compile(r"@(\d+)$")


class RouterGraph:
    """A mutable router-configuration graph."""

    def __init__(self):
        self.elements = OrderedDict()
        self.connections = []
        self.element_classes = OrderedDict()  # name -> CompoundClass
        self.requirements = []
        self.archive = OrderedDict()  # extra archive members (generated code)
        self._anon_counter = 0

    # -- construction ---------------------------------------------------------

    def add_element(self, name, class_name, config=None, location=UNKNOWN_LOCATION):
        """Declare an element.  ``name=None`` generates an anonymous name
        in Click's style (``Class@1``)."""
        if name is None:
            name = self.generate_anon_name(class_name)
        if name in self.elements:
            existing = self.elements[name]
            raise ClickSemanticError(
                "redeclaration of element %r (previously %s)" % (name, existing.class_name),
                location,
            )
        decl = ElementDecl(name=name, class_name=class_name, config=config, location=location)
        self.elements[name] = decl
        return decl

    def reset_anon_names(self):
        """Restart anonymous-name numbering (``Class@N``) from 1, as a
        fresh parse of the serialized configuration would — the pass
        manager calls this between passes so an in-memory pipeline
        numbers new elements exactly like tools handing text across a
        stdin/stdout boundary (collision checks keep names unique)."""
        self._anon_counter = 0

    def generate_anon_name(self, class_name):
        """A fresh Click-style anonymous name (``Class@N``)."""
        base = class_name.split("/")[-1]
        while True:
            self._anon_counter += 1
            candidate = "%s@%d" % (base, self._anon_counter)
            if candidate not in self.elements:
                return candidate

    def add_connection(self, from_element, from_port, to_element, to_port, location=UNKNOWN_LOCATION):
        """Connect two declared elements (duplicates are ignored)."""
        for name in (from_element, to_element):
            if name not in self.elements:
                raise ClickSemanticError("connection names undeclared element %r" % name, location)
        conn = Conn(from_element, from_port, to_element, to_port)
        if conn not in self.connections:
            self.connections.append(conn)
        return conn

    def remove_element(self, name):
        """Remove an element and every connection touching it."""
        if name not in self.elements:
            raise KeyError(name)
        del self.elements[name]
        self.connections = [
            c for c in self.connections if c.from_element != name and c.to_element != name
        ]

    def remove_connection(self, conn):
        """Remove one connection."""
        self.connections.remove(conn)

    def rename_element(self, old, new):
        """Rename an element, rewriting its connections."""
        if new in self.elements:
            raise ClickSemanticError("rename target %r already exists" % new)
        decl = self.elements.pop(old)
        decl.name = new
        # Preserve declaration order as much as practical: append at end.
        self.elements[new] = decl
        self.connections = [
            Conn(
                new if c.from_element == old else c.from_element,
                c.from_port,
                new if c.to_element == old else c.to_element,
                c.to_port,
            )
            for c in self.connections
        ]

    def set_class(self, name, class_name, config=None):
        """Repoint an element at a different class (the optimizers' most
        common rewrite: ``c :: Classifier(...)`` → ``c :: FastClassifier@@c``)."""
        decl = self.elements[name]
        decl.class_name = class_name
        decl.config = config

    # -- queries ---------------------------------------------------------------

    def __contains__(self, name):
        return name in self.elements

    def element_names(self):
        """Element names in declaration order."""
        return list(self.elements.keys())

    def elements_of_class(self, class_name):
        """Declarations whose class is ``class_name``."""
        return [d for d in self.elements.values() if d.class_name == class_name]

    def connections_from(self, name, port=None):
        """Connections leaving ``name`` (optionally one port)."""
        return [
            c
            for c in self.connections
            if c.from_element == name and (port is None or c.from_port == port)
        ]

    def connections_to(self, name, port=None):
        """Connections entering ``name`` (optionally one port)."""
        return [
            c
            for c in self.connections
            if c.to_element == name and (port is None or c.to_port == port)
        ]

    def input_count(self, name):
        """Number of input ports in use: 1 + the highest connected port."""
        ports = [c.to_port for c in self.connections if c.to_element == name]
        return max(ports) + 1 if ports else 0

    def output_count(self, name):
        """Number of output ports in use: 1 + the highest connected."""
        ports = [c.from_port for c in self.connections if c.from_element == name]
        return max(ports) + 1 if ports else 0

    def upstream_elements(self, name):
        """Sorted names of elements with a connection into ``name``."""
        return sorted({c.from_element for c in self.connections_to(name)})

    def downstream_elements(self, name):
        """Sorted names of elements ``name`` connects to."""
        return sorted({c.to_element for c in self.connections_from(name)})

    # -- transformations ---------------------------------------------------------

    def splice_out(self, name):
        """Remove a single-input single-output element, reconnecting its
        neighbours directly (used by click-align to drop redundant Aligns
        and by click-undead for pass-through removals)."""
        incoming = self.connections_to(name)
        outgoing = self.connections_from(name)
        if len({c.to_port for c in incoming}) > 1 or len({c.from_port for c in outgoing}) > 1:
            raise ClickSemanticError("cannot splice out multi-port element %r" % name)
        self.remove_element(name)
        for before in incoming:
            for after in outgoing:
                self.add_connection(
                    before.from_element, before.from_port, after.to_element, after.to_port
                )

    def replace_subgraph(self, element_names, replacement, boundary_map):
        """Replace the subgraph induced by ``element_names`` with the
        elements and internal connections of ``replacement`` (another
        RouterGraph).  ``boundary_map`` maps each old boundary endpoint to
        its new home:

        - key ``("in", old_element, old_port)`` → ``(new_element, new_port)``
          for connections arriving from outside the subgraph, and
        - key ``("out", old_element, old_port)`` → ``(new_element, new_port)``
          for connections leaving it.

        Replacement element names are uniquified against the host graph;
        returns the mapping from replacement-local names to final names.
        """
        element_names = set(element_names)
        incoming = [
            c
            for c in self.connections
            if c.to_element in element_names and c.from_element not in element_names
        ]
        outgoing = [
            c
            for c in self.connections
            if c.from_element in element_names and c.to_element not in element_names
        ]

        for conn in incoming:
            key = ("in", conn.to_element, conn.to_port)
            if key not in boundary_map:
                raise ClickSemanticError(
                    "replacement does not cover boundary connection %s" % conn
                )
        for conn in outgoing:
            key = ("out", conn.from_element, conn.from_port)
            if key not in boundary_map:
                raise ClickSemanticError(
                    "replacement does not cover boundary connection %s" % conn
                )

        for name in element_names:
            self.remove_element(name)

        name_map = {}
        for decl in replacement.elements.values():
            final = decl.name if decl.name not in self.elements else None
            if final is None:
                final = self._uniquify(decl.name)
            name_map[decl.name] = final
            self.add_element(final, decl.class_name, decl.config, decl.location)
        for conn in replacement.connections:
            self.add_connection(
                name_map[conn.from_element],
                conn.from_port,
                name_map[conn.to_element],
                conn.to_port,
            )
        for conn in incoming:
            new_element, new_port = boundary_map[("in", conn.to_element, conn.to_port)]
            self.add_connection(
                conn.from_element, conn.from_port, name_map[new_element], new_port
            )
        for conn in outgoing:
            new_element, new_port = boundary_map[("out", conn.from_element, conn.from_port)]
            self.add_connection(
                name_map[new_element], new_port, conn.to_element, conn.to_port
            )
        return name_map

    def _uniquify(self, name):
        base = _ANON_RE.sub("", name)
        counter = 1
        while True:
            candidate = "%s@%d" % (base, counter)
            if candidate not in self.elements:
                return candidate
            counter += 1

    def fingerprint(self):
        """A content hash of the full configuration — declarations,
        connections, compound classes, requirements, and any archive
        members — via the canonical unparsed text.  Two graphs with
        equal fingerprints instantiate behaviourally identical routers,
        which is what lets the runtime codegen cache key compiled fast
        paths on it (:mod:`repro.runtime.codegen_cache`)."""
        import hashlib

        from ..lang.unparse import unparse_file

        return hashlib.sha256(unparse_file(self).encode("utf-8")).hexdigest()

    def merge_requirements(self, other):
        """Union another graph's requirements into this one."""
        for requirement in other.requirements:
            if requirement not in self.requirements:
                self.requirements.append(requirement)

    def copy(self):
        """An independent copy (declarations deep, definitions shared)."""
        dup = RouterGraph()
        for decl in self.elements.values():
            dup.elements[decl.name] = decl.copy()
        dup.connections = list(self.connections)
        dup.element_classes = OrderedDict(self.element_classes)
        dup.requirements = list(self.requirements)
        dup.archive = OrderedDict(self.archive)
        dup._anon_counter = self._anon_counter
        return dup

    # -- integrity ---------------------------------------------------------------

    def check_integrity(self):
        """Internal consistency: every connection endpoint exists and no
        two connections leave the same push-side (element, port) pair more
        than... (multiple connections from one port are legal in Click for
        push; we only verify endpoints here)."""
        for conn in self.connections:
            for name in (conn.from_element, conn.to_element):
                if name not in self.elements:
                    raise ClickSemanticError("dangling connection %s" % conn)
        return True

    def __repr__(self):
        return "RouterGraph(%d elements, %d connections)" % (
            len(self.elements),
            len(self.connections),
        )
