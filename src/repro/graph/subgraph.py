"""Subgraph isomorphism for router configurations.

click-xform's pattern search "is a variant of subgraph [isomorphism], a
well-known NP-complete problem.  Click-xform implements Ullman's
subgraph [isomorphism] algorithm, which works well for the patterns and
configurations seen in practice." (§6.2)

This is Ullman's 1976 algorithm over directed multigraphs whose edges
carry (from_port, to_port) labels: candidate sets per pattern vertex,
iterated refinement, then depth-first search with forward checking.
Edges must match ports exactly; vertex compatibility is a caller-supplied
predicate (click-xform uses class names plus config-string wildcards).
"""

from __future__ import annotations


class SubgraphMatcher:
    """Enumerate occurrences of ``pattern`` inside ``host``.

    Both are :class:`~repro.graph.router.RouterGraph` instances.
    ``node_compatible(pattern_decl, host_decl)`` gates vertex pairings.
    ``exclude`` is a set of pattern element names not to match (xform's
    ``input``/``output`` pseudo elements).
    """

    def __init__(self, pattern, host, node_compatible, exclude=()):
        self.pattern = pattern
        self.host = host
        self.node_compatible = node_compatible
        self.pattern_nodes = [n for n in pattern.elements if n not in set(exclude)]
        self.host_nodes = list(host.elements)
        excluded = set(exclude)
        # Pattern edges among matched nodes only.
        self.pattern_edges = [
            c
            for c in pattern.connections
            if c.from_element not in excluded and c.to_element not in excluded
        ]
        # Host adjacency indexed for O(1) edge tests.
        self._host_edge_set = {
            (c.from_element, c.from_port, c.to_element, c.to_port) for c in host.connections
        }
        self._host_out = {}
        self._host_in = {}
        for conn in host.connections:
            self._host_out.setdefault(conn.from_element, []).append(conn)
            self._host_in.setdefault(conn.to_element, []).append(conn)

    # -- candidate construction and refinement --------------------------------

    def _initial_candidates(self):
        candidates = {}
        for p_name in self.pattern_nodes:
            p_decl = self.pattern.elements[p_name]
            cands = set()
            for h_name in self.host_nodes:
                if self.node_compatible(p_decl, self.host.elements[h_name]):
                    cands.add(h_name)
            if not cands:
                return None
            candidates[p_name] = cands
        return candidates

    def _refine(self, candidates):
        """Ullman refinement: a host node h stays a candidate for pattern
        node p only if every pattern edge at p can be realized by *some*
        candidate at the other end."""
        changed = True
        while changed:
            changed = False
            for edge in self.pattern_edges:
                pa, pb = edge.from_element, edge.to_element
                if pa not in candidates or pb not in candidates:
                    continue
                # Forward direction: every candidate of pa must have an
                # out-edge on edge.from_port to some candidate of pb on
                # edge.to_port.
                keep = set()
                for ha in candidates[pa]:
                    for conn in self._host_out.get(ha, ()):
                        if (
                            conn.from_port == edge.from_port
                            and conn.to_port == edge.to_port
                            and conn.to_element in candidates[pb]
                        ):
                            keep.add(ha)
                            break
                if keep != candidates[pa]:
                    candidates[pa] = keep
                    changed = True
                    if not keep:
                        return False
                # Backward direction.
                keep = set()
                for hb in candidates[pb]:
                    for conn in self._host_in.get(hb, ()):
                        if (
                            conn.from_port == edge.from_port
                            and conn.to_port == edge.to_port
                            and conn.from_element in candidates[pa]
                        ):
                            keep.add(hb)
                            break
                if keep != candidates[pb]:
                    candidates[pb] = keep
                    changed = True
                    if not keep:
                        return False
        return True

    # -- search ----------------------------------------------------------------

    def matches(self):
        """Yield mappings {pattern_name: host_name}."""
        if not self.pattern_nodes:
            return
        candidates = self._initial_candidates()
        if candidates is None or not self._refine(candidates):
            return
        # Order pattern nodes by fewest candidates first (fail fast).
        order = sorted(self.pattern_nodes, key=lambda n: len(candidates[n]))
        yield from self._search(order, 0, {}, candidates)

    def _edges_consistent(self, mapping, p_name, h_name):
        for edge in self.pattern_edges:
            if edge.from_element == p_name and edge.to_element in mapping:
                if (
                    h_name,
                    edge.from_port,
                    mapping[edge.to_element],
                    edge.to_port,
                ) not in self._host_edge_set:
                    return False
            if edge.to_element == p_name and edge.from_element in mapping:
                if (
                    mapping[edge.from_element],
                    edge.from_port,
                    h_name,
                    edge.to_port,
                ) not in self._host_edge_set:
                    return False
            # Self-loops in the pattern.
            if edge.from_element == p_name and edge.to_element == p_name:
                if (h_name, edge.from_port, h_name, edge.to_port) not in self._host_edge_set:
                    return False
        return True

    def _search(self, order, depth, mapping, candidates):
        if depth == len(order):
            yield dict(mapping)
            return
        p_name = order[depth]
        used = set(mapping.values())
        for h_name in sorted(candidates[p_name]):
            if h_name in used:
                continue
            if not self._edges_consistent(mapping, p_name, h_name):
                continue
            mapping[p_name] = h_name
            yield from self._search(order, depth + 1, mapping, candidates)
            del mapping[p_name]

    def first_match(self):
        for mapping in self.matches():
            return mapping
        return None


def find_subgraph(pattern, host, node_compatible, exclude=()):
    """First occurrence of ``pattern`` in ``host``, or None."""
    return SubgraphMatcher(pattern, host, node_compatible, exclude).first_match()
