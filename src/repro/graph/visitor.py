"""Flow-based graph traversal.

Several tools walk configurations *along packet flow*: click-devirtualize
needs the downstream context of every port; click-align propagates
alignment facts forward through elements according to their flow codes;
click-undead asks reachability questions.  This module provides those
traversals over a RouterGraph plus a class-spec table.
"""

from __future__ import annotations

from collections import deque


def forward_reachable(graph, roots):
    """Element names reachable from ``roots`` following connections
    forward (ignoring flow codes: reachability of the wiring itself)."""
    seen = set()
    queue = deque(roots)
    while queue:
        name = queue.popleft()
        if name in seen or name not in graph.elements:
            continue
        seen.add(name)
        for conn in graph.connections_from(name):
            queue.append(conn.to_element)
    return seen


def backward_reachable(graph, roots):
    """Element names from which some root can be reached."""
    seen = set()
    queue = deque(roots)
    while queue:
        name = queue.popleft()
        if name in seen or name not in graph.elements:
            continue
        seen.add(name)
        for conn in graph.connections_to(name):
            queue.append(conn.from_element)
    return seen


def flow_forward_ports(graph, specs, element, in_port):
    """Output ports of ``element`` that packets entering ``in_port`` can
    leave, per the element's flow code.  Unknown classes are assumed to
    flow everywhere (the conservative answer for analyses)."""
    spec = specs.get(graph.elements[element].class_name)
    n_out = graph.output_count(element)
    if spec is None:
        return list(range(n_out))
    return spec.flow_code.forward_ports(in_port, n_out)


def flow_reachable_connections(graph, specs, start_element, start_in_port=None):
    """Connections a packet entering ``start_element`` (optionally on a
    specific input port) might traverse, honouring flow codes."""
    seen_ports = set()
    result = []
    if start_in_port is None:
        initial = [(start_element, p) for p in range(max(1, graph.input_count(start_element)))]
    else:
        initial = [(start_element, start_in_port)]
    queue = deque(initial)
    while queue:
        element, in_port = queue.popleft()
        if (element, in_port) in seen_ports or element not in graph.elements:
            continue
        seen_ports.add((element, in_port))
        for out_port in flow_forward_ports(graph, specs, element, in_port):
            for conn in graph.connections_from(element, out_port):
                result.append(conn)
                queue.append((conn.to_element, conn.to_port))
    return result


def topological_order(graph):
    """Elements in a topological order where possible; cycles (Click
    graphs may have them, e.g. via ICMPError feedback) are broken
    arbitrarily but deterministically."""
    in_degree = {name: 0 for name in graph.elements}
    for conn in graph.connections:
        if conn.from_element != conn.to_element:
            in_degree[conn.to_element] += 1
    ready = deque(sorted(name for name, degree in in_degree.items() if degree == 0))
    order = []
    remaining = dict(in_degree)
    visited = set()
    while len(order) < len(graph.elements):
        if not ready:
            # Cycle: pick the unvisited element with the smallest in-degree.
            candidates = [n for n in graph.elements if n not in visited]
            candidates.sort(key=lambda n: (remaining[n], n))
            ready.append(candidates[0])
        name = ready.popleft()
        if name in visited:
            continue
        visited.add(name)
        order.append(name)
        for conn in graph.connections_from(name):
            if conn.to_element not in visited and conn.from_element != conn.to_element:
                remaining[conn.to_element] -= 1
                if remaining[conn.to_element] == 0:
                    ready.append(conn.to_element)
    return order
