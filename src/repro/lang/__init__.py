"""The Click configuration language: lexing, parsing, elaboration,
unparsing, and the multi-file archive format."""

from .archive import ARCHIVE_MAGIC, ArchiveError, CONFIG_MEMBER, is_archive, read_archive, write_archive
from .ast import Connection, Declaration, ElementClassDef, Endpoint, Program, Require
from .build import build_graph, parse_graph
from .errors import ClickSemanticError, ClickSyntaxError, ErrorCollector, SourceLocation
from .lexer import join_config_args, split_config_args, tokenize
from .parser import parse
from .unparse import unparse, unparse_file

__all__ = [
    "ARCHIVE_MAGIC",
    "ArchiveError",
    "CONFIG_MEMBER",
    "is_archive",
    "read_archive",
    "write_archive",
    "Connection",
    "Declaration",
    "ElementClassDef",
    "Endpoint",
    "Program",
    "Require",
    "build_graph",
    "parse_graph",
    "ClickSemanticError",
    "ClickSyntaxError",
    "ErrorCollector",
    "SourceLocation",
    "join_config_args",
    "split_config_args",
    "tokenize",
    "parse",
    "unparse",
    "unparse_file",
]
