"""Configuration archives.

"Optimizers inspired the archive feature, where a configuration may
consist of multiple files bundled into a single archive.  Several tools
use this feature to attach source and/or object code specialized for a
single configuration." (§5.2)

Click uses the ``ar`` format; we use a simple line-oriented textual
format that survives standard-input/standard-output plumbing:

    !<archive>
    !<member name=config length=123>
    ...123 bytes...
    !<member name=fastclassifier.py length=456>
    ...456 bytes...

A configuration that does not start with ``!<archive>`` is a plain
single-file configuration whose sole member is named ``config``.
"""

from __future__ import annotations

from collections import OrderedDict

ARCHIVE_MAGIC = "!<archive>"
_MEMBER_PREFIX = "!<member "

CONFIG_MEMBER = "config"


class ArchiveError(ValueError):
    """Raised for malformed archive text."""


def is_archive(text):
    """True if ``text`` is in the multi-file archive format."""
    return text.lstrip().startswith(ARCHIVE_MAGIC)


def write_archive(members):
    """Serialize an ordered ``{name: content}`` mapping."""
    parts = [ARCHIVE_MAGIC + "\n"]
    for name, content in members.items():
        if "\n" in name or ">" in name or "=" in name:
            raise ArchiveError("bad archive member name %r" % name)
        data = content if isinstance(content, str) else content.decode("utf-8")
        parts.append("!<member name=%s length=%d>\n" % (name, len(data.encode("utf-8"))))
        parts.append(data)
        if not data.endswith("\n"):
            parts.append("\n")
    return "".join(parts)


def read_archive(text):
    """Parse archive text into an ordered ``{name: content}`` mapping.
    Plain (non-archive) text yields ``{"config": text}``."""
    if not is_archive(text):
        return OrderedDict([(CONFIG_MEMBER, text)])
    body = text.lstrip()
    if not body.startswith(ARCHIVE_MAGIC):
        raise ArchiveError("missing archive magic")
    cursor = body.index(ARCHIVE_MAGIC) + len(ARCHIVE_MAGIC)
    # Skip the newline after the magic.
    if cursor < len(body) and body[cursor] == "\n":
        cursor += 1
    members = OrderedDict()
    data = body.encode("utf-8")
    byte_cursor = len(body[:cursor].encode("utf-8"))
    while byte_cursor < len(data):
        line_end = data.index(b"\n", byte_cursor)
        header = data[byte_cursor:line_end].decode("utf-8")
        if not header.startswith(_MEMBER_PREFIX) or not header.endswith(">"):
            raise ArchiveError("bad member header %r" % header)
        fields = {}
        for item in header[len(_MEMBER_PREFIX):-1].split():
            if "=" not in item:
                raise ArchiveError("bad member header field %r" % item)
            key, value = item.split("=", 1)
            fields[key] = value
        if "name" not in fields or "length" not in fields:
            raise ArchiveError("member header missing name/length: %r" % header)
        length = int(fields["length"])
        content_start = line_end + 1
        content = data[content_start:content_start + length].decode("utf-8")
        if len(content.encode("utf-8")) != length:
            raise ArchiveError("truncated member %r" % fields["name"])
        members[fields["name"]] = content
        byte_cursor = content_start + length
        # Skip the padding newline we add for members not ending in one.
        if byte_cursor < len(data) and data[byte_cursor:byte_cursor + 1] == b"\n" and not content.endswith("\n"):
            byte_cursor += 1
    return members


def config_member(members):
    """The configuration text of a parsed archive."""
    if CONFIG_MEMBER not in members:
        raise ArchiveError("archive has no 'config' member")
    return members[CONFIG_MEMBER]
