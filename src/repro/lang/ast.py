"""Abstract syntax for the Click configuration language.

The parser produces a :class:`Program` — a list of statements.  A
separate elaboration step (:mod:`repro.lang.build`) turns a program into
a :class:`repro.graph.router.RouterGraph`, resolving anonymous element
names and collecting compound-element (``elementclass``) definitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .errors import UNKNOWN_LOCATION, SourceLocation


@dataclass
class Statement:
    location: SourceLocation = field(default=UNKNOWN_LOCATION, repr=False)


@dataclass
class Declaration(Statement):
    """``a, b :: Class(config);``"""

    names: List[str] = field(default_factory=list)
    class_name: str = ""
    config: Optional[str] = None


@dataclass
class Endpoint:
    """One stop in a connection chain: ``[in] element [out]``.

    ``element`` is either a plain name reference (``decl is None``) or an
    inline declaration (possibly anonymous, ``decl.names == []``).
    """

    name: Optional[str] = None
    decl: Optional[Declaration] = None
    in_port: Optional[int] = None
    out_port: Optional[int] = None
    location: SourceLocation = field(default=UNKNOWN_LOCATION, repr=False)


@dataclass
class Connection(Statement):
    """``a [0] -> [1] b -> c;`` — a chain of two or more endpoints."""

    chain: List[Endpoint] = field(default_factory=list)


@dataclass
class ElementClassDef(Statement):
    """``elementclass Name { $a, $b | body... }``"""

    name: str = ""
    params: List[str] = field(default_factory=list)
    body: List[Statement] = field(default_factory=list)


@dataclass
class Require(Statement):
    """``require(package);`` — carried through transformations verbatim."""

    text: str = ""


@dataclass
class Program:
    statements: List[Statement] = field(default_factory=list)
    filename: str = "<config>"

    def declarations(self):
        return [s for s in self.statements if isinstance(s, Declaration)]

    def connections(self):
        return [s for s in self.statements if isinstance(s, Connection)]

    def element_classes(self):
        return [s for s in self.statements if isinstance(s, ElementClassDef)]
