"""Elaboration: turn a parsed :class:`~repro.lang.ast.Program` into a
:class:`~repro.graph.router.RouterGraph`.

Elaboration resolves names but does *not* expand compound elements —
``elementclass`` definitions are stored on the graph and compiled away
later by :mod:`repro.core.flatten`, because some tools (click-undead, and
click-combine's output) care about compounds as such.

Name resolution follows Click's file-scoped rule: declarations anywhere
in the file are visible everywhere, and a bare name that matches no
declaration is an anonymous instantiation of the class with that name
(``... -> Discard;``).  Whether such a class actually exists is
click-check's business, not the parser's — this is what lets tools parse
configurations "without knowing which names correspond to element
classes" (§5.2).
"""

from __future__ import annotations

from ..graph.router import CompoundClass, RouterGraph
from .ast import Connection, Declaration, ElementClassDef, Program, Require
from .errors import ClickSemanticError
from .parser import parse

_PSEUDO_CLASSES = {
    CompoundClass.INPUT: "__compound_input__",
    CompoundClass.OUTPUT: "__compound_output__",
}


def build_graph(program, inside_compound=False):
    """Elaborate ``program`` into a RouterGraph."""
    graph = RouterGraph()

    # Pass 0: compound definitions (so instantiations can be recognized).
    for stmt in program.statements:
        if isinstance(stmt, ElementClassDef):
            body_program = Program(statements=stmt.body, filename=program.filename)
            body_graph = build_graph(body_program, inside_compound=True)
            if stmt.name in graph.element_classes:
                raise ClickSemanticError(
                    "redefinition of element class %r" % stmt.name, stmt.location
                )
            graph.element_classes[stmt.name] = CompoundClass(
                name=stmt.name, params=list(stmt.params), body=body_graph
            )

    # Pass 1: explicit declarations (standalone and inline).
    def declare(decl):
        if not decl.names:
            # A standalone anonymous statement: `AlignmentInfo(...);`.
            graph.add_element(None, decl.class_name, decl.config, decl.location)
        for name in decl.names:
            graph.add_element(name, decl.class_name, decl.config, decl.location)

    for stmt in program.statements:
        if isinstance(stmt, Declaration):
            declare(stmt)
        elif isinstance(stmt, Connection):
            for endpoint in stmt.chain:
                if endpoint.decl is not None and endpoint.decl.names:
                    declare(endpoint.decl)
        elif isinstance(stmt, Require):
            graph.requirements.append(stmt.text)

    if inside_compound:
        for pseudo, pseudo_class in _PSEUDO_CLASSES.items():
            if pseudo not in graph.elements:
                graph.add_element(pseudo, pseudo_class)

    # Pass 2: connections, resolving endpoints to element names.
    def resolve(endpoint):
        if endpoint.decl is not None and not endpoint.decl.names:
            # Anonymous inline declaration: Class(config).
            decl = graph.add_element(
                None, endpoint.decl.class_name, endpoint.decl.config, endpoint.decl.location
            )
            return decl.name
        name = endpoint.name
        if name in graph.elements:
            return name
        # Bare, undeclared name: anonymous config-less instantiation.
        decl = graph.add_element(None, name, None, endpoint.location)
        return decl.name

    for stmt in program.statements:
        if not isinstance(stmt, Connection):
            continue
        resolved = [resolve(endpoint) for endpoint in stmt.chain]
        for i in range(len(stmt.chain) - 1):
            src, dst = stmt.chain[i], stmt.chain[i + 1]
            from_port = src.out_port if src.out_port is not None else 0
            to_port = dst.in_port if dst.in_port is not None else 0
            graph.add_connection(resolved[i], from_port, resolved[i + 1], to_port, stmt.location)
        # A trailing output-port or leading input-port on the chain ends
        # would dangle; Click rejects that, and so do we.
        if stmt.chain[0].in_port is not None and resolved[0] not in _PSEUDO_CLASSES.values():
            pass  # legal: `[0] input ...` inside compounds handles ports itself
        if stmt.chain[-1].out_port is not None:
            raise ClickSemanticError(
                "dangling output port at end of connection", stmt.location
            )

    graph.check_integrity()
    return graph


def parse_graph(text, filename="<config>"):
    """Parse configuration text straight to a RouterGraph."""
    return build_graph(parse(text, filename))
