"""Re-export of :mod:`repro.errors` under its historical location.

Diagnostics live at package top level so that :mod:`repro.graph` can use
them without importing the language package (which itself depends on the
graph package for elaboration).
"""

from ..errors import (  # noqa: F401
    UNKNOWN_LOCATION,
    ClickSemanticError,
    ClickSyntaxError,
    ErrorCollector,
    SourceLocation,
)

__all__ = [
    "UNKNOWN_LOCATION",
    "ClickSemanticError",
    "ClickSyntaxError",
    "ErrorCollector",
    "SourceLocation",
]
