"""Lexer for the Click router-configuration language.

The language is deliberately small and declarative (§5.2 of the paper):
its sole function is to describe elements and the connections between
them.  The lexer produces a token stream; parenthesized configuration
strings are captured *raw* (quotes, nested parentheses and comments
respected) because element configuration syntax is the element's own
business — tools must round-trip it byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import ClickSyntaxError, SourceLocation

# Token kinds.
IDENT = "IDENT"
NUMBER = "NUMBER"
VARIABLE = "VARIABLE"  # $name, inside compound-element bodies
CONFIG = "CONFIG"  # raw text between ( and )
COLONCOLON = "::"
ARROW = "->"
SEMI = ";"
COMMA = ","
BAR = "|"
BARBAR = "||"
LBRACE = "{"
RBRACE = "}"
LBRACKET = "["
RBRACKET = "]"
ELEMENTCLASS = "elementclass"
REQUIRE = "require"
EOF = "EOF"

_KEYWORDS = {"elementclass": ELEMENTCLASS, "require": REQUIRE}

_IDENT_START = set("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_@")
_IDENT_CONT = _IDENT_START | set("0123456789/")


@dataclass(frozen=True)
class Token:
    kind: str
    value: str
    location: SourceLocation

    def __repr__(self):
        return "Token(%s, %r)" % (self.kind, self.value)


class Lexer:
    """Tokenizes one configuration file."""

    def __init__(self, text, filename="<config>"):
        self.text = text
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.column = 1

    def location(self):
        return SourceLocation(self.filename, self.line, self.column)

    def _advance(self, count=1):
        for _ in range(count):
            if self.pos < len(self.text):
                if self.text[self.pos] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.pos += 1

    def _peek(self, offset=0):
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def _skip_space_and_comments(self):
        while self.pos < len(self.text):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                start = self.location()
                self._advance(2)
                while self.pos < len(self.text) and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                if self.pos >= len(self.text):
                    raise ClickSyntaxError("unterminated block comment", start)
                self._advance(2)
            else:
                return

    def _lex_config(self):
        """Capture raw text between balanced parentheses.  Parentheses
        inside double-quoted strings or comments don't count."""
        start = self.location()
        assert self._peek() == "("
        self._advance()
        depth = 1
        chunk_start = self.pos
        parts = []
        while self.pos < len(self.text):
            char = self._peek()
            if char == '"':
                self._advance()
                while self.pos < len(self.text) and self._peek() != '"':
                    if self._peek() == "\\":
                        self._advance()
                    self._advance()
                if self.pos >= len(self.text):
                    raise ClickSyntaxError("unterminated string in configuration", start)
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while self.pos < len(self.text) and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                self._advance(2)
                while self.pos < len(self.text) and not (
                    self._peek() == "*" and self._peek(1) == "/"
                ):
                    self._advance()
                self._advance(2)
            elif char == "(":
                depth += 1
                self._advance()
            elif char == ")":
                depth -= 1
                if depth == 0:
                    parts.append(self.text[chunk_start:self.pos])
                    self._advance()
                    return Token(CONFIG, "".join(parts).strip(), start)
                self._advance()
            else:
                self._advance()
        raise ClickSyntaxError("unterminated configuration string", start)

    def next_token(self):
        self._skip_space_and_comments()
        loc = self.location()
        if self.pos >= len(self.text):
            return Token(EOF, "", loc)
        char = self._peek()
        if char == "(":
            return self._lex_config()
        if char == ":" and self._peek(1) == ":":
            self._advance(2)
            return Token(COLONCOLON, "::", loc)
        if char == "-" and self._peek(1) == ">":
            self._advance(2)
            return Token(ARROW, "->", loc)
        if char == "|" and self._peek(1) == "|":
            self._advance(2)
            return Token(BARBAR, "||", loc)
        if char in ";,|{}[]":
            self._advance()
            kind = {
                ";": SEMI,
                ",": COMMA,
                "|": BAR,
                "{": LBRACE,
                "}": RBRACE,
                "[": LBRACKET,
                "]": RBRACKET,
            }[char]
            return Token(kind, char, loc)
        if char == "$":
            self._advance()
            start = self.pos
            while self.pos < len(self.text) and self._peek() in _IDENT_CONT:
                self._advance()
            name = self.text[start:self.pos]
            if not name:
                raise ClickSyntaxError("'$' must introduce a variable name", loc)
            return Token(VARIABLE, "$" + name, loc)
        if char.isdigit():
            start = self.pos
            while self.pos < len(self.text) and self._peek().isdigit():
                self._advance()
            return Token(NUMBER, self.text[start:self.pos], loc)
        if char in _IDENT_START:
            start = self.pos
            while self.pos < len(self.text) and self._peek() in _IDENT_CONT:
                self._advance()
            word = self.text[start:self.pos]
            return Token(_KEYWORDS.get(word, IDENT), word, loc)
        raise ClickSyntaxError("unexpected character %r" % char, loc)

    def tokens(self):
        """The full token list, ending with EOF."""
        result = []
        while True:
            token = self.next_token()
            result.append(token)
            if token.kind == EOF:
                return result


def tokenize(text, filename="<config>"):
    """The token list for ``text``, ending with EOF."""
    return Lexer(text, filename).tokens()


def split_config_args(config):
    """Split an element configuration string into top-level comma-separated
    arguments, respecting quotes, parentheses, brackets, and braces.

    >>> split_config_args("12/0800, -")
    ['12/0800', '-']
    >>> split_config_args('"a, b", c')
    ['"a, b"', 'c']
    """
    if config is None:
        return []
    args = []
    depth = 0
    current = []
    index = 0
    while index < len(config):
        char = config[index]
        if char == '"':
            current.append(char)
            index += 1
            while index < len(config) and config[index] != '"':
                if config[index] == "\\" and index + 1 < len(config):
                    current.append(config[index])
                    index += 1
                current.append(config[index])
                index += 1
            if index < len(config):
                current.append('"')
                index += 1
            continue
        if char in "([{":
            depth += 1
        elif char in ")]}":
            depth -= 1
        if char == "," and depth == 0:
            args.append("".join(current).strip())
            current = []
        else:
            current.append(char)
        index += 1
    tail = "".join(current).strip()
    if tail or args:
        args.append(tail)
    # An entirely empty configuration means zero arguments.
    if args == [""]:
        return []
    return args


def join_config_args(args):
    """Inverse of :func:`split_config_args` for well-behaved arguments."""
    return ", ".join(args)
