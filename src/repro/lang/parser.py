"""Recursive-descent parser for the Click configuration language.

Grammar (the subset of Click's language that the paper's tools rely on):

    program      := statement*
    statement    := declaration ';' | connection ';' | elementclass | require ';'
    declaration  := name (',' name)* '::' class config?
    connection   := endpoint ('->' endpoint)+
    endpoint     := port? element port?
    element      := name | name '::' class config? | class config?
    port         := '[' number ']'
    elementclass := 'elementclass' name '{' params? statement* '}'
    params       := variable (',' variable)* '|'
    require      := 'require' config

Crucially (§5.2), the grammar can be parsed *without knowing which names
are element classes*: in an endpoint, ``Foo`` followed by a config or by
nothing is only a class reference if ``Foo`` was not previously declared
— that resolution happens at elaboration time, not parse time.  Here we
use Click's actual syntactic rule: an endpoint consisting of a bare name
is a *reference*; a name followed by ``(config)`` is an anonymous
declaration of that class.
"""

from __future__ import annotations

from . import lexer as lex
from .ast import Connection, Declaration, ElementClassDef, Endpoint, Program, Require
from .errors import ClickSyntaxError


class Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, text, filename="<config>"):
        self.tokens = lex.tokenize(text, filename)
        self.index = 0
        self.filename = filename

    # -- token plumbing ------------------------------------------------------

    def _peek(self, offset=0):
        index = min(self.index + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _next(self):
        token = self.tokens[self.index]
        if token.kind != lex.EOF:
            self.index += 1
        return token

    def _expect(self, kind):
        token = self._next()
        if token.kind != kind:
            raise ClickSyntaxError(
                "expected %s, found %r" % (kind, token.value or token.kind), token.location
            )
        return token

    def _accept(self, kind):
        if self._peek().kind == kind:
            return self._next()
        return None

    # -- grammar -------------------------------------------------------------

    def parse(self):
        statements = self._parse_statements(stop_kinds=(lex.EOF,))
        self._expect(lex.EOF)
        return Program(statements=statements, filename=self.filename)

    def _parse_statements(self, stop_kinds):
        statements = []
        while self._peek().kind not in stop_kinds:
            if self._accept(lex.SEMI):
                continue  # stray semicolons are harmless
            statements.append(self._parse_statement())
        return statements

    def _parse_statement(self):
        token = self._peek()
        if token.kind == lex.ELEMENTCLASS:
            return self._parse_elementclass()
        if token.kind == lex.REQUIRE:
            loc = self._next().location
            config = self._expect(lex.CONFIG)
            self._accept(lex.SEMI)
            return Require(text=config.value, location=loc)
        return self._parse_declaration_or_connection()

    def _parse_elementclass(self):
        loc = self._expect(lex.ELEMENTCLASS).location
        name = self._expect(lex.IDENT).value
        self._expect(lex.LBRACE)
        params = []
        # Optional parameter list: `$a, $b |`
        if self._peek().kind == lex.VARIABLE:
            # Look ahead for the closing bar to distinguish a parameter
            # list from a variable used elsewhere (variables only appear
            # in parameter lists at statement level, so this is safe).
            params.append(self._expect(lex.VARIABLE).value)
            while self._accept(lex.COMMA):
                params.append(self._expect(lex.VARIABLE).value)
            self._expect(lex.BAR)
        body = self._parse_statements(stop_kinds=(lex.RBRACE, lex.EOF))
        self._expect(lex.RBRACE)
        self._accept(lex.SEMI)
        return ElementClassDef(name=name, params=params, body=body, location=loc)

    def _parse_declaration_or_connection(self):
        """Both start with (port? name ...); disambiguate by scanning."""
        start = self.index
        # Try plain declaration: name (',' name)* '::' ...
        if self._peek().kind == lex.IDENT:
            names = [self._next().value]
            while self._peek().kind == lex.COMMA and self._peek(1).kind == lex.IDENT:
                self._next()
                names.append(self._next().value)
            if self._peek().kind == lex.COLONCOLON and (
                len(names) > 1 or not self._connection_follows()
            ):
                loc = self.tokens[start].location
                self._expect(lex.COLONCOLON)
                class_name = self._expect(lex.IDENT).value
                config = None
                config_token = self._accept(lex.CONFIG)
                if config_token is not None:
                    config = config_token.value
                self._accept(lex.SEMI)
                return Declaration(names=names, class_name=class_name, config=config, location=loc)
        # Not a plain declaration: rewind and parse as connection chain.
        self.index = start
        return self._parse_connection()

    def _connection_follows(self):
        """After ``name ::``, scan past ``class config?`` — if an arrow
        follows, this is an inline declaration inside a connection
        (``x :: Class -> y``), not a standalone declaration."""
        offset = 1  # past '::'
        if self._peek(offset).kind != lex.IDENT:
            return False
        offset += 1
        if self._peek(offset).kind == lex.CONFIG:
            offset += 1
        return self._peek(offset).kind == lex.ARROW

    def _parse_connection(self):
        loc = self._peek().location
        chain = [self._parse_endpoint()]
        if self._peek().kind != lex.ARROW:
            head = chain[0]
            if head.decl is not None and head.in_port is None and head.out_port is None:
                # A standalone element statement, possibly anonymous:
                # `AlignmentInfo(c 4 2);` or `x :: Foo;` parsed this way.
                self._accept(lex.SEMI)
                return head.decl
            token = self._peek()
            raise ClickSyntaxError(
                "expected '->' or '::' after element, found %r"
                % (token.value or token.kind),
                token.location,
            )
        while self._accept(lex.ARROW):
            chain.append(self._parse_endpoint())
        self._accept(lex.SEMI)
        return Connection(chain=chain, location=loc)

    def _parse_endpoint(self):
        loc = self._peek().location
        in_port = None
        if self._accept(lex.LBRACKET):
            in_port = int(self._expect(lex.NUMBER).value)
            self._expect(lex.RBRACKET)

        name_token = self._expect(lex.IDENT)
        endpoint = Endpoint(location=loc, in_port=in_port)

        if self._accept(lex.COLONCOLON):
            # `name :: Class(config)` inline declaration.
            class_name = self._expect(lex.IDENT).value
            config = None
            config_token = self._accept(lex.CONFIG)
            if config_token is not None:
                config = config_token.value
            endpoint.name = name_token.value
            endpoint.decl = Declaration(
                names=[name_token.value],
                class_name=class_name,
                config=config,
                location=name_token.location,
            )
        elif self._peek().kind == lex.CONFIG:
            # `Class(config)` anonymous declaration.
            config = self._next().value
            endpoint.decl = Declaration(
                names=[], class_name=name_token.value, config=config, location=name_token.location
            )
        else:
            # Bare name: reference to a declared element, or (resolved at
            # elaboration) an anonymous config-less class instantiation.
            endpoint.name = name_token.value

        if self._accept(lex.LBRACKET):
            endpoint.out_port = int(self._expect(lex.NUMBER).value)
            self._expect(lex.RBRACKET)
        return endpoint


def parse(text, filename="<config>"):
    """Parse configuration text into a :class:`Program`."""
    return Parser(text, filename).parse()
