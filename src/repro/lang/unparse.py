"""Unparsing: RouterGraph → Click-language text.

The optimizers "expect to be able to arbitrarily transform configuration
graphs and generate Click-language files corresponding exactly to the
results" (§5.2).  The unparser emits a canonical form: requirements,
compound definitions, declarations in graph order, then connections —
chained where a straight-line path allows it, which keeps optimizer
output human-readable.
"""

from __future__ import annotations


def _format_declaration(decl):
    config = "(%s)" % decl.config if decl.config not in (None, "") else ""
    return "%s :: %s%s;" % (decl.name, decl.class_name, config)


def _format_endpoint(conn_from, conn_to):
    """Format `a [p] -> [q] b`, omitting zero ports."""
    out_part = " [%d]" % conn_from[1] if conn_from[1] != 0 else ""
    in_part = "[%d] " % conn_to[1] if conn_to[1] != 0 else ""
    return "%s%s -> %s%s;" % (conn_from[0], out_part, in_part, conn_to[0])


def unparse(graph, include_archive_note=True):
    """Render ``graph`` as configuration text."""
    lines = []
    for requirement in graph.requirements:
        lines.append("require(%s);" % requirement)
    if graph.requirements:
        lines.append("")

    for compound in graph.element_classes.values():
        lines.append("elementclass %s {" % compound.name)
        if compound.params:
            lines.append("  %s |" % ", ".join(compound.params))
        body_text = unparse(compound.body, include_archive_note=False)
        for body_line in body_text.splitlines():
            if body_line.strip():
                lines.append("  " + body_line)
        lines.append("}")
        lines.append("")

    for decl in graph.elements.values():
        if decl.class_name.startswith("__compound_"):
            continue  # `input`/`output` pseudo elements are implicit
        lines.append(_format_declaration(decl))
    if graph.elements:
        lines.append("")

    # Chain straight-line connections for readability: follow runs where
    # each hop uses port 0 on both sides and the intermediate element has
    # exactly one incoming and one outgoing connection.
    emitted = set()
    by_source = {}
    for conn in graph.connections:
        by_source.setdefault((conn.from_element, conn.from_port), []).append(conn)

    def chainable_next(conn):
        nexts = by_source.get((conn.to_element, 0), [])
        if len(nexts) != 1 or conn.to_port != 0:
            return None
        candidate = nexts[0]
        if candidate in emitted:
            return None
        # The middle element must have a single incoming connection.
        incoming = [c for c in graph.connections if c.to_element == conn.to_element]
        outgoing = [c for c in graph.connections if c.from_element == conn.to_element]
        if len(incoming) != 1 or len(outgoing) != 1:
            return None
        return candidate

    # Identify chain heads: connections whose predecessor can't absorb
    # them.  A connection never absorbs itself (self-loops).
    chain_start = []
    absorbed = set()
    for conn in graph.connections:
        prevs = [c for c in graph.connections if c.to_element == conn.from_element]
        if len(prevs) == 1 and prevs[0] is not conn and chainable_next(prevs[0]) is conn:
            absorbed.add(conn)
    for conn in graph.connections:
        if conn not in absorbed:
            chain_start.append(conn)

    for head in chain_start:
        if head in emitted:
            continue
        parts = []
        out_part = " [%d]" % head.from_port if head.from_port else ""
        parts.append("%s%s" % (head.from_element, out_part))
        conn = head
        while True:
            emitted.add(conn)
            in_part = "[%d] " % conn.to_port if conn.to_port else ""
            parts.append("%s%s" % (in_part, conn.to_element))
            following = chainable_next(conn)
            if following is None:
                break
            conn = following
        lines.append(" -> ".join(parts) + ";")

    text = "\n".join(lines).rstrip() + "\n"
    return text


def unparse_file(graph):
    """Render ``graph`` including any archive members, in the multi-file
    archive format tools use to attach generated code (§5.2)."""
    from .archive import write_archive

    if not graph.archive:
        return unparse(graph)
    members = {"config": unparse(graph)}
    members.update(graph.archive)
    return write_archive(members)
