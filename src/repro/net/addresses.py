"""IP and Ethernet address value types.

Click configuration strings name addresses textually ("1.0.0.1",
"00:20:6F:14:54:C2"); elements and the simulator work with compact
integer/bytes forms.  These small immutable classes provide parsing,
formatting, and arithmetic used throughout the element library.
"""

from __future__ import annotations

import re
import struct

_IP_RE = re.compile(r"^(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})$")
_ETHER_RE = re.compile(r"^([0-9A-Fa-f]{1,2})(?::([0-9A-Fa-f]{1,2})){5}$")


class AddressError(ValueError):
    """Raised when an address string cannot be parsed."""


class IPAddress:
    """An IPv4 address, stored as a 32-bit unsigned integer.

    >>> IPAddress("1.0.0.1").value
    16777217
    >>> str(IPAddress(16777217))
    '1.0.0.1'
    """

    __slots__ = ("value",)

    def __init__(self, addr):
        if isinstance(addr, IPAddress):
            self.value = addr.value
        elif isinstance(addr, int):
            if not 0 <= addr <= 0xFFFFFFFF:
                raise AddressError("IP address out of range: %r" % addr)
            self.value = addr
        elif isinstance(addr, (bytes, bytearray)):
            if len(addr) != 4:
                raise AddressError("IP address needs 4 bytes, got %d" % len(addr))
            self.value = struct.unpack("!I", bytes(addr))[0]
        elif isinstance(addr, str):
            self.value = self._parse(addr)
        else:
            raise AddressError("cannot make IPAddress from %r" % (addr,))

    @staticmethod
    def _parse(text):
        match = _IP_RE.match(text.strip())
        if not match:
            raise AddressError("bad IP address %r" % text)
        octets = [int(g) for g in match.groups()]
        if any(o > 255 for o in octets):
            raise AddressError("bad IP address %r" % text)
        return (octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) | octets[3]

    def packed(self):
        """The address as 4 network-order bytes."""
        return struct.pack("!I", self.value)

    def matches_prefix(self, network, mask):
        """True if this address is inside ``network/mask``."""
        return (self.value & IPAddress(mask).value) == (
            IPAddress(network).value & IPAddress(mask).value
        )

    def is_broadcast(self):
        return self.value == 0xFFFFFFFF

    def is_multicast(self):
        return (self.value >> 28) == 0xE

    def __str__(self):
        v = self.value
        return "%d.%d.%d.%d" % ((v >> 24) & 0xFF, (v >> 16) & 0xFF, (v >> 8) & 0xFF, v & 0xFF)

    def __repr__(self):
        return "IPAddress(%r)" % str(self)

    def __eq__(self, other):
        if isinstance(other, (IPAddress, int, str, bytes)):
            try:
                return self.value == IPAddress(other).value
            except AddressError:
                return NotImplemented
        return NotImplemented

    def __hash__(self):
        return hash(("IPAddress", self.value))


def ip_mask_from_prefix_len(prefix_len):
    """Netmask integer for a CIDR prefix length (0..32)."""
    if not 0 <= prefix_len <= 32:
        raise AddressError("bad prefix length %r" % prefix_len)
    if prefix_len == 0:
        return 0
    return (0xFFFFFFFF << (32 - prefix_len)) & 0xFFFFFFFF


def parse_ip_prefix(text):
    """Parse ``"addr/len"`` or ``"addr/mask"`` into (IPAddress, mask_int).

    A bare address means a /32 host prefix.
    """
    text = text.strip()
    if "/" not in text:
        return IPAddress(text), 0xFFFFFFFF
    addr_part, mask_part = text.split("/", 1)
    addr = IPAddress(addr_part)
    mask_part = mask_part.strip()
    if _IP_RE.match(mask_part):
        return addr, IPAddress(mask_part).value
    try:
        return addr, ip_mask_from_prefix_len(int(mask_part))
    except ValueError as exc:
        raise AddressError("bad prefix %r" % text) from exc


class EtherAddress:
    """A 48-bit Ethernet MAC address.

    >>> str(EtherAddress("0:20:6f:14:54:c2"))
    '00:20:6F:14:54:C2'
    """

    __slots__ = ("value",)

    BROADCAST_VALUE = 0xFFFFFFFFFFFF

    def __init__(self, addr):
        if isinstance(addr, EtherAddress):
            self.value = addr.value
        elif isinstance(addr, int):
            if not 0 <= addr <= 0xFFFFFFFFFFFF:
                raise AddressError("Ethernet address out of range: %r" % addr)
            self.value = addr
        elif isinstance(addr, (bytes, bytearray)):
            if len(addr) != 6:
                raise AddressError("Ethernet address needs 6 bytes")
            self.value = int.from_bytes(bytes(addr), "big")
        elif isinstance(addr, str):
            self.value = self._parse(addr)
        else:
            raise AddressError("cannot make EtherAddress from %r" % (addr,))

    @staticmethod
    def _parse(text):
        parts = text.strip().split(":")
        if len(parts) != 6:
            raise AddressError("bad Ethernet address %r" % text)
        value = 0
        for part in parts:
            if not part or len(part) > 2:
                raise AddressError("bad Ethernet address %r" % text)
            try:
                byte = int(part, 16)
            except ValueError as exc:
                raise AddressError("bad Ethernet address %r" % text) from exc
            value = (value << 8) | byte
        return value

    @classmethod
    def broadcast(cls):
        return cls(cls.BROADCAST_VALUE)

    def packed(self):
        """The address as 6 network-order bytes."""
        return self.value.to_bytes(6, "big")

    def is_broadcast(self):
        return self.value == self.BROADCAST_VALUE

    def is_group(self):
        """True for multicast/broadcast (low bit of first octet set)."""
        return bool((self.value >> 40) & 0x01)

    def __str__(self):
        packed = self.packed()
        return ":".join("%02X" % b for b in packed)

    def __repr__(self):
        return "EtherAddress(%r)" % str(self)

    def __eq__(self, other):
        if isinstance(other, (EtherAddress, int, str, bytes)):
            try:
                return self.value == EtherAddress(other).value
            except AddressError:
                return NotImplemented
        return NotImplemented

    def __hash__(self):
        return hash(("EtherAddress", self.value))
