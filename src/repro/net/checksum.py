"""The Internet checksum (RFC 1071) and its incremental update (RFC 1624).

``CheckIPHeader`` verifies full header checksums; ``DecIPTTL`` uses the
incremental form, exactly as Click's C++ elements do — the incremental
update is one of the reasons DecIPTTL is cheap relative to a full
recompute.
"""

from __future__ import annotations


def ones_complement_sum(data, initial=0):
    """16-bit one's-complement sum over ``data`` (padded with a zero byte
    if of odd length), folded to 16 bits.

    Computed without a per-word Python loop: reading ``data`` as one
    big-endian integer makes the words base-65536 digits, and since
    2**16 ≡ 1 (mod 65535) their end-around-carry sum is the integer
    reduced mod 0xFFFF — with the one wrinkle that folding yields
    0xFFFF (not 0) whenever the sum is a positive multiple of 0xFFFF.
    """
    value = int.from_bytes(data, "big")
    if len(data) & 1:
        value <<= 8
    total = initial + value
    if total == 0:
        return 0
    folded = total % 0xFFFF
    return folded if folded else 0xFFFF


def internet_checksum(data):
    """The Internet checksum of ``data``: one's complement of the
    one's-complement sum."""
    return (~ones_complement_sum(data)) & 0xFFFF


def verify_checksum(data):
    """True if ``data`` (with its checksum field in place) sums to the
    all-ones pattern, i.e. the checksum is valid."""
    return ones_complement_sum(data) == 0xFFFF


def update_checksum_u16(old_checksum, old_word, new_word):
    """RFC 1624 incremental update: new checksum after a 16-bit field of
    the covered data changed from ``old_word`` to ``new_word``.

    Uses the HC' = ~(~HC + ~m + m') formulation, which is correct even in
    the corner cases that tripped up RFC 1141.
    """
    hc = (~old_checksum) & 0xFFFF
    total = hc + ((~old_word) & 0xFFFF) + (new_word & 0xFFFF)
    while total > 0xFFFF:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF
