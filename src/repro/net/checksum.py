"""The Internet checksum (RFC 1071) and its incremental update (RFC 1624).

``CheckIPHeader`` verifies full header checksums; ``DecIPTTL`` uses the
incremental form, exactly as Click's C++ elements do — the incremental
update is one of the reasons DecIPTTL is cheap relative to a full
recompute.
"""

from __future__ import annotations


def ones_complement_sum(data, initial=0):
    """16-bit one's-complement sum over ``data`` (padded with a zero byte
    if of odd length), folded to 16 bits."""
    total = initial
    length = len(data)
    # Sum 16-bit big-endian words.
    for i in range(0, length - 1, 2):
        total += (data[i] << 8) | data[i + 1]
    if length % 2:
        total += data[-1] << 8
    # Fold carries.
    while total > 0xFFFF:
        total = (total & 0xFFFF) + (total >> 16)
    return total


def internet_checksum(data):
    """The Internet checksum of ``data``: one's complement of the
    one's-complement sum."""
    return (~ones_complement_sum(data)) & 0xFFFF


def verify_checksum(data):
    """True if ``data`` (with its checksum field in place) sums to the
    all-ones pattern, i.e. the checksum is valid."""
    return ones_complement_sum(data) == 0xFFFF


def update_checksum_u16(old_checksum, old_word, new_word):
    """RFC 1624 incremental update: new checksum after a 16-bit field of
    the covered data changed from ``old_word`` to ``new_word``.

    Uses the HC' = ~(~HC + ~m + m') formulation, which is correct even in
    the corner cases that tripped up RFC 1141.
    """
    hc = (~old_checksum) & 0xFFFF
    total = hc + ((~old_word) & 0xFFFF) + (new_word & 0xFFFF)
    while total > 0xFFFF:
        total = (total & 0xFFFF) + (total >> 16)
    return (~total) & 0xFFFF
