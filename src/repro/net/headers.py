"""Ethernet / ARP / IPv4 / UDP / ICMP header construction and parsing.

The element library operates on raw packet bytes, as Click does; these
helpers build and decode the specific headers the IP-router configuration
and the evaluation workloads need.  All multi-byte fields are network
(big-endian) order.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from .addresses import EtherAddress, IPAddress
from .checksum import internet_checksum

ETHERTYPE_IP = 0x0800
ETHERTYPE_ARP = 0x0806

IP_PROTO_ICMP = 1
IP_PROTO_TCP = 6
IP_PROTO_UDP = 17

ETHER_HEADER_LEN = 14
IP_HEADER_LEN = 20  # without options
UDP_HEADER_LEN = 8

ARP_OP_REQUEST = 1
ARP_OP_REPLY = 2

ICMP_ECHO_REPLY = 0
ICMP_DEST_UNREACHABLE = 3
ICMP_ECHO = 8
ICMP_TIME_EXCEEDED = 11
ICMP_PARAMETER_PROBLEM = 12

ICMP_CODE_FRAGMENTATION_NEEDED = 4


class HeaderError(ValueError):
    """Raised when packet bytes cannot be decoded as the expected header."""


# ---------------------------------------------------------------------------
# Ethernet


@dataclass
class EtherHeader:
    dst: EtherAddress
    src: EtherAddress
    ether_type: int

    def pack(self):
        return self.dst.packed() + self.src.packed() + struct.pack("!H", self.ether_type)

    @classmethod
    def unpack(cls, data):
        if len(data) < ETHER_HEADER_LEN:
            raise HeaderError("short Ethernet header: %d bytes" % len(data))
        return cls(
            dst=EtherAddress(bytes(data[0:6])),
            src=EtherAddress(bytes(data[6:12])),
            ether_type=struct.unpack("!H", bytes(data[12:14]))[0],
        )


def make_ether_header(dst, src, ether_type):
    """Packed 14-byte Ethernet header."""
    return EtherHeader(EtherAddress(dst), EtherAddress(src), ether_type).pack()


# ---------------------------------------------------------------------------
# ARP (Ethernet/IPv4 only, which is all Click's ARPQuerier handles)


@dataclass
class ArpHeader:
    operation: int
    sender_ether: EtherAddress
    sender_ip: IPAddress
    target_ether: EtherAddress
    target_ip: IPAddress

    def pack(self):
        return (
            struct.pack("!HHBBH", 1, ETHERTYPE_IP, 6, 4, self.operation)
            + self.sender_ether.packed()
            + self.sender_ip.packed()
            + self.target_ether.packed()
            + self.target_ip.packed()
        )

    @classmethod
    def unpack(cls, data):
        if len(data) < 28:
            raise HeaderError("short ARP packet: %d bytes" % len(data))
        hrd, pro, hln, pln, op = struct.unpack("!HHBBH", bytes(data[0:8]))
        if hrd != 1 or pro != ETHERTYPE_IP or hln != 6 or pln != 4:
            raise HeaderError("not an Ethernet/IPv4 ARP packet")
        return cls(
            operation=op,
            sender_ether=EtherAddress(bytes(data[8:14])),
            sender_ip=IPAddress(bytes(data[14:18])),
            target_ether=EtherAddress(bytes(data[18:24])),
            target_ip=IPAddress(bytes(data[24:28])),
        )


# ---------------------------------------------------------------------------
# IPv4


@dataclass
class IPHeader:
    src: IPAddress
    dst: IPAddress
    protocol: int = IP_PROTO_UDP
    ttl: int = 64
    total_length: int = IP_HEADER_LEN
    identification: int = 0
    flags: int = 0
    fragment_offset: int = 0
    tos: int = 0
    header_length: int = IP_HEADER_LEN
    checksum: int = 0

    def __post_init__(self):
        self.src = IPAddress(self.src)
        self.dst = IPAddress(self.dst)

    @property
    def more_fragments(self):
        return bool(self.flags & 0x1)

    @property
    def dont_fragment(self):
        return bool(self.flags & 0x2)

    def pack(self, fill_checksum=True):
        ihl_words = self.header_length // 4
        header = bytearray(
            struct.pack(
                "!BBHHHBBH4s4s",
                (4 << 4) | ihl_words,
                self.tos,
                self.total_length,
                self.identification,
                (self.flags << 13) | self.fragment_offset,
                self.ttl,
                self.protocol,
                0,
                self.src.packed(),
                self.dst.packed(),
            )
        )
        if self.header_length > IP_HEADER_LEN:
            header += bytes(self.header_length - IP_HEADER_LEN)  # zero options
        if fill_checksum:
            csum = internet_checksum(header)
            header[10:12] = struct.pack("!H", csum)
        return bytes(header)

    @classmethod
    def unpack(cls, data):
        if len(data) < IP_HEADER_LEN:
            raise HeaderError("short IP header: %d bytes" % len(data))
        (version_ihl, tos, total_length, identification, flags_frag, ttl, protocol,
         checksum, src, dst) = struct.unpack("!BBHHHBBH4s4s", bytes(data[0:IP_HEADER_LEN]))
        version = version_ihl >> 4
        header_length = (version_ihl & 0xF) * 4
        if version != 4:
            raise HeaderError("IP version %d is not 4" % version)
        if header_length < IP_HEADER_LEN:
            raise HeaderError("bad IP header length %d" % header_length)
        return cls(
            src=IPAddress(src),
            dst=IPAddress(dst),
            protocol=protocol,
            ttl=ttl,
            total_length=total_length,
            identification=identification,
            flags=flags_frag >> 13,
            fragment_offset=flags_frag & 0x1FFF,
            tos=tos,
            header_length=header_length,
            checksum=checksum,
        )


# ---------------------------------------------------------------------------
# TCP

TCP_FIN = 0x01
TCP_SYN = 0x02
TCP_RST = 0x04
TCP_PSH = 0x08
TCP_ACK = 0x10
TCP_URG = 0x20


@dataclass
class TCPHeader:
    """A (no-options) TCP header; the evaluation workloads and the
    firewall tests only need the fixed 20 bytes."""

    src_port: int
    dst_port: int
    seq: int = 0
    ack: int = 0
    flags: int = 0
    window: int = 8192
    checksum: int = 0
    urgent: int = 0
    data_offset: int = 5  # 32-bit words

    def pack(self):
        return struct.pack(
            "!HHIIBBHHH",
            self.src_port,
            self.dst_port,
            self.seq,
            self.ack,
            self.data_offset << 4,
            self.flags,
            self.window,
            self.checksum,
            self.urgent,
        )

    @classmethod
    def unpack(cls, data):
        if len(data) < 20:
            raise HeaderError("short TCP header: %d bytes" % len(data))
        (src_port, dst_port, seq, ack, offset_byte, flags, window, checksum,
         urgent) = struct.unpack("!HHIIBBHHH", bytes(data[:20]))
        return cls(
            src_port=src_port,
            dst_port=dst_port,
            seq=seq,
            ack=ack,
            flags=flags,
            window=window,
            checksum=checksum,
            urgent=urgent,
            data_offset=offset_byte >> 4,
        )


def build_tcp_packet(src_ip, dst_ip, src_port=1234, dst_port=80, flags=TCP_SYN, ttl=64):
    """An IP datagram carrying a (payload-less) TCP segment."""
    ip = IPHeader(
        src=IPAddress(src_ip),
        dst=IPAddress(dst_ip),
        protocol=IP_PROTO_TCP,
        ttl=ttl,
        total_length=IP_HEADER_LEN + 20,
    )
    return ip.pack() + TCPHeader(src_port, dst_port, flags=flags).pack()


# ---------------------------------------------------------------------------
# UDP


@dataclass
class UDPHeader:
    src_port: int
    dst_port: int
    length: int = UDP_HEADER_LEN
    checksum: int = 0

    def pack(self):
        return struct.pack("!HHHH", self.src_port, self.dst_port, self.length, self.checksum)

    @classmethod
    def unpack(cls, data):
        if len(data) < UDP_HEADER_LEN:
            raise HeaderError("short UDP header: %d bytes" % len(data))
        src_port, dst_port, length, checksum = struct.unpack("!HHHH", bytes(data[0:8]))
        return cls(src_port, dst_port, length, checksum)


# ---------------------------------------------------------------------------
# ICMP (type/code/checksum + rest-of-header)


def make_icmp_error(icmp_type, icmp_code, original_ip_packet, rest=0):
    """Build an ICMP error message body: ICMP header plus the offending
    packet's IP header and first 8 payload bytes, per RFC 792."""
    quoted = bytes(original_ip_packet[: IP_HEADER_LEN + 8])
    body = bytearray(struct.pack("!BBHI", icmp_type, icmp_code, 0, rest) + quoted)
    body[2:4] = struct.pack("!H", internet_checksum(body))
    return bytes(body)


# ---------------------------------------------------------------------------
# Whole-packet builders used by workloads and tests


def build_udp_packet(
    src_ip,
    dst_ip,
    src_port=1234,
    dst_port=5678,
    payload=b"",
    ttl=64,
    identification=0,
):
    """An IP datagram (no Ethernet header) carrying a UDP payload."""
    udp_len = UDP_HEADER_LEN + len(payload)
    ip = IPHeader(
        src=IPAddress(src_ip),
        dst=IPAddress(dst_ip),
        protocol=IP_PROTO_UDP,
        ttl=ttl,
        total_length=IP_HEADER_LEN + udp_len,
        identification=identification,
    )
    udp = UDPHeader(src_port, dst_port, length=udp_len)
    return ip.pack() + udp.pack() + bytes(payload)


def build_ether_udp_packet(
    src_ether,
    dst_ether,
    src_ip,
    dst_ip,
    src_port=1234,
    dst_port=5678,
    payload=b"",
    ttl=64,
    identification=0,
):
    """A full Ethernet frame carrying UDP-in-IP, as the evaluation's
    source hosts generate.  A 64-byte frame (excluding CRC) results from a
    14-byte payload, matching §8.1."""
    return make_ether_header(dst_ether, src_ether, ETHERTYPE_IP) + build_udp_packet(
        src_ip, dst_ip, src_port, dst_port, payload, ttl, identification
    )


def build_arp_request(sender_ether, sender_ip, target_ip):
    """A broadcast ARP who-has frame."""
    header = make_ether_header(EtherAddress.broadcast(), sender_ether, ETHERTYPE_ARP)
    arp = ArpHeader(
        operation=ARP_OP_REQUEST,
        sender_ether=EtherAddress(sender_ether),
        sender_ip=IPAddress(sender_ip),
        target_ether=EtherAddress(0),
        target_ip=IPAddress(target_ip),
    )
    return header + arp.pack()


def build_arp_reply(sender_ether, sender_ip, target_ether, target_ip):
    """A unicast ARP is-at frame."""
    header = make_ether_header(EtherAddress(target_ether), EtherAddress(sender_ether), ETHERTYPE_ARP)
    arp = ArpHeader(
        operation=ARP_OP_REPLY,
        sender_ether=EtherAddress(sender_ether),
        sender_ip=IPAddress(sender_ip),
        target_ether=EtherAddress(target_ether),
        target_ip=IPAddress(target_ip),
    )
    return header + arp.pack()
