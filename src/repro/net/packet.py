"""The packet abstraction.

Click's ``Packet`` is a thin veneer over the Linux ``sk_buff``: a data
buffer with headroom/tailroom, a movable data pointer, and a set of
annotations (paint, destination-IP, network-header offset, timestamps)
that elements use to communicate out of band.  This class reproduces that
model, including the *alignment* of the data pointer, which the
``click-align`` tool reasons about and the ``Align`` element fixes.
"""

from __future__ import annotations

from .addresses import IPAddress

DEFAULT_HEADROOM = 28
"""Default headroom, chosen (as in Click) so that a 14-byte Ethernet
header leaves the IP header word-aligned when the buffer is word-aligned
plus two."""


class PacketError(RuntimeError):
    """Raised on misuse of the packet buffer (e.g. stripping past the end)."""


_DEST_IP_CACHE = {}
"""Interned IPAddress annotations, keyed by the raw value handed to
:meth:`Packet.set_dest_ip_anno` (bounded; see there)."""


class Packet:
    """A network packet: bytes plus annotations.

    ``data`` is the current packet contents (after any ``strip``/``push``
    adjustments).  ``buffer_alignment`` records the alignment of the
    *buffer start* modulo 4 — the data pointer's alignment is then
    ``(buffer_alignment + headroom) % 4``, which is what alignment-
    sensitive elements (``CheckIPHeader`` on non-x86) care about.
    """

    __slots__ = (
        "_buf",
        "_data_offset",
        "_data_cache",
        "buffer_alignment",
        "paint",
        "dest_ip_anno",
        "ip_header_offset",
        "device_anno",
        "timestamp",
        "fix_ip_src_anno",
        "user_annos",
    )

    def __init__(self, data=b"", headroom=DEFAULT_HEADROOM, buffer_alignment=0):
        buf = bytearray(headroom + len(data))
        buf[headroom:] = data
        self._buf = buf
        self._data_offset = headroom
        # The constructor argument IS the initial contents: seed the
        # cache with it and the first .data read costs nothing.
        self._data_cache = data if type(data) is bytes else None
        self.buffer_alignment = buffer_alignment % 4
        self.paint = 0
        self.dest_ip_anno = None
        self.ip_header_offset = None
        self.device_anno = None
        self.timestamp = None
        self.fix_ip_src_anno = False
        self.user_annos = {}

    # -- data access --------------------------------------------------------

    @property
    def data(self):
        """The packet contents as ``bytes`` (copy-free views are not worth
        the aliasing hazards at this scale).  The copy is cached until the
        next mutation — a forwarding path reads ``data`` many times per
        hop, so this turns O(hops) buffer copies into one per rewrite."""
        cached = self._data_cache
        if cached is None:
            cached = self._data_cache = bytes(self._buf[self._data_offset:])
        return cached

    def __len__(self):
        return len(self._buf) - self._data_offset

    def __bytes__(self):
        """``bytes(packet)`` is the packet contents — the same bytes
        ``data`` returns, through the same cache discipline."""
        return self.data

    @property
    def headroom(self):
        return self._data_offset

    def data_alignment(self):
        """(offset mod 4) of the data pointer, given the buffer alignment."""
        return (self.buffer_alignment + self._data_offset) % 4

    def strip(self, nbytes):
        """Remove ``nbytes`` from the front (e.g. ``Strip(14)`` removes the
        Ethernet header)."""
        if nbytes < 0 or nbytes > len(self):
            raise PacketError("cannot strip %d bytes from %d-byte packet" % (nbytes, len(self)))
        self._data_offset += nbytes
        self._data_cache = None

    def push(self, data):
        """Prepend ``data``, using headroom when available (cheap) and
        reallocating when not (expensive, like skb reallocation)."""
        if type(data) is not bytes:
            data = bytes(data)
        if len(data) <= self._data_offset:
            start = self._data_offset - len(data)
            self._buf[start:self._data_offset] = data
            self._data_offset = start
        else:
            # Reallocate with fresh headroom; buffer alignment resets.
            contents = data + self.data
            self._buf = bytearray(DEFAULT_HEADROOM) + bytearray(contents)
            self._data_offset = DEFAULT_HEADROOM
            self.buffer_alignment = 0
        self._data_cache = None

    def pull(self, nbytes):
        """Alias for :meth:`strip` (Click calls this ``pull``)."""
        self.strip(nbytes)

    def take(self, nbytes):
        """Remove ``nbytes`` from the tail."""
        if nbytes < 0 or nbytes > len(self):
            raise PacketError("cannot take %d bytes from %d-byte packet" % (nbytes, len(self)))
        del self._buf[len(self._buf) - nbytes:]
        self._data_cache = None

    def put(self, data):
        """Append ``data`` at the tail."""
        self._buf += bytes(data)
        self._data_cache = None

    def replace(self, offset, data):
        """Overwrite packet bytes at ``offset`` (relative to the data
        pointer) with ``data``."""
        if type(data) is not bytes:
            data = bytes(data)
        start = self._data_offset + offset
        end = start + len(data)
        if offset < 0 or end > len(self._buf):
            raise PacketError(
                "replace [%d:%d) outside %d-byte packet"
                % (offset, offset + len(data), len(self))
            )
        self._buf[start:end] = data
        self._data_cache = None

    def set_data(self, data):
        """Replace the whole contents, keeping annotations and headroom."""
        self._buf = self._buf[: self._data_offset] + bytearray(data)
        self._data_cache = None

    # -- annotations ---------------------------------------------------------

    def set_dest_ip_anno(self, addr):
        if addr is None:
            self.dest_ip_anno = None
        elif type(addr) is IPAddress:
            self.dest_ip_anno = addr
        else:
            # IPAddress is immutable, and forwarding traffic reuses few
            # destinations: intern instead of constructing per packet.
            try:
                cached = _DEST_IP_CACHE.get(addr)
            except TypeError:  # unhashable (e.g. bytearray)
                self.dest_ip_anno = IPAddress(addr)
                return
            if cached is None:
                cached = IPAddress(addr)
                if len(_DEST_IP_CACHE) < 65536:
                    _DEST_IP_CACHE[addr] = cached
            self.dest_ip_anno = cached

    def copy_annotations_from(self, other):
        self.paint = other.paint
        self.dest_ip_anno = other.dest_ip_anno
        self.ip_header_offset = other.ip_header_offset
        self.device_anno = other.device_anno
        self.timestamp = other.timestamp
        self.fix_ip_src_anno = other.fix_ip_src_anno
        self.user_annos = dict(other.user_annos)

    def clone(self):
        """A full copy (data and annotations), like Click's
        ``Packet::clone()`` + ``uniqueify()``."""
        dup = Packet.__new__(Packet)
        dup._buf = bytearray(self._buf)
        dup._data_offset = self._data_offset
        dup._data_cache = self._data_cache
        dup.buffer_alignment = self.buffer_alignment
        dup.copy_annotations_from(self)
        return dup

    def realign(self, modulus, offset):
        """Copy the data into a buffer whose data pointer satisfies
        ``data_alignment % modulus == offset`` (the ``Align`` element's
        job).  Returns self for chaining."""
        contents = self.data
        headroom = DEFAULT_HEADROOM
        # Choose a buffer alignment that yields the requested data alignment.
        self._buf = bytearray(headroom) + bytearray(contents)
        self._data_offset = headroom
        self._data_cache = None
        self.buffer_alignment = (offset - headroom) % modulus % 4
        return self

    def __repr__(self):
        return "Packet(%d bytes, paint=%r, dst=%s)" % (
            len(self),
            self.paint,
            self.dest_ip_anno,
        )


def make_packet(data, **annotations):
    """Convenience constructor used heavily in tests."""
    packet = Packet(data)
    for name, value in annotations.items():
        if name == "dest_ip_anno":
            packet.set_dest_ip_anno(value)
        elif hasattr(packet, name):
            setattr(packet, name, value)
        else:
            packet.user_annos[name] = value
    return packet
