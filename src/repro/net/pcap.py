"""Minimal pcap (libpcap classic format) reading and writing.

Backs the ``FromDump``/``ToDump`` elements, so configurations can
replay captured traffic and record what a router emits — the workflow
Click users rely on for offline testing.
"""

from __future__ import annotations

import struct

PCAP_MAGIC = 0xA1B2C3D4
PCAP_MAGIC_SWAPPED = 0xD4C3B2A1
LINKTYPE_ETHERNET = 1

_GLOBAL_HEADER = struct.Struct("<IHHiIII")
_RECORD_HEADER = struct.Struct("<IIII")


class PcapError(ValueError):
    """Raised for malformed pcap data."""


def write_pcap(packets, snaplen=65535, linktype=LINKTYPE_ETHERNET):
    """Serialize ``packets`` — (timestamp_seconds, bytes) pairs or bare
    bytes — into a pcap byte string."""
    chunks = [
        _GLOBAL_HEADER.pack(PCAP_MAGIC, 2, 4, 0, 0, snaplen, linktype)
    ]
    fake_clock = 0.0
    for item in packets:
        if isinstance(item, tuple):
            timestamp, data = item
        else:
            timestamp, data = fake_clock, item
            fake_clock += 1e-6
        data = bytes(data)
        seconds = int(timestamp)
        micros = int(round((timestamp - seconds) * 1e6))
        captured = data[:snaplen]
        chunks.append(_RECORD_HEADER.pack(seconds, micros, len(captured), len(data)))
        chunks.append(captured)
    return b"".join(chunks)


def read_pcap(blob):
    """Parse pcap bytes into [(timestamp, bytes), ...]."""
    if len(blob) < _GLOBAL_HEADER.size:
        raise PcapError("truncated pcap header")
    magic = struct.unpack_from("<I", blob, 0)[0]
    if magic == PCAP_MAGIC:
        endian = "<"
    elif magic == PCAP_MAGIC_SWAPPED:
        endian = ">"
    else:
        raise PcapError("bad pcap magic 0x%08x" % magic)
    header = struct.Struct(endian + "IHHiIII")
    record = struct.Struct(endian + "IIII")
    _, major, minor, _, _, snaplen, linktype = header.unpack_from(blob, 0)
    if (major, minor) != (2, 4):
        raise PcapError("unsupported pcap version %d.%d" % (major, minor))
    packets = []
    cursor = header.size
    while cursor < len(blob):
        if cursor + record.size > len(blob):
            raise PcapError("truncated record header")
        seconds, micros, captured_length, _ = record.unpack_from(blob, cursor)
        cursor += record.size
        if cursor + captured_length > len(blob):
            raise PcapError("truncated record body")
        packets.append((seconds + micros / 1e6, blob[cursor:cursor + captured_length]))
        cursor += captured_length
    return packets
