"""Runtime acceleration: compile a wired router into a fast path.

The paper's optimizers rewrite *configurations*; this package applies
the same whole-configuration knowledge to the *runtime* — walking the
instantiated graph once and generating specialized dispatch code, the
move Morpheus and the NetKAT compiler make at runtime scale.
"""

from .adaptive import AdaptiveConfig, AdaptiveEngine, ProfileReport
from .codegen_cache import CodegenCache, default_cache
from .fastpath import ChainPolicy, FastPath, FastPathError, FastPathReport
from .fdd import DiagramPlan, FDDEngine, build_diagram
from .flowhash import DEFAULT_SEED, FlowHasher, flow_key, rendezvous_shard, shard_of
from .profile import ExecutionProfile
from .recovery import (
    QuarantineRecord,
    RecoveryConfig,
    RecoveryError,
    RecoveryManager,
    RecoveryReport,
)
from .shard import ShardedRouter, ShardReport, SPSCQueue
from .supervisor import ResilienceReport, Supervisor, SupervisorConfig, SupervisorError

__all__ = [
    "AdaptiveConfig",
    "AdaptiveEngine",
    "build_diagram",
    "ChainPolicy",
    "CodegenCache",
    "default_cache",
    "DEFAULT_SEED",
    "DiagramPlan",
    "ExecutionProfile",
    "FDDEngine",
    "FastPath",
    "FastPathError",
    "FastPathReport",
    "FlowHasher",
    "flow_key",
    "ProfileReport",
    "QuarantineRecord",
    "RecoveryConfig",
    "RecoveryError",
    "RecoveryManager",
    "RecoveryReport",
    "rendezvous_shard",
    "ResilienceReport",
    "shard_of",
    "ShardedRouter",
    "ShardReport",
    "SPSCQueue",
    "Supervisor",
    "SupervisorConfig",
    "SupervisorError",
]
