"""Profile-guided adaptive recompilation: the tiered fast path.

The static fast path (:mod:`repro.runtime.fastpath`) compiles the
configuration once, before any packet flows, emitting branch arms in
port order and speculating nothing.  Morpheus's observation — and this
module's job — is that the *traffic* decides which code should be fast:
with runtime profiles, classifier and route dispatch can put the
hottest arm on the fall-through path, single-entry route and ARP
results can be inlined as guarded constants, and cold specializations
can be pruned.

Three tiers:

- **tier 0** — the reference interpreter (always available through
  ``router.set_mode("reference")``): the semantic oracle.
- **tier 1** — the statically compiled chains, entered through a cheap
  *sampling dispatcher*: 1 packet in ``sample`` runs the profiled
  flavor of the same chain (identical code plus per-classifier
  ``note(out)`` and per-route ``note(dst)`` hooks).  The other
  ``sample - 1`` packets pay one counter increment and one extra call
  frame — and once a chain is promoted or settled the dispatcher is
  removed entirely, so steady-state overhead is zero.
- **tier 2** — after ``threshold`` packets on a chain, the engine
  builds one profile-guided :class:`FastPath` for the router (shared
  by every promoted chain) and swaps each hot entry port's ``push``
  slot to the recompiled function.

Every speculation is guarded and every guard fails *safe*: the cold
side of each guard is the full generic code, so a wrong guess costs
time, never correctness.  Guard misses increment engine-owned counters;
sustained pressure (``guard_miss_limit`` misses on one site) means the
traffic changed shape, and the engine *deoptimizes* the chains that
reach the offending element back to tier 1, resets the profile, and
lets them climb again against fresh counters.

The recompile itself is usually free: tier-2 code is content-addressed
in the codegen cache by (graph fingerprint, profile-decision digest),
so a router re-learning a previously seen traffic shape replays the
cached module instead of paying ``compile``/``exec``
(:mod:`repro.runtime.codegen_cache`).
"""

from __future__ import annotations

import hashlib

from .codegen_cache import default_cache
from .fastpath import ChainPolicy, FastOutputPort, FastPath

__all__ = [
    "AdaptiveConfig",
    "AdaptiveEngine",
    "Decisions",
    "OptimizedPolicy",
    "ProfileReport",
    "ProfileStore",
    "ProfilingPolicy",
    "TUNABLES",
    "build_decisions",
]

#: Parameter-space declarations for the autotuner (:mod:`repro.tune`).
#: Plain data — name, domain, default — so the tuner can build its
#: ``Param`` objects without this module importing back into it.  The
#: dotted names match the keys ``ExecutionProfile.with_tuning`` consumes.
TUNABLES = (
    {"name": "adaptive.threshold", "kind": "log_int", "low": 64, "high": 8192, "default": 512},
    {"name": "adaptive.sample", "kind": "choice", "choices": [4, 8, 16, 32, 64, 128], "default": 16},
    {"name": "adaptive.min_samples", "kind": "log_int", "low": 8, "high": 256, "default": 32},
    {"name": "adaptive.guard_miss_limit", "kind": "log_int", "low": 256, "high": 65536, "default": 8192},
    {"name": "adaptive.hot_fraction", "kind": "choice", "choices": [0.5, 0.6, 0.75, 0.9], "default": 0.5},
    {"name": "adaptive.max_recompiles", "kind": "int", "low": 4, "high": 64, "default": 16},
)


class AdaptiveConfig:
    """Tuning knobs for the tiered engine.

    ``sample`` must be a power of two (the dispatcher uses a mask);
    ``threshold`` is the per-chain packet count that triggers
    promotion; ``min_samples`` is the least profile weight a decision
    may rest on; ``hot_fraction`` is how dominant an arm must be before
    it is guarded; ``guard_miss_limit`` misses on one guard site
    deoptimize; ``max_recompiles`` bounds tier-2 rebuilds per engine.
    """

    __slots__ = (
        "threshold",
        "sample",
        "guard_miss_limit",
        "min_samples",
        "hot_fraction",
        "prune_cold",
        "max_recompiles",
    )

    def __init__(
        self,
        threshold=512,
        sample=16,
        guard_miss_limit=8192,
        min_samples=32,
        hot_fraction=0.5,
        prune_cold=True,
        max_recompiles=16,
    ):
        if sample < 1 or (sample & (sample - 1)):
            raise ValueError("sample must be a power of two, not %r" % (sample,))
        if threshold < 1:
            raise ValueError("threshold must be positive")
        if min_samples < 1:
            raise ValueError("min_samples must be positive, not %r" % (min_samples,))
        if guard_miss_limit < 1:
            raise ValueError(
                "guard_miss_limit must be positive, not %r" % (guard_miss_limit,)
            )
        if max_recompiles < 1:
            raise ValueError(
                "max_recompiles must be positive, not %r" % (max_recompiles,)
            )
        self.threshold = threshold
        self.sample = sample
        self.guard_miss_limit = guard_miss_limit
        self.min_samples = min_samples
        self.hot_fraction = hot_fraction
        self.prune_cold = prune_cold
        self.max_recompiles = max_recompiles

    def as_dict(self):
        return {name: getattr(self, name) for name in self.__slots__}


class ProfileStore:
    """Per-router hit counters, filled by the profiled tier-1 chains.

    ``classifier[name]`` maps matcher output -> packets; ``route[name]``
    maps raw destination value -> packets.  The note closures mutate
    the inner dicts in place, and :meth:`reset` clears them in place
    too — the profiled chains keep their bound references across
    deoptimization, so a reset must not replace the dicts.
    """

    def __init__(self):
        self.classifier = {}
        self.route = {}
        # First data sample seen per (classifier, output): the guard
        # builder walks the decision tree along this exemplar's actual
        # path, so the speculated conditions describe the traffic that
        # was profiled — not just any leaf with the same output.
        self.classifier_exemplar = {}

    def classifier_note(self, name):
        counts = self.classifier.setdefault(name, {})
        exemplars = self.classifier_exemplar.setdefault(name, {})

        def note(out, data, _c=counts, _e=exemplars):
            _c[out] = _c.get(out, 0) + 1
            if out not in _e:
                _e[out] = bytes(data)

        return note

    def route_note(self, name):
        counts = self.route.setdefault(name, {})

        def note(raw, _c=counts):
            _c[raw] = _c.get(raw, 0) + 1

        return note

    def reset(self):
        for counts in self.classifier.values():
            counts.clear()
        for counts in self.route.values():
            counts.clear()
        for exemplars in self.classifier_exemplar.values():
            exemplars.clear()

    def snapshot(self):
        return {
            "classifier": {name: dict(c) for name, c in self.classifier.items()},
            "route": {name: dict(c) for name, c in self.route.items()},
        }


class ProfilingPolicy(ChainPolicy):
    """Tier 1's instrumented flavor: identical emission to the static
    policy plus note hooks at every classifier and route dispatch."""

    profiling = True
    tag = "profiling"

    def __init__(self, store):
        self.store = store

    def cache_key(self):
        return ("profiling",)

    def classifier_note(self, element):
        return ("cls", element.name)

    def route_note(self, element):
        return ("route", element.name)

    def resolve(self, token, router):
        kind, name = token
        if kind == "cls":
            return self.store.classifier_note(name)
        if kind == "route":
            return self.store.route_note(name)
        raise KeyError(token)


# -- profile -> emission decisions ----------------------------------------------


def _slice_or_masked(offset, mask, value, equal):
    """Render one tree test as the cheapest guard condition: a bytes
    slice compare when the mask covers whole contiguous bytes, else a
    masked-word compare."""
    mask_bytes = mask.to_bytes(4, "big")
    set_bytes = [i for i in range(4) if mask_bytes[i]]
    if set_bytes and all(mask_bytes[i] == 0xFF for i in set_bytes):
        first, last = set_bytes[0], set_bytes[-1]
        if set_bytes == list(range(first, last + 1)):
            value_bytes = value.to_bytes(4, "big")[first : last + 1]
            return ("slice", offset + first, offset + last + 1, value_bytes, equal)
    return ("masked", offset, 4, mask, value, equal)


def _guard_conds(tree, hot_out, exemplar=None):
    """Guard conditions whose conjunction implies ``tree`` classifies to
    ``hot_out``, with implied negative tests eliminated — or None.

    With an ``exemplar`` (a data sample from the profiled hot flow) the
    path is the one the exemplar actually takes — several leaves can
    share an output, and guarding the wrong one means the hot traffic
    never hits the guard.  Without one, fall back to the shortest
    root-to-leaf path ending in the hot output.

    A ``("len", n)`` condition covering every tested word is prepended:
    the tree's interpreted traversal zero-pads short data, so the guard
    must only claim a match when the slices it compares are exact.  A
    packet short enough to have matched via padding simply misses the
    guard and takes the compiled matcher, which pads identically.
    """
    from collections import deque

    from ..classifier.tree import is_leaf, leaf_output

    if tree is None or not tree.exprs:
        return None
    found = None
    if exemplar is not None:
        path = []
        target = 1
        for _ in range(len(tree.exprs) + 1):
            expr = tree.exprs[target - 1]
            taken = expr.test(exemplar)
            path.append((expr.offset, expr.mask, expr.value, taken))
            target = expr.yes if taken else expr.no
            if is_leaf(target):
                if leaf_output(target) == hot_out:
                    found = tuple(path)
                break
    if found is None:
        queue = deque([(1, ())])
        seen = {1}
        while queue and found is None:
            pos, path = queue.popleft()
            expr = tree.exprs[pos - 1]
            for taken, target in ((True, expr.yes), (False, expr.no)):
                step = (expr.offset, expr.mask, expr.value, taken)
                if is_leaf(target):
                    if leaf_output(target) == hot_out:
                        found = path + (step,)
                        break
                elif target not in seen:
                    seen.add(target)
                    queue.append((target, path + (step,)))
    if found is None:
        return None
    # Implied-test elimination: a positive (mask m, value v) at the same
    # offset settles any negative (m2, v2) with m2 ⊆ m and (v & m2) != v2.
    positives = [s for s in found if s[3]]
    kept = []
    for step in found:
        offset, mask, value, taken = step
        if not taken:
            implied = any(
                p[0] == offset and (mask & p[1]) == mask and (p[2] & mask) != value
                for p in positives
            )
            if implied:
                continue
        if step not in kept:
            kept.append(step)
    conds = [("len", max(s[0] for s in kept) + 4)] if kept else []
    for offset, mask, value, taken in sorted(kept, key=lambda s: (s[0], not s[3])):
        conds.append(_slice_or_masked(offset, mask, value, taken))
    return tuple(conds) if conds else None


def _classifier_decision(element, counts, config, exemplars=None):
    total = sum(counts.values())
    if total < config.min_samples:
        return None
    nports = len(element._output_ports)
    port_counts = {i: counts.get(i, 0) for i in range(nports)}
    order = sorted(range(nports), key=lambda i: (-port_counts[i], i))
    hot_out = order[0]
    guard = None
    if port_counts[hot_out] >= config.hot_fraction * total:
        conds = _guard_conds(
            getattr(element, "tree", None),
            hot_out,
            (exemplars or {}).get(hot_out),
        )
        if conds:
            guard = (conds, hot_out)
    prune = set()
    if config.prune_cold:
        prune = frozenset(i for i in range(nports) if port_counts[i] == 0)
    if order == list(range(nports)) and guard is None and not prune:
        return None
    return {"order": tuple(order), "guard": guard, "prune": prune, "total": total}


def _route_decision(element, counts, config):
    total = sum(counts.values())
    if total < config.min_samples:
        return None
    nports = len(element._output_ports)
    top = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:64]
    port_counts = {}
    routes = {}
    for raw, count in top:
        result = element.lookup_route(raw)
        if result is None:
            continue
        routes[raw] = result
        port_counts[result[1]] = port_counts.get(result[1], 0) + count
    order = sorted(range(nports), key=lambda i: (-port_counts.get(i, 0), i))
    constant = None
    hot_raw, hot_count = top[0]
    if hot_count >= config.hot_fraction * total and hot_raw in routes:
        gateway, port = routes[hot_raw]
        if 0 <= port < nports:
            constant = (
                hot_raw,
                gateway.value if gateway is not None else None,
                port,
            )
    prune = set()
    if config.prune_cold:
        prune = frozenset(i for i in range(nports) if not port_counts.get(i, 0))
    if order == list(range(nports)) and constant is None and not prune:
        return None
    return {"order": tuple(order), "constant": constant, "prune": prune, "total": total}


def _arp_downstream(element, port_index):
    """The ARPQuerier a route arm feeds (following output 0 through the
    linear run after the route table), or None."""
    from ..elements.arp import ARPQuerier

    ports = element._output_ports
    if not 0 <= port_index < len(ports):
        return None
    current = ports[port_index].target
    for _ in range(16):
        if current is None:
            return None
        if isinstance(current, ARPQuerier):
            return current
        if not current._output_ports:
            return None
        current = current._output_ports[0].target
    return None


def _arp_entry(element, raw):
    """The ``(raw, header, epoch)`` constant for speculating ``raw``
    through ``element``, from its live table — or None when the next
    hop is unresolved.  Reads only; the lazy header fill stays the
    generic path's business."""
    from ..net.headers import ETHERTYPE_IP, make_ether_header

    header = element._headers.get(raw)
    if header is None:
        ether = element.table.get(raw)
        if ether is None:
            return None
        header = make_ether_header(ether, element.my_ether, ETHERTYPE_IP)
    return (raw, bytes(header), element._arp_epoch)


class Decisions:
    """One profile bucket: everything the optimized policy bakes in."""

    __slots__ = ("classifier", "route", "arp", "check_ip_hot", "digest")

    def __init__(self, classifier, route, arp, check_ip_hot):
        self.classifier = classifier
        self.route = route
        self.arp = arp
        self.check_ip_hot = check_ip_hot
        canonical = (
            sorted(
                (name, d["order"], d["guard"], tuple(sorted(d["prune"])))
                for name, d in classifier.items()
            ),
            sorted(
                (name, d["order"], d["constant"], tuple(sorted(d["prune"])))
                for name, d in route.items()
            ),
            sorted(arp.items()),
            check_ip_hot,
        )
        self.digest = hashlib.sha256(repr(canonical).encode("utf-8")).hexdigest()[:16]

    def empty(self):
        return not (self.classifier or self.route or self.arp)

    def as_dict(self):
        return {
            "digest": self.digest,
            "classifier": {
                name: {
                    "order": list(d["order"]),
                    "guard_out": d["guard"][1] if d["guard"] else None,
                    "pruned": sorted(d["prune"]),
                    "total": d["total"],
                }
                for name, d in self.classifier.items()
            },
            "route": {
                name: {
                    "order": list(d["order"]),
                    "constant": list(d["constant"]) if d["constant"] else None,
                    "pruned": sorted(d["prune"]),
                    "total": d["total"],
                }
                for name, d in self.route.items()
            },
            "arp": {
                name: {"raw": entry[0], "epoch": entry[2]}
                for name, entry in self.arp.items()
            },
            "check_ip_hot": self.check_ip_hot,
        }


def build_decisions(router, store, config):
    """Turn the profile store's counters into a :class:`Decisions`
    bucket against the router's *live* state (route tables, ARP caches
    — read at decision time, guarded in the generated code)."""
    classifier = {}
    for name, counts in store.classifier.items():
        element = router.elements.get(name)
        if element is None or not counts:
            continue
        decision = _classifier_decision(
            element, counts, config, store.classifier_exemplar.get(name)
        )
        if decision is not None:
            classifier[name] = decision
    route = {}
    busiest = (0, None)
    for name, counts in store.route.items():
        element = router.elements.get(name)
        if element is None or not counts:
            continue
        decision = _route_decision(element, counts, config)
        if decision is not None:
            route[name] = decision
            if decision["constant"] is not None and decision["total"] > busiest[0]:
                busiest = (decision["total"], decision["constant"][0])
    arp = {}
    for name, decision in route.items():
        constant = decision["constant"]
        if constant is None:
            continue
        raw, gateway_value, port = constant
        querier = _arp_downstream(router.elements[name], port)
        if querier is None:
            continue
        entry = _arp_entry(querier, gateway_value if gateway_value is not None else raw)
        if entry is not None:
            arp[querier.name] = entry
    return Decisions(classifier, route, arp, busiest[1])


class OptimizedPolicy(ChainPolicy):
    """Tier 2's emission policy: hottest arms first, cold arms pruned,
    hot route/ARP results speculated behind engine-owned guards."""

    profiling = False
    tag = "optimized"

    def __init__(self, decisions, engine=None):
        self.decisions = decisions
        self.engine = engine

    def cache_key(self):
        return ("optimized", self.decisions.digest)

    def _decision_for(self, element):
        return self.decisions.classifier.get(element.name) or self.decisions.route.get(
            element.name
        )

    def branch_order(self, element, nports):
        decision = self._decision_for(element)
        if decision is None:
            return range(nports)
        order = [i for i in decision["order"] if 0 <= i < nports]
        order.extend(i for i in range(nports) if i not in order)
        return order

    def should_fuse(self, element, port_index):
        decision = self._decision_for(element)
        return decision is None or port_index not in decision["prune"]

    def classifier_guard(self, element):
        decision = self.decisions.classifier.get(element.name)
        return decision["guard"] if decision else None

    def route_constant(self, element):
        decision = self.decisions.route.get(element.name)
        return decision["constant"] if decision else None

    def arp_constant(self, element):
        return self.decisions.arp.get(element.name)

    def check_ip_hot(self, element):
        return self.decisions.check_ip_hot

    def guard_counter(self, element, site):
        if self.engine is None:
            return None
        return ("guard", element.name, site)

    def resolve(self, token, router):
        if token[0] == "guard":
            if self.engine is None:
                raise KeyError(token)
            return self.engine.guard_counter_for(token)
        raise KeyError(token)


class _GuardCounter:
    """An engine-owned miss counter emitted on the cold side of one
    speculation site.  Hitting the limit reports sustained pressure —
    the traffic no longer matches the profile the code was built for."""

    __slots__ = ("engine", "element", "site", "limit", "count")

    def __init__(self, engine, element, site, limit):
        self.engine = engine
        self.element = element
        self.site = site
        self.limit = limit
        self.count = 0

    def __call__(self):
        count = self.count + 1
        self.count = count
        if count >= self.limit:
            self.count = 0
            self.engine._on_guard_pressure(self)


class _ChainState:
    """Per-entry-chain tier state.  ``tier`` is 1 while the sampling
    dispatcher runs, 2 once promoted, 0 once settled back to the plain
    static chain (nothing worth speculating)."""

    __slots__ = (
        "key",
        "port",
        "plain",
        "prof",
        "plain_batch",
        "prof_batch",
        "seen",
        "bursts",
        "tier",
    )

    def __init__(self, key, port):
        self.key = key
        self.port = port
        self.plain = None
        self.prof = None
        self.plain_batch = None
        self.prof_batch = None
        self.seen = 0
        self.bursts = 0
        self.tier = 1


class ProfileReport:
    """Observability snapshot: per-chain tiers and counters, recompile
    and deopt history, and the codegen cache's hit rate."""

    def __init__(self, engine):
        self.mode = engine.mode_label
        self.metered = engine.metered
        self.config = engine.config.as_dict()
        self.chains = {
            "%s %s[%d]" % key: {"tier": state.tier, "seen": state.seen}
            for key, state in sorted(engine.states.items())
        }
        self.counters = engine.store.snapshot() if engine.store else {}
        self.recompiles = engine.recompiles
        self.deopts = list(engine.deopts)
        self.guard_misses = {
            "%s/%s" % (c.element, c.site): c.count for c in engine._guard_counters
        }
        self.decisions = (
            engine.tier2_fp.policy.decisions.as_dict()
            if engine.tier2_fp is not None
            else None
        )
        self.tier2_report = (
            engine.tier2_fp.report.as_dict() if engine.tier2_fp is not None else None
        )
        self.cache = default_cache().stats()

    def as_dict(self):
        return {
            "mode": self.mode,
            "metered": self.metered,
            "config": self.config,
            "chains": self.chains,
            "counters": {
                "classifier": self.counters.get("classifier", {}),
                "route": {
                    name: {"%d.%d.%d.%d" % tuple((raw >> s) & 0xFF for s in (24, 16, 8, 0)): n
                           for raw, n in counts.items()}
                    for name, counts in self.counters.get("route", {}).items()
                },
            },
            "recompiles": self.recompiles,
            "deopts": self.deopts,
            "guard_misses": self.guard_misses,
            "decisions": self.decisions,
            "tier2": self.tier2_report,
            "codegen_cache": self.cache,
        }

    def to_json(self):
        import json

        return json.dumps(self.as_dict(), indent=2, sort_keys=True, default=str)

    def format(self):
        tiers = {}
        for info in self.chains.values():
            tiers[info["tier"]] = tiers.get(info["tier"], 0) + 1
        lines = [
            "adaptive: %d chains (%d promoted to tier 2, %d profiling, %d settled)"
            % (
                len(self.chains),
                tiers.get(2, 0),
                tiers.get(1, 0),
                tiers.get(0, 0),
            ),
            "  recompiles: %d, deopts: %d%s"
            % (
                self.recompiles,
                len(self.deopts),
                " (%s)" % "; ".join(self.deopts) if self.deopts else "",
            ),
            "  codegen cache: %(entries)d entries, %(hits)d hits, %(misses)d misses"
            % self.cache,
        ]
        if self.decisions:
            lines.append("  profile bucket: %s" % self.decisions["digest"])
        for key, info in self.chains.items():
            lines.append("  %-40s tier %d after %d packets" % (key, info["tier"], info["seen"]))
        return "\n".join(lines)


class AdaptiveEngine:
    """The tiered execution engine over one router.

    Construction compiles tier 1 twice (plain + profiled flavor, both
    through the codegen cache); :meth:`install` installs the plain fast
    path and wraps every compiled push entry in a sampling dispatcher.
    Metered routers degrade gracefully: the meter needs every charge at
    its reference site, so the engine runs the metered static fast path
    and never instruments or promotes.
    """

    #: What this engine calls itself in reports and the supervisor's
    #: tier ladder; :class:`repro.runtime.fdd.FDDEngine` overrides both.
    mode_label = "adaptive"
    tier_label = "adaptive"

    def __init__(self, router, config=None, batch=False):
        self.router = router
        self.config = config if config is not None else AdaptiveConfig()
        self.batch = bool(batch)
        self.metered = router.meter is not None
        self.store = ProfileStore()
        self.tier1 = FastPath(
            router, batch=self.batch, policy=self._tier1_policy(), cache=default_cache()
        )
        self.profiled = None
        if not self.metered:
            self.profiled = FastPath(
                router,
                batch=self.batch,
                policy=self._profiling_policy(),
                cache=default_cache(),
            )
        self.tier2_fp = None
        self.states = {}
        self.recompiles = 0
        self.deopts = []
        self._guard_counters = []
        self._decisions_cache = None
        self._reach_cache = {}
        self.installed = False

    # -- policy factories (the FDD engine's override points) ---------------

    def _tier1_policy(self):
        """The plain tier-1 emission policy (None = the static one)."""
        return None

    def _profiling_policy(self):
        """The instrumented tier-1 flavor's policy."""
        return ProfilingPolicy(self.store)

    def _optimized_policy(self, decisions):
        """The tier-2 policy for one decisions bucket."""
        return OptimizedPolicy(decisions, self)

    # -- installation ------------------------------------------------------

    def install(self):
        if self.installed:
            return
        self.tier1.install()
        self.installed = True
        if self.metered:
            return
        for name, element in self.router.elements.items():
            for port_index, port in enumerate(element._output_ports):
                if not isinstance(port, FastOutputPort):
                    continue
                key = ("push", name, port_index)
                prof = self.profiled.function_for(key)
                if prof is None:
                    continue
                state = _ChainState(key, port)
                state.plain = port.push
                state.prof = prof
                if self.batch and port.push_batch is not None:
                    state.plain_batch = port.push_batch
                    state.prof_batch = self.profiled.function_for(key, batch=True)
                self.states[key] = state
                self._arm(state)

    def uninstall(self):
        if not self.installed:
            return
        # tier1 saved the reference ports; restoring them discards every
        # dispatcher/promotion slot mutation along with the fast ports.
        self.tier1.uninstall()
        self.installed = False

    # -- tier transitions --------------------------------------------------

    def _arm(self, state):
        """(Re)install the tier-1 sampling dispatcher on a chain."""
        state.tier = 1
        mask = self.config.sample - 1
        threshold = self.config.threshold
        consider = self._consider

        def push(packet, _s=state):
            n = _s.seen + 1
            _s.seen = n
            if n & mask:
                _s.plain(packet)
            else:
                _s.prof(packet)
            if n >= threshold:
                consider(_s)

        state.port.push = push
        if state.plain_batch is not None:

            def push_batch(packets, _s=state):
                b = _s.bursts + 1
                _s.bursts = b
                _s.seen += len(packets)
                if b & mask:
                    _s.plain_batch(packets)
                else:
                    _s.prof_batch(packets)
                if _s.seen >= threshold:
                    consider(_s)

            state.port.push_batch = push_batch

    def _consider(self, state):
        if state.tier == 1:
            self._promote(state)

    def _promote(self, state):
        """Move one matured chain to tier 2 — or settle it on the plain
        static chain when the profile offers nothing to speculate."""
        tier2 = self._ensure_tier2()
        if tier2 is None and self._decisions_cache is None:
            # The profile is still too thin to decide anything (the
            # sampling rate can make a chain cross its packet threshold
            # well before min_samples profiled events accumulate).
            # Keep the chain sampling and revisit a threshold from now.
            state.seen = 0
            return
        fn = tier2.function_for(state.key) if tier2 is not None else None
        if fn is None:
            state.tier = 0
            state.port.push = state.plain
            if state.plain_batch is not None:
                state.port.push_batch = state.plain_batch
            return
        state.tier = 2
        state.port.push = fn
        if state.plain_batch is not None:
            state.port.push_batch = tier2.function_for(state.key, batch=True)

    def _profile_weight(self):
        """The fattest single profile site — the maturity test for
        declaring a workload unspeculatable.  Per-site, not summed:
        every decision builder thresholds its own site's total, so only
        a site that crossed min_samples and still yielded nothing is
        evidence the traffic has no exploitable skew."""
        best = 0
        for counts in self.store.classifier.values():
            best = max(best, sum(counts.values()))
        for counts in self.store.route.values():
            best = max(best, sum(counts.values()))
        return best

    def _ensure_tier2(self):
        if self.tier2_fp is not None:
            return self.tier2_fp
        if self.recompiles >= self.config.max_recompiles:
            return None
        if self._decisions_cache is None:
            decisions = build_decisions(self.router, self.store, self.config)
            if decisions.empty() and self._profile_weight() < self.config.min_samples:
                # Not a verdict yet — too few profiled events to tell a
                # skewed workload from an unprofiled one.  Leave the
                # cache unset so the next promotion attempt rebuilds
                # from a fatter profile.
                return None
            self._decisions_cache = decisions
        decisions = self._decisions_cache
        if decisions.empty():
            return None
        self.tier2_fp = FastPath(
            self.router,
            batch=self.batch,
            policy=self._optimized_policy(decisions),
            cache=default_cache(),
        )
        self.recompiles += 1
        return self.tier2_fp

    def on_idle(self):
        """Housekeeping between bursts: promote chains whose profiles
        matured without crossing the in-band threshold."""
        if self.metered:
            return
        minimum = self.config.min_samples
        for state in self.states.values():
            if state.tier == 1 and state.seen >= minimum:
                self._promote(state)

    # -- deoptimization ----------------------------------------------------

    def guard_counter_for(self, token):
        counter = _GuardCounter(
            self, token[1], token[2], self.config.guard_miss_limit
        )
        self._guard_counters.append(counter)
        return counter

    def _on_guard_pressure(self, counter):
        self.deopt(
            "guard pressure at %s/%s" % (counter.element, counter.site),
            element_name=counter.element,
        )

    def _reaches(self, entry_name, element_name):
        """Can the push chain entered at ``entry_name`` reach
        ``element_name``?  (BFS over the live wiring, memoized.)"""
        reach = self._reach_cache.get(entry_name)
        if reach is None:
            reach = {entry_name}
            queue = [self.router.elements[entry_name]]
            while queue:
                element = queue.pop()
                for port in element._output_ports:
                    target = port.target
                    if target is not None and target.name not in reach:
                        reach.add(target.name)
                        queue.append(target)
            self._reach_cache[entry_name] = reach
        return element_name in reach

    def deopt(self, reason, element_name=None):
        """Send chains back to tier 1 and reprofile.  With
        ``element_name`` only the chains that can reach the offending
        element demote (their guards are the ones missing); without it
        (a forced deopt) every chain demotes."""
        if self.metered or not self.installed:
            return
        self.deopts.append(reason)
        self.store.reset()
        self._decisions_cache = None
        self.tier2_fp = None
        self._guard_counters = [
            c for c in self._guard_counters if c.element != element_name
        ]
        for state in self.states.values():
            if element_name is not None and not self._reaches(
                state.key[1], element_name
            ):
                continue
            state.seen = 0
            state.bursts = 0
            self._arm(state)

    def on_table_patch(self, name, kind):
        """A control-plane in-place table patch landed on element
        ``name`` (``kind`` is ``"routes"`` or ``"rules"``).  The base
        engine's compiled code reads live tables through bound cells
        and memo dicts, so correctness needs only a deopt of the chains
        whose *speculations* may now be stale.  The FDD engine
        overrides this to also rebuild the affected diagrams."""
        self.deopt("control-plane patch of %s" % name, element_name=name)

    # -- observability -----------------------------------------------------

    def profile_report(self):
        return ProfileReport(self)
