"""A content-addressed cache for compiled fast-path modules.

``FastPath._compile`` pays ``compile``/``exec`` per router build even
when the configuration is identical — the common case in benchmarks,
test suites, and hot-swap, where the same graph is instantiated over
and over.  This module caches the *generated artifact* (source + code
object + the replay recipes for every bound runtime object) keyed by

    (graph fingerprint, element-class identity, batch flag, policy key)

so a repeat build skips generation and compilation entirely: the entry
re-binds each ``_bN`` slot against the fresh router from its recipe and
re-executes the already-compiled code object in a fresh namespace.

Recipes (recorded by :meth:`FastPath._bind`) are small tuples:

``("elem", name)``
    the element itself
``("attr", name, (a, b, ...))``
    a ``getattr`` chain off the element (bound methods, deques, sets)
``("value", v)``
    an immutable literal carried in the recipe
``("const", key)``
    a module-level singleton (the route-miss sentinel, the dest-IP
    intern cache probe)
``("matcher", name)``
    the compiled classifier match function for the element's tree
    (generated fast-classifier classes, whose tree is class-baked)
``("cell", name)``
    the element's one-slot matcher cell (``matcher_cell()``) — bound
    for live-patchable classifiers so a control-plane rule update swaps
    the function under cached code
``("ip", raw)``
    the interned :class:`IPAddress` for a raw destination value
``("table", index)``
    the ``index``-th terminal jump table, refilled after exec
``("policy", token)``
    ``policy.resolve(token, router)`` — profiling counters and guard
    callbacks, resolved against the *new* policy instance so cached
    profiled code gets fresh counters

A compile that binds anything without a recipe marks itself
uncacheable and is simply never stored.  Metered compiles bypass the
cache at the :class:`FastPath` level, and a router carrying
fault-injection wrappers (``router._fault_uncacheable``, see
:mod:`repro.sim.faults`) bypasses keying entirely — a clean specialized
entry must never replay onto a faulted router, nor a faulted compile be
stored for clean ones.

Corruption is survivable by design: a replay that raises for any reason
makes :class:`~repro.runtime.fastpath.FastPath` evict the entry and
fall back to a fresh compile (``corrupt`` counts them).  The same
contract covers the optional disk layer: :meth:`CodegenCache.save`
writes entries (source + recipes, *not* code objects) under
process-stable keys — element classes identified by qualified name
instead of ``id()`` — and :meth:`CodegenCache.load` validates each
record individually, skipping truncated or mangled ones instead of
raising.
"""

from __future__ import annotations

import pickle
import threading
from collections import OrderedDict

__all__ = ["CacheEntry", "CodegenCache", "default_cache"]

_DISK_MAGIC = "repro-codegen-cache-v2"
_ENTRY_FIELDS = (
    "source",
    "names",
    "specs",
    "chains",
    "jump_specs",
    "report_fields",
    "inlined_elements",
    "chain_lines",
    "chain_sources",
    "chain_binds",
    "chain_tables",
    "next_index",
    "bind_counter",
)


def _resolve_spec(spec, fastpath, tables):
    from .fastpath import _MISS, _classifier_matcher, _intern_dest_ip

    router = fastpath.router
    kind = spec[0]
    if kind == "elem":
        return router.elements[spec[1]]
    if kind == "attr":
        value = router.elements[spec[1]]
        for attr in spec[2]:
            value = getattr(value, attr)
        return value
    if kind == "value":
        return spec[1]
    if kind == "const":
        if spec[1] == "MISS":
            return _MISS
        if spec[1] == "DEST_IP_GET":
            from ..net.packet import _DEST_IP_CACHE

            return _DEST_IP_CACHE.get
        raise KeyError("unknown const recipe %r" % (spec[1],))
    if kind == "matcher":
        return _classifier_matcher(router.elements[spec[1]])
    if kind == "cell":
        return router.elements[spec[1]].matcher_cell()
    if kind == "ip":
        return _intern_dest_ip(spec[1])
    if kind == "table":
        return tables[spec[1]][0]
    if kind == "policy":
        return fastpath.policy.resolve(spec[1], router)
    raise KeyError("unknown bind recipe %r" % (spec,))


_REPORT_FIELDS = (
    "push_chains",
    "pull_chains",
    "inlined_calls",
    "longest_chain",
    "branch_elements",
    "branch_ports",
    "specialized_terminals",
    "specialized_actions",
    "elided_elements",
    "source_lines",
    "guarded_branches",
    "pruned_arms",
    "fdd_diagrams",
    "fdd_nodes",
    "fdd_paths",
    "fdd_tests_saved",
)


class CacheEntry:
    """One cached compile: everything needed to rebuild a live
    :class:`FastPath` against a fresh router without regenerating or
    recompiling source."""

    __slots__ = (
        "source",
        "code",
        "names",
        "specs",
        "chains",
        "jump_specs",
        "report_fields",
        "inlined_elements",
        "chain_lines",
        "chain_sources",
        "chain_binds",
        "chain_tables",
        "next_index",
        "bind_counter",
    )

    @classmethod
    def from_fastpath(cls, fastpath):
        entry = cls()
        entry.source = fastpath.source
        entry.code = fastpath._code
        entry.names = dict(fastpath._names)
        entry.specs = dict(fastpath._bind_specs)
        entry.chains = dict(fastpath.chains)
        entry.jump_specs = [
            (element.name, mode) for (_table, element, mode) in fastpath._jump_tables
        ]
        report = fastpath.report
        entry.report_fields = {name: getattr(report, name) for name in _REPORT_FIELDS}
        entry.inlined_elements = set(report.inlined_elements)
        entry.chain_lines = dict(report.chain_lines)
        # The per-chain compile units, so a replayed fast path can serve
        # as a scoped hot-swap's reuse donor just like a fresh compile.
        entry.chain_sources = dict(fastpath._chain_sources)
        entry.chain_binds = dict(fastpath._chain_binds)
        entry.chain_tables = dict(fastpath._chain_tables)
        entry.next_index = fastpath._next_index
        entry.bind_counter = fastpath._bind_counter
        return entry

    def replay(self, fastpath):
        """Rebuild ``fastpath`` from this entry: resolve every bind
        recipe against its router, exec the cached code object, refill
        the jump tables, and restore the compile report."""
        router = fastpath.router
        tables = [
            ([], router.elements[name], mode) for (name, mode) in self.jump_specs
        ]
        fastpath._jump_tables = tables
        namespace = fastpath._namespace
        for name, spec in self.specs.items():
            namespace[name] = _resolve_spec(spec, fastpath, tables)
        exec(self.code, namespace)  # noqa: S102 - cached generated code
        fastpath.source = self.source
        fastpath._code = self.code
        fastpath._names = dict(self.names)
        fastpath._bind_specs = dict(self.specs)
        fastpath.chains = dict(self.chains)
        for key, (fn, batch_fn) in self.names.items():
            fastpath._compiled[key] = (
                namespace[fn],
                namespace[batch_fn] if batch_fn else None,
            )
        for table, element, mode in tables:
            for port_index, port in enumerate(element._output_ports):
                compiled = self.names.get(("push", element.name, port_index))
                if compiled is not None:
                    table.append(namespace[compiled[0]])
                elif mode == "checked":
                    table.append(None)
                else:
                    table.append(port.push)
        fastpath._chain_sources = dict(self.chain_sources)
        fastpath._chain_binds = dict(self.chain_binds)
        fastpath._chain_tables = dict(self.chain_tables)
        fastpath._next_index = self.next_index
        fastpath._bind_counter = self.bind_counter
        report = fastpath.report
        for name, value in self.report_fields.items():
            setattr(report, name, value)
        report.inlined_elements = set(self.inlined_elements)
        report.chain_lines = dict(self.chain_lines)


def _stable_class_sig(router):
    """The process-stable twin of the ``id(type)`` class signature:
    element classes identified by qualified name.  Safe as a disk key
    because the graph fingerprint already covers the archive sources
    that *define* generated classes — two routers agreeing on both can
    only disagree on class identity within one process (which the
    in-memory id-based key still distinguishes)."""
    return tuple(
        (name, "%s.%s" % (type(element).__module__, type(element).__qualname__))
        for name, element in router.elements.items()
    )


class CodegenCache:
    """An LRU of :class:`CacheEntry` keyed by configuration content,
    with an optional validated disk layer behind it."""

    def __init__(self, capacity=64):
        self.capacity = capacity
        self._entries = OrderedDict()
        self._disk = {}  # stable key -> CacheEntry (loaded, pre-validated)
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        self.corrupt = 0
        self.invalidations = 0
        # The default cache is process-wide and the sharded data plane's
        # thread backend compiles (and adaptive engines recompile) on
        # worker threads: every structural operation serializes here.
        self._lock = threading.RLock()

    def key_for(self, router, batch, policy):
        """The cache key for compiling ``router`` under ``policy``, or
        None when the build is not addressable (no graph attached, a
        policy that declines caching, or a fault-wrapped router).
        Element-class identities are part of the key: the same
        configuration text instantiated with different class overlays
        generates different specializations."""
        graph = getattr(router, "graph", None)
        if graph is None:
            return None
        if getattr(router, "_fault_uncacheable", False):
            return None
        policy_key = policy.cache_key()
        if policy_key is None:
            return None
        class_sig = tuple(
            (name, id(type(element))) for name, element in router.elements.items()
        )
        return (
            graph.fingerprint(),
            class_sig,
            bool(batch),
            policy_key,
            _stable_class_sig(router),
        )

    @staticmethod
    def _disk_key(key):
        fingerprint, _class_sig, batch, policy_key, stable_sig = key
        return (fingerprint, stable_sig, batch, policy_key)

    def lookup(self, key):
        if key is None:
            return None
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return entry
            if self._disk:
                entry = self._disk.pop(self._disk_key(key), None)
                if entry is not None:
                    # Promote (moving, so an eviction counts it once): later
                    # lookups go through the ordinary in-memory path.
                    self._entries[key] = entry
                    self._entries.move_to_end(key)
                    self.hits += 1
                    self.disk_hits += 1
                    return entry
            self.misses += 1
            return None

    def store(self, key, fastpath):
        if key is None or fastpath._code is None:
            return
        with self._lock:
            self._entries[key] = CacheEntry.from_fastpath(fastpath)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def evict(self, key):
        """Drop one corrupt entry (after a failed replay): the bad
        artifact must not be offered again, in memory or from disk."""
        if key is None:
            return
        with self._lock:
            if self._entries.pop(key, None) is not None:
                self.corrupt += 1
            if self._disk.pop(self._disk_key(key), None) is not None:
                self.corrupt += 1

    def invalidate(self):
        """Drop every entry but keep the hit/miss/corruption history
        (unlike :meth:`clear`) — the fault injector's cache fault."""
        with self._lock:
            self._entries.clear()
            self._disk.clear()
            self.invalidations += 1

    def corrupt_entries(self):
        """Deterministically mangle every cached entry's bind recipes
        (the fault injector's ``cache_corrupt`` fault): the next replay
        raises, exercising the evict-and-recompile fallback."""
        with self._lock:
            corrupted = 0
            for entry in list(self._entries.values()) + list(self._disk.values()):
                entry.specs = {
                    name: ("injected-corruption",) for name in entry.specs
                }
                corrupted += 1
            return corrupted

    def clear(self):
        with self._lock:
            self._entries.clear()
            self._disk.clear()
            self.hits = 0
            self.misses = 0
            self.disk_hits = 0
            self.corrupt = 0
            self.invalidations = 0

    def __len__(self):
        return len(self._entries)

    def stats(self):
        # Sorted keys: these land verbatim in serialized reports, and a
        # stable order keeps FDD cache-key diffs comparable across runs.
        return {
            "corrupt": self.corrupt,
            "disk_entries": len(self._disk),
            "disk_hits": self.disk_hits,
            "entries": len(self._entries),
            "hits": self.hits,
            "invalidations": self.invalidations,
            "misses": self.misses,
        }

    # -- disk layer --------------------------------------------------------

    def save(self, path):
        """Persist every in-memory entry under its process-stable key.
        Code objects are not written — :meth:`load` recompiles from
        source, which is what lets it validate entries one by one."""
        with self._lock:
            records = []
            for key, entry in self._entries.items():
                record = {"key": self._disk_key(key)}
                for field in _ENTRY_FIELDS:
                    record[field] = getattr(entry, field)
                records.append(record)
        with open(path, "wb") as handle:
            pickle.dump({"magic": _DISK_MAGIC, "records": records}, handle)
        return len(records)

    def load(self, path):
        """Load a cache file, validating each record independently: a
        truncated file, a wrong-format file, or any individually
        mangled record is counted in ``corrupt`` and skipped — never
        raised.  Returns the number of entries loaded."""
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except Exception:  # noqa: BLE001 - any unreadable file is "corrupt"
            self.corrupt += 1
            return 0
        if not isinstance(payload, dict) or payload.get("magic") != _DISK_MAGIC:
            self.corrupt += 1
            return 0
        loaded = 0
        with self._lock:
            for record in payload.get("records", ()):
                entry = self._validate_record(record)
                if entry is None:
                    self.corrupt += 1
                    continue
                self._disk[record["key"]] = entry
                loaded += 1
        return loaded

    @staticmethod
    def _validate_record(record):
        """A CacheEntry from one disk record, or None if the record is
        structurally bad or its source no longer compiles."""
        if not isinstance(record, dict):
            return None
        if any(field not in record for field in _ENTRY_FIELDS) or "key" not in record:
            return None
        if not isinstance(record["source"], str) or not isinstance(record["key"], tuple):
            return None
        try:
            code = compile(record["source"], "<codegen-cache>", "exec")
        except (SyntaxError, ValueError):
            return None
        entry = CacheEntry()
        entry.code = code
        for field in _ENTRY_FIELDS:
            setattr(entry, field, record[field])
        return entry


_DEFAULT = CodegenCache()


def default_cache():
    """The process-wide cache :meth:`Router.compile_fastpath` uses."""
    return _DEFAULT
