"""The runtime fast path: precompiled push/pull chain dispatch.

The reference interpreter pays modular indirection on every hop: each
transfer crosses ``OutputPort.push`` → ``Element.receive_push`` →
``Element.push`` → ``simple_action``, five Python calls and several
attribute lookups per element.  The paper's whole argument is that a
compiler holding the *entire* configuration can collapse that
indirection into straight-line code (§6.1's devirtualization); this
module is the same move applied to the Python runtime itself.

:class:`FastPath` walks a wired :class:`~repro.elements.runtime.Router`
once, resolves every push and pull edge to a bound method, and emits
per-source *chains*: generated Python functions (``compile``/``exec``,
the mechanism :func:`~repro.elements.runtime.compile_archive_classes`
already uses for archive code) that

- inline linear runs of one-in/one-out elements as a sequence of bound
  ``simple_action`` calls (or a declared :attr:`Element.fast_action`
  equivalent) with early drop exits, and
- replace every branching element's :class:`OutputPort` with a
  :class:`FastOutputPort` whose ``push`` slot *is* the compiled chain
  for that edge — the list of fast ports is a precomputed jump table,
  so ``self.output(i).push(p)`` dispatches straight into generated code
  with no port logic, no meter test, and no ``receive_push`` hop.

With ``batch=True`` the device elements hand whole bursts to
``push_batch``/``pull_batch`` entry points whose generated bodies loop
internally, amortizing the per-packet call overhead (Click's polling
burst, applied to dispatch).

Cycle accounting still works in fast mode: when the router carries a
meter at compile time, chains are generated in a *metered* flavor that
counts how far each packet gets and reconciles the aggregate charge
once per batch through ``meter.on_chain`` (see
:meth:`repro.sim.cpu.CycleMeter.on_chain`).  For unbatched fast mode
the charge sequence is identical to the reference interpreter's, so
the meter's totals match exactly; batching changes branch-predictor
behavior exactly the way real batching does.

Debugging: the full generated module is ``router.fastpath.source``
(or ``FastPath.dump(fh)``); each chain is annotated with the edge it
compiles.
"""

from __future__ import annotations

import time

from ..elements.element import Element

__all__ = [
    "ChainPolicy",
    "FastPath",
    "FastPathError",
    "FastPathReport",
    "FastOutputPort",
    "FastInputPort",
]


class FastPathError(RuntimeError):
    """Raised when a router cannot be compiled into a fast path."""


class ChainPolicy:
    """The emitter's decision hooks: branch order, fusion pruning, and
    profile-guided specialization.

    The base class is the *static* policy — the PR 2 fast path exactly:
    branches emit in port order, every fusable arm fuses, and nothing is
    speculated.  :mod:`repro.runtime.adaptive` subclasses it twice: a
    profiling policy that asks for counter hooks, and an optimized
    policy that reorders branches by observed hit counts and inlines
    single-entry route/ARP results behind guards.

    Policies hand the emitter *tokens* for any runtime object they want
    bound into generated code (counters, guard callbacks); the emitter
    binds ``policy.resolve(token, router)`` under a ``("policy", token)``
    recipe, so cached code replays against a fresh policy instance.
    """

    profiling = False
    tag = "static"
    #: True lets the emitter thread established facts (contents local,
    #: minimum length, paint color, raw IP destination) across element
    #: boundaries on *every* chain, not just guarded hot arms.  Off by
    #: default so the static/profiled/optimized policies keep emitting
    #: byte-identical source (and cache entries) to PR 2/3.
    fuse_facts = False

    def cache_key(self):
        """Hashable component of the codegen-cache key.  Two policies
        with equal keys must emit identical source for the same graph."""
        return ("static",)

    def reuse_key(self):
        """Hashable key gating donor-chain reuse in scoped hot-swaps.
        Defaults to :meth:`cache_key`.  Policies that fold live *table
        contents* into their cache key (the FDD policies hash every
        classifier tree) override this to drop the content digest: the
        dirty-set closure already forces chains touching changed
        content to recompile, so untouched chains may splice across a
        content change."""
        return self.cache_key()

    def branch_order(self, element, nports):
        """The order branch arms are emitted in (hottest first pays in
        the if/elif dispatch chain)."""
        return range(nports)

    def should_fuse(self, element, port_index):
        """False prunes this branch arm from dispatch fusion — it stays
        reachable through the jump table, the generated code shrinks."""
        return True

    def classifier_guard(self, element):
        """``(conds, hot_out)`` to guard-test the hottest leaf before
        running the matcher, or None.  ``conds`` are rendering tuples:
        ``("len", n)``, ``("slice", start, end, bytes, equal)``, or
        ``("masked", offset, width, mask, value, equal)`` — their
        conjunction must *imply* the matcher returns ``hot_out``."""
        return None

    def classifier_diagram(self, element):
        """A prebuilt :class:`repro.runtime.fdd.DiagramPlan` to emit in
        place of this classifier's matcher call + if/elif dispatch, or
        None for the generic emission.  The plan inlines the element's
        whole decision tree as nested byte tests (each field loaded at
        most once per root-to-leaf path), so every arm — not just a
        guarded hot one — dispatches without calling the matcher."""
        return None

    def route_constant(self, element):
        """``(raw_dst, gateway_value_or_None, out_port)`` to speculate
        the hottest destination through an identity guard, or None."""
        return None

    def arp_constant(self, element):
        """``(raw_dst, header_bytes, epoch)`` to inline a resolved ARP
        encapsulation behind an epoch guard, or None."""
        return None

    def check_ip_hot(self, element):
        """The hottest raw destination value, to skip the intern-cache
        probe in the CheckIPHeader segment, or None."""
        return None

    def classifier_note(self, element):
        """Token for a per-packet ``note(out)`` profiling hook, or None."""
        return None

    def route_note(self, element):
        """Token for a per-packet ``note(raw_dst)`` hook, or None."""
        return None

    def guard_counter(self, element, site):
        """Token for a zero-argument guard-miss callback emitted on the
        cold side of a speculation, or None."""
        return None

    def resolve(self, token, router):
        """The live object behind a token this policy issued."""
        raise KeyError(token)


_MISS = object()
"""Sentinel distinguishing a route-memo miss from a memoized no-route."""


class FastOutputPort:
    """A push port whose ``push`` slot is a compiled chain function.

    Keeps the reference :class:`~repro.elements.element.OutputPort`
    surface (``element``, ``port``, ``target``, ``target_port``,
    ``virtual``) so graph-walking code and handlers see no difference.
    ``push_batch`` is the batched entry point, or None outside batch
    mode.
    """

    __slots__ = ("element", "port", "target", "target_port", "virtual", "push", "push_batch")

    def __init__(self, original, push, push_batch=None):
        self.element = original.element
        self.port = original.port
        self.target = original.target
        self.target_port = original.target_port
        self.virtual = original.virtual
        self.push = push
        self.push_batch = push_batch


class FastInputPort:
    """A pull port whose ``pull`` slot is a compiled chain function."""

    __slots__ = ("element", "port", "source", "source_port", "virtual", "pull", "pull_batch")

    def __init__(self, original, pull, pull_batch=None):
        self.element = original.element
        self.port = original.port
        self.source = original.source
        self.source_port = original.source_port
        self.virtual = original.virtual
        self.pull = pull
        self.pull_batch = pull_batch


class ChainStage:
    """One hop of a compiled chain, as the cost meter sees it: the
    transfer into ``to_element`` plus that element's handler entry.
    Mirrors what :meth:`CycleMeter.on_transfer` and
    :meth:`CycleMeter.on_element_work` would have charged."""

    __slots__ = ("from_element", "to_element", "site", "target_name", "virtual", "uses_simple_action")

    def __init__(self, from_element, to_element, site, target_name, virtual, uses_simple_action):
        self.from_element = from_element
        self.to_element = to_element
        self.site = site
        self.target_name = target_name
        self.virtual = virtual
        self.uses_simple_action = uses_simple_action

    def __repr__(self):
        return "ChainStage(%s -> %s via %r)" % (
            self.from_element.name,
            self.to_element.name,
            self.site,
        )


class ChainInfo:
    """What one chain compiles: its source edge, the elements inlined
    into straight-line code, and the terminal dispatch."""

    __slots__ = (
        "kind",
        "element",
        "port",
        "inlined",
        "terminal",
        "terminal_port",
        "function_name",
        "lines",
    )

    def __init__(self, kind, element, port, inlined, terminal, terminal_port, function_name,
                 lines=0):
        self.kind = kind
        self.element = element
        self.port = port
        self.inlined = inlined
        self.terminal = terminal
        self.terminal_port = terminal_port
        self.function_name = function_name
        self.lines = lines

    def describe(self):
        hops = [name for name in self.inlined] + ["%s.%s(%d)" % (self.terminal, self.kind, self.terminal_port)]
        return "%s %s [%d] -> %s" % (self.kind, self.element, self.port, " -> ".join(hops))


class FastPathReport:
    """The compile report: what the fast path did to the configuration."""

    def __init__(self):
        self.push_chains = 0
        self.pull_chains = 0
        self.inlined_calls = 0
        self.inlined_elements = set()
        self.longest_chain = 0
        self.branch_elements = 0
        self.branch_ports = 0
        self.specialized_terminals = 0
        self.specialized_actions = 0
        self.elided_elements = 0
        self.batch = False
        self.metered = False
        self.source_lines = 0
        self.policy = "static"
        self.cache_hit = False
        self.compile_seconds = 0.0
        self.chain_lines = {}  # "push name[port]" chain label -> generated lines
        self.guarded_branches = 0
        self.pruned_arms = 0
        self.reused_chains = 0  # chains spliced verbatim from a donor compile
        self.fdd_diagrams = 0  # classifier terminals emitted as decision diagrams
        self.fdd_nodes = 0  # expanded diagram nodes across those diagrams
        self.fdd_paths = 0  # root-to-leaf paths across those diagrams
        self.fdd_tests_saved = 0  # field loads the diagrams share along their paths

    def as_dict(self):
        return {
            "push_chains": self.push_chains,
            "pull_chains": self.pull_chains,
            "inlined_calls": self.inlined_calls,
            "inlined_elements": sorted(self.inlined_elements),
            "longest_chain": self.longest_chain,
            "branch_elements": self.branch_elements,
            "branch_ports": self.branch_ports,
            "specialized_terminals": self.specialized_terminals,
            "specialized_actions": self.specialized_actions,
            "elided_elements": self.elided_elements,
            "batch": self.batch,
            "metered": self.metered,
            "source_lines": self.source_lines,
            "policy": self.policy,
            "cache_hit": self.cache_hit,
            "compile_seconds": round(self.compile_seconds, 6),
            "chain_lines": dict(sorted(self.chain_lines.items())),
            "guarded_branches": self.guarded_branches,
            "pruned_arms": self.pruned_arms,
            "reused_chains": self.reused_chains,
            "fdd_diagrams": self.fdd_diagrams,
            "fdd_nodes": self.fdd_nodes,
            "fdd_paths": self.fdd_paths,
            "fdd_tests_saved": self.fdd_tests_saved,
        }

    def to_json(self):
        import json

        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def format(self):
        """Human-readable summary (what ``click-optimize --fast`` prints)."""
        lines = [
            "fast path: %d push chains, %d pull chains (%d generated lines%s%s)"
            % (
                self.push_chains,
                self.pull_chains,
                self.source_lines,
                ", batched" if self.batch else "",
                ", metered" if self.metered else "",
            ),
            "  inlined: %d element handlers across %d elements (longest chain: %d)"
            % (self.inlined_calls, len(self.inlined_elements), self.longest_chain),
            "  branches: %d elements dispatch %d ports through the jump table"
            % (self.branch_elements, self.branch_ports),
            "  specialized: %d terminals and %d actions compiled in place, "
            "%d redundant elements elided"
            % (self.specialized_terminals, self.specialized_actions, self.elided_elements),
            "  compile: %.1f ms%s%s (policy: %s%s)"
            % (
                self.compile_seconds * 1e3,
                ", codegen-cache hit" if self.cache_hit else "",
                ", %d chains reused" % self.reused_chains if self.reused_chains else "",
                self.policy,
                ", %d guarded branches, %d pruned arms"
                % (self.guarded_branches, self.pruned_arms)
                if self.guarded_branches or self.pruned_arms
                else "",
            ),
        ]
        if self.fdd_diagrams:
            lines.append(
                "  diagrams: %d classifiers compiled to decision diagrams "
                "(%d nodes, %d paths, %d shared loads)"
                % (self.fdd_diagrams, self.fdd_nodes, self.fdd_paths, self.fdd_tests_saved)
            )
        if self.chain_lines:
            largest = sorted(
                self.chain_lines.items(), key=lambda item: -item[1]
            )[:4]
            lines.append(
                "  code size: %s"
                % ", ".join("%s=%d lines" % pair for pair in largest)
            )
        return "\n".join(lines)


def inline_action_name(cls):
    """The per-packet handler the fast path may inline for ``cls``, or
    None when the element must be dispatched through its own ``push`` /
    ``pull``.

    A class qualifies when it leaves the default ``Element.push`` and
    ``Element.pull`` in place (the ``simple_action`` sugar) or when it
    declares :attr:`Element.fast_action` — the name of a method
    ``f(packet) -> packet | None`` that its push/pull handlers wrap in
    exactly the simple_action pattern (side outputs, e.g. error ports,
    are pushed from inside the method and so keep working inlined).
    """
    name = getattr(cls, "fast_action", None)
    if name:
        return name
    if cls.push is Element.push and cls.pull is Element.pull:
        return "simple_action"
    return None


def _uses_shared_dispatch(element):
    """Mirror of :func:`repro.sim.cpu.uses_simple_action` without the
    sim dependency: does this element ride the shared simple_action
    call site the BTB model penalizes?"""
    cls = type(element)
    return cls.push is Element.push and cls.pull is Element.pull


def _classifier_matcher(element):
    """The raw compiled match function for a classifier terminal — the
    archive class's prebuilt one, or the decision tree compiled with the
    classifier optimizer's own generator (memoized by tree signature)."""
    from ..elements.classifiers import FastClassifierBase

    if isinstance(element, FastClassifierBase):
        matcher = element.compiled
    else:
        from ..classifier.compile import compiled_function_for

        return compiled_function_for(element.tree)
    # Bind the raw generated function, not the CompiledClassifier
    # wrapper — __call__ would add a frame per packet.
    return getattr(matcher, "_function", matcher)


def _intern_dest_ip(raw):
    """The interned IPAddress for a raw value — the same object
    :meth:`Packet.set_dest_ip_anno` hands out, which is what makes the
    route guard's identity test hit for speculated flows."""
    from ..net.addresses import IPAddress
    from ..net.packet import _DEST_IP_CACHE

    cached = _DEST_IP_CACHE.get(raw)
    if cached is None:
        cached = IPAddress(raw)
        if len(_DEST_IP_CACHE) < 65536:
            _DEST_IP_CACHE[raw] = cached
    return cached


def _method_spec(bound):
    """A replayable recipe for a bound element method, or None when the
    callable cannot be re-resolved by name against a fresh router."""
    owner = getattr(bound, "__self__", None)
    fn = getattr(bound, "__func__", None)
    name = getattr(owner, "name", None)
    if fn is None or name is None:
        return None
    if getattr(owner, "router", None) is None:
        return None
    return ("attr", name, (fn.__name__,))


def _render_guard(conds, data_var):
    """Render classifier-guard condition tuples (see
    :meth:`ChainPolicy.classifier_guard`) into one boolean expression
    over the local holding the packet contents."""
    parts = []
    for cond in conds:
        kind = cond[0]
        if kind == "len":
            parts.append("len(%s) >= %d" % (data_var, cond[1]))
        elif kind == "slice":
            _, start, end, value, equal = cond
            parts.append(
                "%s[%d:%d] %s %r" % (data_var, start, end, "==" if equal else "!=", value)
            )
        elif kind == "masked":
            _, offset, width, mask, value, equal = cond
            parts.append(
                "(int.from_bytes(%s[%d:%d], 'big') & 0x%x) %s 0x%x"
                % (data_var, offset, offset + width, mask, "==" if equal else "!=", value)
            )
        else:
            raise FastPathError("unknown guard condition %r" % (cond,))
    return " and ".join(parts)


class FastPath:
    """A compiled fast path over one wired router.

    Construction compiles; :meth:`install` swaps the compiled ports in;
    :meth:`uninstall` restores the reference interpreter untouched.
    """

    def __init__(self, router, batch=False, policy=None, cache=None):
        self.router = router
        self.batch = bool(batch)
        self.policy = policy if policy is not None else ChainPolicy()
        self.metered = router.meter is not None
        if self.metered and not hasattr(router.meter, "on_chain"):
            raise FastPathError(
                "meter %r does not support fast mode (no on_chain); "
                "use the reference interpreter or a CycleMeter" % (router.meter,)
            )
        self.chains = {}  # (kind, element_name, port) -> ChainInfo
        self._compiled = {}  # same key -> (fn, batch_fn_or_None)
        self._jump_tables = []  # (list to fill, terminal element, dispatch mode)
        self._saved_ports = None
        self.installed = False
        self.source = ""
        self._namespace = {}
        self._bind_specs = {}  # _bN name -> replay recipe
        self._cacheable = True
        self._ctx_counter = 0
        self._code = None  # compiled module code object (for the cache)
        self._names = None  # chain key -> (fn name, batch fn name)
        # Per-chain compile units, kept so a later scoped hot-swap can
        # splice this module's untouched chains into its own compile
        # (see _reuse_chain): source lines, the _bN names each chain
        # bound, and the jump tables it registered.
        self._chain_sources = {}  # chain key -> [source line, ...]
        self._chain_binds = {}  # chain key -> [_bN name, ...]
        self._chain_tables = {}  # chain key -> [_jump_tables index, ...]
        self._current_chain_binds = None
        self._current_chain_tables = None
        self._bind_counter = 0
        self._next_index = 0  # first free chain-function index
        self.report = FastPathReport()
        self.report.batch = self.batch
        self.report.metered = self.metered
        self.report.policy = self.policy.tag
        started = time.perf_counter()
        entry = None
        key = None
        if cache is not None and not self.metered:
            key = cache.key_for(router, self.batch, self.policy)
            entry = cache.lookup(key)
        if entry is not None:
            try:
                entry.replay(self)
                self.report.cache_hit = True
            except Exception:  # noqa: BLE001 - any corrupt entry falls back
                # A truncated/corrupt entry (bad recipe, stale names,
                # mangled code) must cost a recompile, not the router:
                # evict it and compile fresh from clean state.
                cache.evict(key)
                self._reset_compile_state()
                entry = None
        if entry is None:
            self._compile()
            if key is not None and self._cacheable:
                cache.store(key, self)
        self.report.compile_seconds = time.perf_counter() - started

    def _reset_compile_state(self):
        """Discard everything a failed cache replay may have half-built
        so :meth:`_compile` starts from scratch."""
        self.chains = {}
        self._compiled = {}
        self._jump_tables = []
        self.source = ""
        self._namespace = {}
        self._bind_specs = {}
        self._cacheable = True
        self._ctx_counter = 0
        self._code = None
        self._names = None
        self._chain_sources = {}
        self._chain_binds = {}
        self._chain_tables = {}
        self._current_chain_binds = None
        self._current_chain_tables = None
        self._bind_counter = 0
        self._next_index = 0
        report = FastPathReport()
        report.batch = self.batch
        report.metered = self.metered
        report.policy = self.policy.tag
        self.report = report

    def function_for(self, key, batch=False):
        """The compiled chain entry point for one edge key
        ``(kind, element_name, port)`` — what the adaptive engine swaps
        into a port's ``push`` slot on tier promotion."""
        compiled = self._compiled.get(key)
        if compiled is None:
            return None
        return compiled[1] if batch else compiled[0]

    # -- tracing ---------------------------------------------------------------

    def _trace_push(self, element, port_index):
        """Follow the push edge out of ``element[port_index]`` through
        every inlineable one-in/one-out element; returns (stages,
        bound inlined actions, terminal element, terminal input port)."""
        via = element._output_ports[port_index]
        stages, actions = [], []
        seen = {id(element)}
        prev, prev_port = element, port_index
        current, in_port = via.target, via.target_port
        while True:
            stages.append(
                ChainStage(
                    prev,
                    current,
                    (type(prev).__name__, "push", prev_port),
                    type(current).__name__,
                    via.virtual,
                    _uses_shared_dispatch(current),
                )
            )
            # Entering port 0 of an inlineable element always forwards on
            # output 0 (the simple_action/fast_action contract), whatever
            # its other input ports do — chains entering those ports are
            # compiled separately, so ninputs does not matter here.
            action = inline_action_name(type(current))
            if (
                action is None
                or in_port != 0
                or id(current) in seen
                or not current._output_ports
            ):
                break
            next_port = current._output_ports[0]
            if next_port.target is None:
                break
            seen.add(id(current))
            actions.append(getattr(current, action))
            prev, prev_port, via = current, 0, next_port
            current, in_port = next_port.target, next_port.target_port
        return stages, actions, current, in_port

    def _trace_pull(self, element, port_index):
        """Follow the pull edge into ``element[port_index]`` upstream
        through every inlineable element; returns (stages, bound
        inlined actions in walk order, terminal element, terminal
        output port).  Actions apply to the pulled packet in *reverse*
        walk order (nearest the terminal first)."""
        via = element._input_ports[port_index]
        stages, actions = [], []
        seen = {id(element)}
        prev, prev_port = element, port_index
        current, out_port = via.source, via.source_port
        while True:
            stages.append(
                ChainStage(
                    prev,
                    current,
                    (type(prev).__name__, "pull", prev_port),
                    type(current).__name__,
                    via.virtual,
                    _uses_shared_dispatch(current),
                )
            )
            action = inline_action_name(type(current))
            if (
                action is None
                or out_port != 0
                or id(current) in seen
                or not current._input_ports
            ):
                break
            next_port = current._input_ports[0]
            if next_port.source is None:
                break
            seen.add(id(current))
            actions.append(getattr(current, action))
            prev, prev_port, via = current, 0, next_port
            current, out_port = next_port.source, next_port.source_port
        return stages, actions, current, out_port

    # -- code generation ---------------------------------------------------------

    def _bind(self, value, spec=None):
        """Park a runtime object in the generated module's globals and
        return its name; generated defs capture it via default args.

        ``spec`` is the replay recipe the codegen cache uses to re-bind
        the same slot against a fresh router (see
        :mod:`repro.runtime.codegen_cache`); binding anything without a
        recipe makes this compile uncacheable."""
        name = "_b%d" % self._bind_counter
        self._bind_counter += 1
        self._namespace[name] = value
        self._bind_specs[name] = spec
        if spec is None:
            self._cacheable = False
        if self._current_chain_binds is not None:
            self._current_chain_binds.append(name)
        return name

    def _register_jump_table(self, terminal, mode):
        """A fresh terminal jump table (filled after exec), recorded
        against the chain currently being emitted so a scoped hot-swap
        can rebuild the table when it splices the chain."""
        table = []
        self._jump_tables.append((table, terminal, mode))
        index = len(self._jump_tables) - 1
        if self._current_chain_tables is not None:
            self._current_chain_tables.append(index)
        return table, index

    def _bind_policy(self, token):
        """Bind the live object behind a policy token."""
        return self.policy.resolve(token, self.router), ("policy", token)

    def _terminal_spec(self, terminal, terminal_port, new_arg, stack=None, depth=0, ctx=None):
        """Specialized dispatch for well-known terminal elements
        (unmetered chains only): a classifier terminal becomes its
        compiled matcher plus a jump table straight into the per-output
        chains; a route-table terminal inlines the lookup / gateway
        annotation / bounds-checked dispatch; a Queue terminal becomes a
        bounds-checked deque append.  Returns a line emitter or None
        when the terminal must be called through its own bound ``push``.
        All three pushes ignore their input-port argument, so any entry
        port may specialize.

        The jump tables are bound now as empty lists and filled after
        ``exec`` (the per-output chain functions do not exist yet while
        this chain is being emitted).

        ``stack`` (expanded terminal ids) and ``depth`` drive *dispatch
        fusion*: each branch target whose chain can itself be compiled
        in line is emitted as an ``if out == i:`` body instead of a
        jump-table call, so the common forwarding path runs from device
        to Queue in a single stack frame.  Targets that cannot be fused
        (cycles, depth limit, unknown terminals) still dispatch through
        the table.

        ``ctx`` carries upstream-established facts (see
        :meth:`_action_segment`) into the terminal when the policy has
        ``fuse_facts``: a classifier terminal reuses the live contents
        local, and a route-table terminal downstream of CheckIPHeader
        looks the route up from the raw destination integer without
        touching the annotation.
        """
        if self.metered:
            return None
        if getattr(terminal, "_fault_wrapped", False):
            # A fault-injection wrapper lives on the *instance*; the
            # class-identity specializations below would bypass it.
            # Fall back to the bound push, which binds the wrapper.
            return None
        if stack is None:
            stack = frozenset()
        from ..elements.classifiers import FastClassifierBase, _TreeClassifier
        from ..elements.infrastructure import Queue
        from ..elements.routing import _IPRouteTable

        policy = self.policy
        cls = type(terminal)
        if cls.push is _TreeClassifier.push or cls.push is FastClassifierBase.push:
            plan = policy.classifier_diagram(terminal)
            if plan is not None:
                return self._emit_classifier_diagram(
                    terminal, plan, new_arg, stack, depth, ctx
                )
            table, table_index = self._register_jump_table(terminal, "plain")
            if cls.push is FastClassifierBase.push:
                # Generated classes bake the tree at class level; a rule
                # change arrives as a new class (structural), so the raw
                # matcher function can be bound directly.
                m = new_arg(_classifier_matcher(terminal), ("matcher", terminal.name))
                match_expr = "%s(data)" % m
            else:
                # Live-patchable rules: bind the element's one-slot
                # matcher cell, so a control-plane rule patch swaps the
                # function under this chain without recompiling it (one
                # extra subscript per packet, amortized by the probe).
                m = new_arg(terminal.matcher_cell(), ("cell", terminal.name))
                match_expr = "%s[0](data)" % m
            c = new_arg(terminal, ("elem", terminal.name))
            jt = new_arg(table, ("table", table_index))
            noutputs = terminal.noutputs
            nports = len(terminal._output_ports)
            order = [i for i in policy.branch_order(terminal, nports)]
            bodies = {}
            for i in order:
                if policy.should_fuse(terminal, i):
                    bodies[i] = self._inline_push_body(
                        terminal, i, new_arg, stack, depth + 1
                    )
                else:
                    bodies[i] = None
                    self.report.pruned_arms += 1
            guard = policy.classifier_guard(terminal)
            hot_body = None
            if guard is not None:
                conds, hot_out = guard
                # The guard pays only when the hot arm runs in line; its
                # length condition also lets the arm's segments assume a
                # minimum contents length (bounds checks drop out).
                min_len = max([c[1] for c in conds if c[0] == "len"] or [0])
                hot_body = self._inline_push_body(
                    terminal,
                    hot_out,
                    new_arg,
                    stack,
                    depth + 1,
                    ctx={"data": "data", "min_len": min_len},
                )
                if hot_body is None:
                    guard = None
                else:
                    self.report.guarded_branches += 1
            note = policy.classifier_note(terminal)
            note_name = new_arg(*self._bind_policy(note)) if note is not None else None
            miss = None
            if guard is not None:
                miss_token = policy.guard_counter(terminal, "classifier")
                if miss_token is not None:
                    miss = new_arg(*self._bind_policy(miss_token))

            def emit(var, pad, exitstmt):
                lines = [
                    pad + "data = %s._data_cache" % var,
                    pad + "if data is None:",
                    pad + "    data = %s.data" % var,
                ]
                inner = pad
                if guard is not None:
                    lines.append(pad + "if %s:" % _render_guard(guard[0], "data"))
                    lines.extend(hot_body(var, pad + "    ", exitstmt))
                    lines.append(pad + "else:")
                    inner = pad + "    "
                    if miss is not None:
                        lines.append(inner + "%s()" % miss)
                lines.append(inner + "out = %s" % match_expr)
                if note_name is not None:
                    lines.append(inner + "%s(out, data)" % note_name)
                kw = "if"
                for i in order:
                    body = bodies[i]
                    if body is None:
                        continue
                    lines.append(inner + "%s out == %d:" % (kw, i))
                    lines.extend(body(var, inner + "    ", exitstmt))
                    kw = "elif"
                lines += [
                    inner + "%s out is None or out >= %d:" % (kw, noutputs),
                    inner + "    %s.drops += 1" % c,
                    inner + "else:",
                    inner + "    %s[out](%s)" % (jt, var),
                ]
                return lines

            return emit
        if cls.push is _IPRouteTable.push:
            from ..elements.routing import LookupIPRoute

            table, table_index = self._register_jump_table(terminal, "checked")
            lk = new_arg(terminal.lookup_route, ("attr", terminal.name, ("lookup_route",)))
            e = new_arg(terminal, ("elem", terminal.name))
            jt = new_arg(table, ("table", table_index))
            nports = len(terminal._output_ports)
            rm = ms = None
            if cls.lookup_route is LookupIPRoute.lookup_route:
                # The memo dict is created once at configure time and the
                # route table never changes afterwards, so its .get can
                # be bound directly: the common case becomes one dict
                # probe, and only misses take the memoizing full lookup.
                rm = new_arg(terminal._memo.get, ("attr", terminal.name, ("_memo", "get")))
                ms = new_arg(_MISS, ("const", "MISS"))
            raw_dst = None
            arm_facts = None
            if policy.fuse_facts and ctx:
                # Contents facts survive the route dispatch (it reads
                # annotations only), but the raw-destination local stops
                # describing the arm's packets once a gateway may
                # overwrite the annotation — drop it from the arm view.
                raw_dst = ctx.get("dst_raw")
                arm_facts = {k: v for k, v in ctx.items() if k != "dst_raw"}
            order = [i for i in policy.branch_order(terminal, nports)]
            bodies = {}
            for i in order:
                if policy.should_fuse(terminal, i):
                    bodies[i] = self._inline_push_body(
                        terminal,
                        i,
                        new_arg,
                        stack,
                        depth + 1,
                        ctx=dict(arm_facts) if arm_facts else None,
                    )
                else:
                    bodies[i] = None
                    self.report.pruned_arms += 1
            constant = policy.route_constant(terminal)
            hot = None
            if constant is not None:
                raw, gw_value, hot_port = constant
                # The speculated destination is compared by identity:
                # CheckIPHeader interns annotations through the shared
                # dest-IP cache, so the hot flow's packets all carry this
                # object.  A different object (same value or not) simply
                # takes the generic lookup below — never wrong, only slow.
                # With a live raw-destination local the guard compares
                # the integer instead (the lookup depends only on the
                # value, so value equality is just as sound and hits
                # even for un-interned annotations).
                hot_body = self._inline_push_body(
                    terminal,
                    hot_port,
                    new_arg,
                    stack,
                    depth + 1,
                    ctx=dict(arm_facts) if arm_facts else None,
                )
                if hot_body is not None and 0 <= hot_port < nports:
                    hot = (
                        new_arg(_intern_dest_ip(raw), ("ip", raw))
                        if raw_dst is None
                        else None,
                        new_arg(_intern_dest_ip(gw_value), ("ip", gw_value))
                        if gw_value is not None
                        else None,
                        hot_body,
                        int(raw),
                    )
                    self.report.guarded_branches += 1
            note = policy.route_note(terminal)
            note_name = new_arg(*self._bind_policy(note)) if note is not None else None
            miss = None
            if hot is not None:
                miss_token = policy.guard_counter(terminal, "route")
                if miss_token is not None:
                    miss = new_arg(*self._bind_policy(miss_token))

            def dispatch_tail(body, p2, var, exitstmt):
                kw = "if"
                for i in order:
                    inline_body = bodies[i]
                    if inline_body is None:
                        continue
                    body.append(p2 + "%s out == %d:" % (kw, i))
                    body.extend(inline_body(var, p2 + "    ", exitstmt))
                    kw = "elif"
                if kw == "if":
                    body += [
                        p2 + "hop = %s[out] if 0 <= out < %d else None" % (jt, nports),
                        p2 + "if hop is not None:",
                        p2 + "    hop(%s)" % var,
                    ]
                else:
                    body += [
                        p2 + "else:",
                        p2 + "    hop = %s[out] if 0 <= out < %d else None" % (jt, nports),
                        p2 + "    if hop is not None:",
                        p2 + "        hop(%s)" % var,
                    ]
                return body

            if raw_dst is not None:

                def emit(var, pad, exitstmt):
                    # CheckIPHeader ran earlier in this same function:
                    # the raw destination is live in a local and the
                    # annotation is guaranteed set, so the lookup skips
                    # the annotation load and its None check entirely.
                    body = []
                    inner = pad
                    if hot is not None:
                        _hot_ip, gw_name, hot_body, hot_raw = hot
                        body.append(pad + "if %s == %d:" % (raw_dst, hot_raw))
                        if gw_name is not None:
                            body.append(pad + "    %s.dest_ip_anno = %s" % (var, gw_name))
                        body.extend(hot_body(var, pad + "    ", exitstmt))
                        body.append(pad + "else:")
                        inner = pad + "    "
                        if miss is not None:
                            body.append(inner + "%s()" % miss)
                    if note_name is not None:
                        body.append(inner + "%s(%s)" % (note_name, raw_dst))
                    if rm is not None:
                        body += [
                            inner + "route = %s(%s, %s)" % (rm, raw_dst, ms),
                            inner + "if route is %s:" % ms,
                            inner + "    route = %s(%s)" % (lk, raw_dst),
                        ]
                    else:
                        body.append(inner + "route = %s(%s)" % (lk, raw_dst))
                    body += [
                        inner + "if route is None:",
                        inner + "    %s.no_route_drops += 1" % e,
                        inner + "else:",
                        inner + "    gateway = route[0]",
                        inner + "    if gateway is not None:",
                        inner + "        %s.set_dest_ip_anno(gateway)" % var,
                        inner + "    out = route[1]",
                    ]
                    return dispatch_tail(body, inner + "    ", var, exitstmt)

                return emit

            def emit(var, pad, exitstmt):
                body = [pad + "dst = %s.dest_ip_anno" % var]
                inner = pad
                if hot is not None:
                    hot_name, gw_name, hot_body, _hot_raw = hot
                    body.append(pad + "if dst is %s:" % hot_name)
                    if gw_name is not None:
                        body.append(pad + "    %s.dest_ip_anno = %s" % (var, gw_name))
                    body.extend(hot_body(var, pad + "    ", exitstmt))
                    body.append(pad + "elif dst is None:")
                else:
                    body.append(pad + "if dst is None:")
                body.append(pad + "    %s.no_route_drops += 1" % e)
                body.append(pad + "else:")
                if miss is not None:
                    body.append(pad + "    %s()" % miss)
                if note_name is not None:
                    body.append(pad + "    %s(dst.value)" % note_name)
                if rm is not None:
                    body += [
                        pad + "    route = %s(dst.value, %s)" % (rm, ms),
                        pad + "    if route is %s:" % ms,
                        pad + "        route = %s(dst)" % lk,
                    ]
                else:
                    body += [pad + "    route = %s(dst)" % lk]
                body += [
                    pad + "    if route is None:",
                    pad + "        %s.no_route_drops += 1" % e,
                    pad + "    else:",
                    pad + "        gateway = route[0]",
                    pad + "        if gateway is not None:",
                    pad + "            %s.set_dest_ip_anno(gateway)" % var,
                    pad + "        out = route[1]",
                ]
                return dispatch_tail(body, pad + "        ", var, exitstmt)

            return emit
        if cls.push is Queue.push:
            # The deque is bound directly: Queue never reassigns it
            # (hot-swap state transfer mutates it in place for exactly
            # this reason).  charge("queue_drop") is a no-op without a
            # meter, which is the only time this specialization runs.
            q = new_arg(terminal, ("elem", terminal.name))
            dq = new_arg(terminal._deque, ("attr", terminal.name, ("_deque",)))
            cap = terminal.capacity

            def emit(var, pad, exitstmt):
                return [
                    pad + "qlen = len(%s)" % dq,
                    pad + "if qlen >= %d:" % cap,
                    pad + "    %s.drops += 1" % q,
                    pad + "else:",
                    pad + "    %s.append(%s)" % (dq, var),
                    pad + "    qlen += 1",
                    pad + "    if qlen > %s.highwater:" % q,
                    pad + "        %s.highwater = qlen" % q,
                ]

            return emit
        return None

    def _emit_classifier_diagram(self, terminal, plan, new_arg, stack, depth, ctx):
        """Emit a classifier terminal as its forwarding decision
        diagram: the element's whole tree inlined as nested byte tests
        (see :mod:`repro.runtime.fdd`), with the fused per-output chain
        bodies sitting at the leaves.  Packets shorter than the
        diagram's length gate fall back to the compiled matcher, whose
        zero-padding semantics the in-bounds inlined tests cannot
        reproduce; everything longer never calls the matcher at all.

        Leaf bodies are built *now* (each under its own fact dict —
        contents local + the gate as minimum length), bounded per
        output so a tree labelling many leaves with one port does not
        replicate that port's chain arbitrarily; leaves past the bound,
        pruned arms, and failure/out-of-range leaves dispatch through
        the plain jump table exactly like the generic emission."""
        from ..elements.classifiers import FastClassifierBase

        policy = self.policy
        table, table_index = self._register_jump_table(terminal, "plain")
        cdata = ctx.get("data") if (policy.fuse_facts and ctx) else None
        cmin = int(ctx.get("min_len", 0)) if cdata else 0
        dvar = cdata if cdata else "data"
        if type(terminal).push is FastClassifierBase.push:
            m = new_arg(_classifier_matcher(terminal), ("matcher", terminal.name))
            match_expr = "%s(%s)" % (m, dvar)
        else:
            m = new_arg(terminal.matcher_cell(), ("cell", terminal.name))
            match_expr = "%s[0](%s)" % (m, dvar)
        c = new_arg(terminal, ("elem", terminal.name))
        jt = new_arg(table, ("table", table_index))
        noutputs = terminal.noutputs
        nports = len(terminal._output_ports)
        note = policy.classifier_note(terminal)
        note_name = new_arg(*self._bind_policy(note)) if note is not None else None
        gate = plan.gate
        base = dict(ctx) if cdata else {}
        base["data"] = dvar
        base["min_len"] = max(cmin, gate)
        bodies = {}
        pruned = set()
        per_out = {}
        for leaf_id, out in plan.leaves():
            if out is None or out >= noutputs or not (0 <= out < nports):
                continue
            if not policy.should_fuse(terminal, out):
                if out not in pruned:
                    pruned.add(out)
                    self.report.pruned_arms += 1
                continue
            if per_out.get(out, 0) >= 2:
                continue
            body = self._inline_push_body(
                terminal, out, new_arg, stack, depth + 1, ctx=dict(base)
            )
            if body is None:
                continue
            per_out[out] = per_out.get(out, 0) + 1
            bodies[leaf_id] = body
        report = self.report
        report.fdd_diagrams += 1
        report.fdd_nodes += plan.nodes
        report.fdd_paths += plan.paths
        report.fdd_tests_saved += plan.loads_saved

        def emit(var, pad, exitstmt):
            lines = []
            if cdata is None:
                lines += [
                    pad + "data = %s._data_cache" % var,
                    pad + "if data is None:",
                    pad + "    data = %s.data" % var,
                ]

            def leaf(leaf_id, out, lpad):
                body = []
                if note_name is not None:
                    body.append(
                        lpad
                        + "%s(%s, %s)"
                        % (note_name, "None" if out is None else out, dvar)
                    )
                if out is None or out >= noutputs:
                    body.append(lpad + "%s.drops += 1" % c)
                    return body
                emitter = bodies.get(leaf_id)
                if emitter is not None:
                    return body + emitter(var, lpad, exitstmt)
                body.append(lpad + "%s[%d](%s)" % (jt, out, var))
                return body

            if gate and cmin < gate:
                lines.append(pad + "if len(%s) >= %d:" % (dvar, gate))
                lines.extend(plan.emit(dvar, pad + "    ", leaf))
                lines.append(pad + "else:")
                fb = pad + "    "
                lines.append(fb + "out = %s" % match_expr)
                if note_name is not None:
                    lines.append(fb + "%s(out, %s)" % (note_name, dvar))
                lines += [
                    fb + "if out is None or out >= %d:" % noutputs,
                    fb + "    %s.drops += 1" % c,
                    fb + "else:",
                    fb + "    %s[out](%s)" % (jt, var),
                ]
            else:
                lines.extend(plan.emit(dvar, pad, leaf))
            return lines

        return emit

    def _inline_push_body(self, element, port_index, new_arg, stack, depth, ctx=None):
        """Emitter for the full body of the push chain leaving
        ``element[port_index]``, for fusing into a dispatch site, or
        None when that chain must stay a function call (metered mode,
        unwired port, a terminal cycle, or past the depth limit).

        The body is the same segments + terminal dispatch the chain's
        standalone function gets, so fusing only removes the call frame;
        bound objects (counters, deques, tables) are shared either way.

        ``ctx`` carries guard-established facts into the segments (a
        local already holding the packet contents and their minimum
        length), letting a guarded hot arm drop loads and bounds checks
        the generic body must keep.
        """
        if self.metered or depth > 4 or stack is None:
            return None
        port = element._output_ports[port_index]
        if port.target is None:
            return None
        stages, actions, terminal, terminal_port = self._trace_push(element, port_index)
        if id(terminal) in stack:
            return None
        pairs = [(stages[i].to_element, action) for i, action in enumerate(actions)]
        segments = self._compose_segments(pairs, new_arg, ctx=ctx)
        emit_terminal = self._terminal_spec(
            terminal, terminal_port, new_arg, stack | {id(terminal)}, depth, ctx=ctx
        )
        if emit_terminal is None:
            t = new_arg(terminal.push, ("attr", terminal.name, ("push",)))

            def emit_terminal(var, pad, exitstmt, _t=t, _p=terminal_port):
                return [pad + "%s(%d, %s)" % (_t, _p, var)]

        def emit(var, pad, exitstmt):
            lines = []
            for seg in segments:
                lines.extend(seg(var, pad, exitstmt))
            lines.extend(emit_terminal(var, pad, exitstmt))
            return lines

        return emit

    def _terminal_pull_spec(self, terminal, new_arg):
        """Specialized pull for well-known terminal elements (unmetered
        chains only): a Queue terminal becomes a direct deque popleft.
        Returns a line emitter taking (var, pad, exitstmt) or None."""
        if self.metered:
            return None
        if getattr(terminal, "_fault_wrapped", False):
            return None
        from ..elements.infrastructure import Queue

        if type(terminal).pull is Queue.pull:
            dq = new_arg(terminal._deque, ("attr", terminal.name, ("_deque",)))
            pop = new_arg(
                terminal._deque.popleft, ("attr", terminal.name, ("_deque", "popleft"))
            )

            def emit(var, pad, exitstmt):
                return [
                    pad + "if not %s:" % dq,
                    pad + "    " + exitstmt,
                    pad + "%s = %s()" % (var, pop),
                ]

            return emit
        return None

    def _action_segment(self, element, action, new_arg, ctx=None):
        """An inline code segment for one traced element, or None when
        its action must stay a bound call.  Segments write the element's
        per-packet work as raw statements with configuration constants
        baked in — the runtime analogue of click-xform's combo elements.
        Rare paths (errors, side outputs, cache misses) still call the
        bound method, which keeps counters and side effects exact.
        Identity checks are on the underlying function, so a subclass
        that overrides the handler falls back to the generic call.

        ``ctx`` (from a classifier guard, see ``_inline_push_body``) is
        a dict ``{"data": local_name, "min_len": n}`` asserting that the
        named local holds ``packet._data_cache`` (non-None) with at
        least ``min_len`` bytes.  Segments that keep the invariant use
        it to drop loads and bounds checks; segments that may break it
        clear the dict, turning it off for the rest of the chain."""
        from ..elements.arp import ARPQuerier
        from ..elements.ethernet import EtherEncap
        from ..elements.infrastructure import Strip
        from ..elements.ip import (
            PACKET_TYPE_BROADCAST,
            CheckIPHeader,
            DecIPTTL,
            DropBroadcasts,
            FixIPSrc,
            IPFragmenter,
            IPGWOptions,
            Paint,
            PaintTee,
        )

        from ..net.packet import _DEST_IP_CACHE

        fn = getattr(action, "__func__", None)
        if (
            fn is CheckIPHeader._check
            and not element.offset
            and not element.strict_alignment
        ):
            # The whole header check in line, with the configuration
            # (offset 0, no strict alignment, the bad-source set) baked
            # in.  Any failure funnels through the bound _fail, which
            # counts the drop and feeds the error output.  The set and
            # the intern cache are bound directly; neither is ever
            # reassigned after configuration.
            f = new_arg(element._fail, ("attr", element.name, ("_fail",)))
            bs = (
                new_arg(element.bad_src, ("attr", element.name, ("bad_src",)))
                if element.bad_src
                else None
            )
            dc = new_arg(_DEST_IP_CACHE.get, ("const", "DEST_IP_GET"))
            src_test = "s != 0xFFFFFFFF" + (" and s not in %s" % bs if bs else "")
            cvar = ctx.get("data") if ctx else None
            hot_raw = self.policy.check_ip_hot(element)
            hot_ip = (
                new_arg(_intern_dest_ip(hot_raw), ("ip", hot_raw))
                if hot_raw is not None
                else None
            )
            if ctx is not None and self.policy.fuse_facts:
                # The raw destination stays live in local ``d`` for any
                # downstream route-table terminal in this same function
                # (the contents facts survive too: only annotations and
                # ip_header_offset change here).
                ctx["dst_raw"] = "d"
                # The verified header length stays live in local `hl`
                # for as long as the contents facts hold.
                ctx["ip_hl"] = "hl"

            fast_lane = self.policy.fuse_facts

            def seg(var, pad, exitstmt):
                if cvar:
                    # A guard already loaded the contents into a local.
                    lines = [pad + "c = %s" % cvar]
                else:
                    lines = [
                        pad + "c = %s._data_cache" % var,
                        pad + "if c is None:",
                        pad + "    c = %s.data" % var,
                    ]
                lines += [
                    pad + "good = False",
                    pad + "ln = len(c)",
                    pad + "if ln >= 20:",
                    pad + "    vi = c[0]",
                ]
                if fast_lane:
                    # Split lane for the dominant no-options header
                    # (version/ihl byte 0x45): every field offset is a
                    # compile-time constant, so the extraction shifts
                    # constant-fold and the destination is a plain mask.
                    # Options-bearing headers take the generic lane.
                    lines += [
                        pad + "    if vi == 69:",
                        pad + "        hl = 20",
                        pad + "        hdr = int.from_bytes(c[:20], 'big')",
                        pad + "        if 20 <= (hdr >> 128) & 0xFFFF <= ln and not hdr % 0xFFFF:",
                        pad + "            s = (hdr >> 32) & 0xFFFFFFFF",
                        pad + "            if %s:" % src_test,
                        pad + "                good = True",
                        pad + "                d = hdr & 0xFFFFFFFF",
                        pad + "    else:",
                        pad + "        hl = (vi & 15) * 4",
                        pad + "        if vi >> 4 == 4 and hl >= 20 and ln >= hl:",
                        pad + "            hdr = int.from_bytes(c[:hl], 'big')",
                        pad + "            sh = hl * 8",
                        pad + "            if hl <= (hdr >> (sh - 32)) & 0xFFFF <= ln and not hdr % 0xFFFF:",
                        pad + "                s = (hdr >> (sh - 128)) & 0xFFFFFFFF",
                        pad + "                if %s:" % src_test,
                        pad + "                    good = True",
                        pad + "                    d = (hdr >> (sh - 160)) & 0xFFFFFFFF",
                        pad + "if not good:",
                        pad + "    %s(%s)" % (f, var),
                        pad + "    " + exitstmt,
                        pad + "%s.ip_header_offset = 0" % var,
                    ]
                else:
                    lines += [
                        pad + "    hl = (vi & 15) * 4",
                        pad + "    if vi >> 4 == 4 and hl >= 20 and ln >= hl:",
                        pad + "        hdr = int.from_bytes(c[:hl], 'big')",
                        pad + "        sh = hl * 8",
                        pad + "        if hl <= (hdr >> (sh - 32)) & 0xFFFF <= ln and not hdr % 0xFFFF:",
                        pad + "            s = (hdr >> (sh - 128)) & 0xFFFFFFFF",
                        pad + "            if %s:" % src_test,
                        pad + "                good = True",
                        pad + "if not good:",
                        pad + "    %s(%s)" % (f, var),
                        pad + "    " + exitstmt,
                        pad + "%s.ip_header_offset = 0" % var,
                        pad + "d = (hdr >> (sh - 160)) & 0xFFFFFFFF",
                    ]
                if hot_ip is not None:
                    # The profiled hot destination skips the intern-cache
                    # probe: an equal raw value gets the same interned
                    # object the cache would have produced, so downstream
                    # identity guards behave identically.
                    lines += [
                        pad + "if d == %d:" % hot_raw,
                        pad + "    %s.dest_ip_anno = %s" % (var, hot_ip),
                        pad + "else:",
                        pad + "    anno = %s(d)" % dc,
                        pad + "    if anno is None:",
                        pad + "        %s.set_dest_ip_anno(d)" % var,
                        pad + "    else:",
                        pad + "        %s.dest_ip_anno = anno" % var,
                    ]
                else:
                    lines += [
                        pad + "anno = %s(d)" % dc,
                        pad + "if anno is None:",
                        pad + "    %s.set_dest_ip_anno(d)" % var,
                        pad + "else:",
                        pad + "    %s.dest_ip_anno = anno" % var,
                    ]
                return lines

            return seg
        if fn is Paint.simple_action:
            color = element.color
            if ctx is not None and self.policy.fuse_facts:
                # The paint annotation is now a compile-time constant
                # for the rest of this chain (nothing else writes it).
                ctx["paint"] = color

            def seg(var, pad, exitstmt):
                return [pad + "%s.paint = %d" % (var, color)]

            return seg
        if fn is Strip.simple_action:
            n = element.nbytes
            if ctx and ctx.get("data") and ctx.get("min_len", 0) >= n:
                # The guard's length condition already proves the strip
                # is in bounds, and the contents local is live: slice it
                # into a fresh local and keep the invariant going.
                src = ctx["data"]
                self._ctx_counter += 1
                dst = "_d%d" % self._ctx_counter
                ctx["data"] = dst
                ctx["min_len"] = ctx["min_len"] - n
                # The header-length local was measured against the old
                # contents origin; it does not survive the re-slice.
                ctx.pop("ip_hl", None)

                def seg(var, pad, exitstmt, _src=src, _dst=dst):
                    return [
                        pad + "%s._data_offset += %d" % (var, n),
                        pad + "%s = %s[%d:]" % (_dst, _src, n),
                        pad + "%s._data_cache = %s" % (var, _dst),
                    ]

                return seg
            if ctx:
                ctx.clear()

            def seg(var, pad, exitstmt):
                # Stripping the front of a cached contents bytes is a
                # slice — keep the cache warm instead of forcing the
                # next .data reader to rebuild from the buffer.
                return [
                    pad + "if len(%s._buf) - %s._data_offset < %d:" % (var, var, n),
                    pad + "    " + exitstmt,
                    pad + "%s._data_offset += %d" % (var, n),
                    pad + "c = %s._data_cache" % var,
                    pad + "%s._data_cache = c[%d:] if c is not None else None" % (var, n),
                ]

            return seg
        if fn is DropBroadcasts.simple_action:
            e = new_arg(element, ("elem", element.name))

            def seg(var, pad, exitstmt):
                return [
                    pad
                    + "if %s.user_annos.get('packet_type') == %r:"
                    % (var, PACKET_TYPE_BROADCAST),
                    pad + "    %s.drops += 1" % e,
                    pad + "    " + exitstmt,
                ]

            return seg
        if fn is EtherEncap.simple_action:
            if ctx:
                ctx.clear()
            h = new_arg(element._header, ("attr", element.name, ("_header",)))
            hlen = len(element._header)

            def seg(var, pad, exitstmt):
                # Packet.push with the headroom test unrolled: prepend
                # into existing headroom in place, falling back to the
                # method (which reallocates) only when there is none.
                return [
                    pad + "off = %s._data_offset" % var,
                    pad + "if off >= %d:" % hlen,
                    pad + "    off -= %d" % hlen,
                    pad + "    %s._buf[off:off + %d] = %s" % (var, hlen, h),
                    pad + "    %s._data_offset = off" % var,
                    pad + "    %s._data_cache = None" % var,
                    pad + "else:",
                    pad + "    %s.push(%s)" % (var, h),
                ]

            return seg
        if fn is FixIPSrc.simple_action:
            data_var = None
            if ctx and self.policy.fuse_facts:
                data_var = ctx.get("data")
            if ctx and data_var is None:
                ctx.clear()
            a = new_arg(action, _method_spec(action))
            if data_var is not None:
                # Rewriting the source address keeps length, destination,
                # and header shape intact, so every fact survives; the
                # rare rewrite branch just re-syncs the contents local.

                def seg(var, pad, exitstmt, _d=data_var):
                    return [
                        pad + "if %s.fix_ip_src_anno:" % var,
                        pad + "    %s = %s(%s)" % (var, a, var),
                        pad + "    if %s is None:" % var,
                        pad + "        " + exitstmt,
                        pad + "    %s = %s._data_cache" % (_d, var),
                        pad + "    if %s is None:" % _d,
                        pad + "        %s = %s.data" % (_d, var),
                    ]

                return seg

            def seg(var, pad, exitstmt):
                return [
                    pad + "if %s.fix_ip_src_anno:" % var,
                    pad + "    %s = %s(%s)" % (var, a, var),
                    pad + "    if %s is None:" % var,
                    pad + "        " + exitstmt,
                ]

            return seg
        if fn is IPGWOptions._process:
            hl_var = None
            fused = bool(ctx) and self.policy.fuse_facts
            if fused:
                hl_var = ctx.get("ip_hl")
            if ctx and not fused:
                ctx.clear()
            a = new_arg(action, _method_spec(action))
            if hl_var is not None:
                # _process never mutates the packet (it only walks the
                # option bytes or diverts to output 1), so every fused
                # fact survives — including the header length an
                # upstream CheckIPHeader left live: options iff != 20.
                def seg(var, pad, exitstmt):
                    return [
                        pad + "if %s != 20:" % hl_var,
                        pad + "    %s = %s(%s)" % (var, a, var),
                        pad + "    if %s is None:" % var,
                        pad + "        " + exitstmt,
                    ]

                return seg

            def seg(var, pad, exitstmt):
                return [
                    pad + "c = %s._data_cache" % var,
                    pad + "if ((c[0] if c is not None else %s.data[0]) & 15) != 5:" % var,
                    pad + "    %s = %s(%s)" % (var, a, var),
                    pad + "    if %s is None:" % var,
                    pad + "        " + exitstmt,
                ]

            return seg
        if fn is DecIPTTL._decrement:
            data_var = None
            if ctx and self.policy.fuse_facts:
                data_var = ctx.get("data")
            if ctx:
                if data_var is not None:
                    # The decrement pokes TTL/checksum bytes in place,
                    # so the cached-contents local goes stale; lengths,
                    # destination, and paint survive.
                    ctx.pop("data", None)
                else:
                    ctx.clear()
            a = new_arg(action, _method_spec(action))

            def seg(var, pad, exitstmt, _d=data_var):
                # The live-TTL case fully in line: read the header words
                # from the cached contents, fold the RFC 1624 update
                # twice (the three-term sum fits in 18 bits, so two
                # folds always suffice), and poke the changed bytes.
                # TTL <= 1 takes the bound method, which counts, pushes
                # the error output, and returns None.
                if _d is not None:
                    head = [] if _d == "c" else [pad + "c = %s" % _d]
                else:
                    head = [
                        pad + "c = %s._data_cache" % var,
                        pad + "if c is None:",
                        pad + "    c = %s.data" % var,
                    ]
                return head + [
                    pad + "ttl = c[8]",
                    pad + "if ttl <= 1:",
                    pad + "    %s = %s(%s)" % (var, a, var),
                    pad + "    if %s is None:" % var,
                    pad + "        " + exitstmt,
                    pad + "else:",
                    pad + "    w = (ttl << 8) | c[9]",
                    pad + "    t = (((c[10] << 8) | c[11]) ^ 0xFFFF) + (w ^ 0xFFFF) + (w - 0x100)",
                    pad + "    t = (t & 0xFFFF) + (t >> 16)",
                    pad + "    t = ((t & 0xFFFF) + (t >> 16)) ^ 0xFFFF",
                    pad + "    base = %s._data_offset + 8" % var,
                    pad + "    buf = %s._buf" % var,
                    pad + "    buf[base] = ttl - 1",
                    pad + "    buf[base + 2] = t >> 8",
                    pad + "    buf[base + 3] = t & 0xFF",
                    pad + "    %s._data_cache = None" % var,
                ]

            return seg
        if fn is IPFragmenter._maybe_fragment:
            if ctx:
                ctx.clear()
            a = new_arg(action, _method_spec(action))
            mtu = element.mtu

            def seg(var, pad, exitstmt):
                return [
                    pad + "if len(%s._buf) - %s._data_offset > %d:" % (var, var, mtu),
                    pad + "    %s = %s(%s)" % (var, a, var),
                    pad + "    if %s is None:" % var,
                    pad + "        " + exitstmt,
                ]

            return seg
        if fn is PaintTee._tee:
            color = element.color
            if ctx is not None and self.policy.fuse_facts and "paint" in ctx:
                if ctx["paint"] != color:
                    # An upstream Paint in this same chain proves the
                    # tee never fires: the per-packet test disappears.
                    self.report.elided_elements += 1

                    def seg(var, pad, exitstmt):
                        return []

                    return seg
                a = new_arg(action, _method_spec(action))

                def seg(var, pad, exitstmt):
                    # Known-equal paint: tee unconditionally.
                    return [
                        pad + "%s = %s(%s)" % (var, a, var),
                        pad + "if %s is None:" % var,
                        pad + "    " + exitstmt,
                    ]

                return seg
            a = new_arg(action, _method_spec(action))

            def seg(var, pad, exitstmt):
                return [
                    pad + "if %s.paint == %d:" % (var, color),
                    pad + "    %s = %s(%s)" % (var, a, var),
                    pad + "    if %s is None:" % var,
                    pad + "        " + exitstmt,
                ]

            return seg
        if fn is ARPQuerier._handle_ip:
            if ctx:
                ctx.clear()
            # Common case: a resolved next hop whose Ethernet header is
            # already built — encapsulate and keep going inline.  Every
            # other case (unresolved, unannotated, header not yet
            # cached) takes the full method, which drops/queues/queries
            # and pushes through the output port itself.
            g = new_arg(element._headers.get, ("attr", element.name, ("_headers", "get")))
            a = new_arg(action, _method_spec(action))
            constant = self.policy.arp_constant(element)
            hot = None
            if constant is not None:
                raw, hdr_bytes, epoch = constant
                # Speculate the profiled hot next hop's header: identity
                # on the interned destination plus the querier's table
                # epoch prove the cached bytes are still current.  Any
                # table change bumps the epoch, so the guard fails safe
                # into the generic probe.
                hot = (
                    new_arg(_intern_dest_ip(raw), ("ip", raw)),
                    new_arg(bytes(hdr_bytes), ("value", bytes(hdr_bytes))),
                    new_arg(element, ("elem", element.name)),
                    int(epoch),
                    len(hdr_bytes),
                )
                self.report.guarded_branches += 1
            miss = None
            if hot is not None:
                miss_token = self.policy.guard_counter(element, "arp")
                if miss_token is not None:
                    miss = new_arg(*self._bind_policy(miss_token))

            def seg(var, pad, exitstmt):
                # The cached headers are 14-byte Ethernet headers; push
                # them straight into headroom when there is room (the
                # Packet.push fast case, without the call).
                lines = [pad + "dst = %s.dest_ip_anno" % var]
                inner = pad
                if hot is not None:
                    hot_ip, hot_hdr, e, epoch, hl = hot
                    lines += [
                        pad + "if dst is %s and %s._arp_epoch == %d:" % (hot_ip, e, epoch),
                        pad + "    off = %s._data_offset" % var,
                        pad + "    if off >= %d:" % hl,
                        pad + "        off -= %d" % hl,
                        pad + "        %s._buf[off:off + %d] = %s" % (var, hl, hot_hdr),
                        pad + "        %s._data_offset = off" % var,
                        pad + "        %s._data_cache = None" % var,
                        pad + "    else:",
                        pad + "        %s.push(%s)" % (var, hot_hdr),
                        pad + "else:",
                    ]
                    inner = pad + "    "
                    if miss is not None:
                        lines.append(inner + "%s()" % miss)
                lines += [
                    inner + "hdr = %s(dst.value) if dst is not None else None" % g,
                    inner + "if hdr is None:",
                    inner + "    %s(%s)" % (a, var),
                    inner + "    " + exitstmt,
                    inner + "off = %s._data_offset" % var,
                    inner + "hl = len(hdr)",
                    inner + "if off >= hl:",
                    inner + "    off -= hl",
                    inner + "    %s._buf[off:off + hl] = hdr" % var,
                    inner + "    %s._data_offset = off" % var,
                    inner + "    %s._data_cache = None" % var,
                    inner + "else:",
                    inner + "    %s.push(hdr)" % var,
                ]
                return lines

            return seg
        return None

    def _compose_segments(self, pairs, new_arg, ctx=None):
        """The inline body of an unmetered chain: one code segment per
        traced (element, bound action) pair — in the order the actions
        apply to the packet — with redundant elements elided and known
        cheap elements specialized to raw statements.  ``ctx`` (mutated
        in place) carries a guard-established contents local through the
        segments; any segment that may invalidate it clears it."""
        from ..elements.ip import CheckIPHeader, GetIPAddress

        segments = []
        prev = None
        for element, action in pairs:
            if (
                type(element) is GetIPAddress
                and element.offset == 16
                and type(prev) is CheckIPHeader
                and prev.offset == 0
                and not getattr(element, "_fault_wrapped", False)
                and not getattr(prev, "_fault_wrapped", False)
            ):
                # CheckIPHeader just set the destination annotation from
                # these same bytes and guaranteed len(data) >= 20, so
                # GetIPAddress(16) cannot observe anything different:
                # classic redundant-code elimination, safe only because
                # the chain compiler sees both elements at once.
                self.report.elided_elements += 1
                prev = element
                continue
            seg = self._action_segment(element, action, new_arg, ctx=ctx)
            if seg is not None:
                self.report.specialized_actions += 1
            else:
                if ctx:
                    ctx.clear()
                a = new_arg(action, _method_spec(action))

                def seg(var, pad, exitstmt, _a=a):
                    return [
                        pad + "%s = %s(%s)" % (var, _a, var),
                        pad + "if %s is None:" % var,
                        pad + "    " + exitstmt,
                    ]

            segments.append(seg)
            prev = element
        return segments

    def _emit_push(self, lines, index, element, port_index):
        stages, actions, terminal, terminal_port = self._trace_push(element, port_index)
        fn = "_push_%d" % index
        info = ChainInfo(
            "push",
            element.name,
            port_index,
            [stage.to_element.name for stage in stages[:-1]],
            terminal.name,
            terminal_port,
            fn,
        )
        lines.append("")
        lines.append("# %s" % info.describe())
        start = len(lines)
        batch_fn = None
        if self.metered:
            action_names = [self._bind(action) for action in actions]
            term_name = self._bind(terminal.push)
            meter_name = self._bind(self.router.meter.on_chain)
            prof_name = self._bind(tuple(stages))
            impl = fn + "_impl"
            args = ", ".join(
                ["packets"]
                + ["_a%d=%s" % (i, name) for i, name in enumerate(action_names)]
                + ["_t=%s" % term_name, "_mc=%s" % meter_name, "_prof=%s" % prof_name]
            )
            lines.append("def %s(%s):" % (impl, args))
            lines.append("    counts = [0] * %d" % len(stages))
            lines.append("    survivors = []")
            lines.append("    for packet in packets:")
            for i in range(len(actions)):
                lines.append("        counts[%d] += 1" % i)
                lines.append("        packet = _a%d(packet)" % i)
                lines.append("        if packet is None:")
                lines.append("            continue")
            lines.append("        counts[%d] += 1" % (len(stages) - 1))
            lines.append("        survivors.append(packet)")
            lines.append("    _mc(_prof, counts)")
            lines.append("    for packet in survivors:")
            lines.append("        _t(%d, packet)" % terminal_port)
            lines.append("def %s(packet, _impl=%s):" % (fn, impl))
            lines.append("    _impl((packet,))")
            batch_fn = impl
        else:
            extra_args = []

            def new_arg(value, spec=None):
                name = "_x%d" % len(extra_args)
                extra_args.append("%s=%s" % (name, self._bind(value, spec)))
                return name

            pairs = [(stages[i].to_element, action) for i, action in enumerate(actions)]
            ctx = {} if self.policy.fuse_facts else None
            segments = self._compose_segments(pairs, new_arg, ctx=ctx)
            emit_terminal = self._terminal_spec(
                terminal, terminal_port, new_arg, frozenset({id(terminal)}), 0, ctx=ctx
            )
            if emit_terminal is not None:
                self.report.specialized_terminals += 1
            else:
                t = new_arg(terminal.push, ("attr", terminal.name, ("push",)))

                def emit_terminal(var, pad, exitstmt, _t=t, _p=terminal_port):
                    return [pad + "%s(%d, %s)" % (_t, _p, var)]

            lines.append("def %s(%s):" % (fn, ", ".join(["packet"] + extra_args)))
            for seg in segments:
                lines.extend(seg("packet", "    ", "return"))
            lines.extend(emit_terminal("packet", "    ", "return"))
            if self.batch:
                batch_fn = fn + "_batch"
                lines.append(
                    "def %s(%s):" % (batch_fn, ", ".join(["packets"] + extra_args))
                )
                lines.append("    for packet in packets:")
                for seg in segments:
                    lines.extend(seg("packet", "        ", "continue"))
                lines.extend(emit_terminal("packet", "        ", "continue"))
        info.lines = len(lines) - start
        self.report.chain_lines["push %s[%d]" % (element.name, port_index)] = info.lines
        self.chains[("push", element.name, port_index)] = info
        self._note_chain(info, stages)
        return fn, batch_fn

    def _emit_pull(self, lines, index, element, port_index):
        stages, actions, terminal, terminal_port = self._trace_pull(element, port_index)
        fn = "_pull_%d" % index
        info = ChainInfo(
            "pull",
            element.name,
            port_index,
            [stage.to_element.name for stage in stages[:-1]],
            terminal.name,
            terminal_port,
            fn,
        )
        # Applied nearest-the-terminal first: reverse of the walk order.
        ordered = list(reversed(actions))
        lines.append("")
        lines.append("# %s" % info.describe())
        start = len(lines)
        batch_fn = None
        if self.metered:
            action_names = [self._bind(action) for action in ordered]
            term_name = self._bind(terminal.pull)
            header = ["_t=%s" % term_name] + [
                "_a%d=%s" % (i, name) for i, name in enumerate(action_names)
            ]
            meter_name = self._bind(self.router.meter.on_chain)
            prof_name = self._bind(tuple(stages))
            ones_name = self._bind([1] * len(stages))
            header += ["_mc=%s" % meter_name, "_prof=%s" % prof_name, "_ones=%s" % ones_name]
            lines.append("def %s(%s):" % (fn, ", ".join(header)))
            lines.append("    _mc(_prof, _ones)")
            lines.append("    packet = _t(%d)" % terminal_port)
            lines.append("    if packet is None:")
            lines.append("        return None")
            for i in range(len(ordered)):
                lines.append("    packet = _a%d(packet)" % i)
                lines.append("    if packet is None:")
                lines.append("        return None")
            lines.append("    return packet")
            if self.batch:
                # Delegate per packet so each pull charges its own
                # profile, exactly as the reference interpreter would.
                batch_fn = fn + "_batch"
                lines.append("def %s(limit, _one=%s):" % (batch_fn, fn))
                lines.append("    packets = []")
                lines.append("    while limit > 0:")
                lines.append("        limit -= 1")
                lines.append("        packet = _one()")
                lines.append("        if packet is None:")
                lines.append("            break")
                lines.append("        packets.append(packet)")
                lines.append("    return packets")
        else:
            extra_args = []

            def new_arg(value, spec=None):
                name = "_x%d" % len(extra_args)
                extra_args.append("%s=%s" % (name, self._bind(value, spec)))
                return name

            # stages[i] corresponds to walk-order actions[i]; pair the
            # reversed (application-order) actions with their elements.
            pairs = [
                (stages[len(actions) - 1 - i].to_element, action)
                for i, action in enumerate(ordered)
            ]
            segments = self._compose_segments(pairs, new_arg)
            emit_terminal = self._terminal_pull_spec(terminal, new_arg)
            if emit_terminal is not None:
                self.report.specialized_terminals += 1
            else:
                t = new_arg(terminal.pull, ("attr", terminal.name, ("pull",)))

                def emit_terminal(var, pad, exitstmt, _t=t, _p=terminal_port):
                    return [
                        pad + "%s = %s(%d)" % (var, _t, _p),
                        pad + "if %s is None:" % var,
                        pad + "    " + exitstmt,
                    ]

            lines.append("def %s(%s):" % (fn, ", ".join(extra_args)))
            lines.extend(emit_terminal("packet", "    ", "return None"))
            for seg in segments:
                lines.extend(seg("packet", "    ", "return None"))
            lines.append("    return packet")
            if self.batch:
                # A pull that comes back None ends the burst (the
                # reference device loop breaks on None whether the
                # queue ran dry or an inlined action dropped).
                batch_fn = fn + "_batch"
                lines.append(
                    "def %s(%s):" % (batch_fn, ", ".join(["limit"] + extra_args))
                )
                lines.append("    packets = []")
                lines.append("    append = packets.append")
                lines.append("    while limit > 0:")
                lines.append("        limit -= 1")
                lines.extend(emit_terminal("packet", "        ", "break"))
                for seg in segments:
                    lines.extend(seg("packet", "        ", "break"))
                lines.append("        append(packet)")
                lines.append("    return packets")
        info.lines = len(lines) - start
        self.report.chain_lines["pull %s[%d]" % (element.name, port_index)] = info.lines
        self.chains[("pull", element.name, port_index)] = info
        self._note_chain(info, stages)
        return fn, batch_fn

    def _note_chain(self, info, stages):
        report = self.report
        if info.kind == "push":
            report.push_chains += 1
        else:
            report.pull_chains += 1
        report.inlined_calls += len(info.inlined)
        report.inlined_elements.update(info.inlined)
        report.longest_chain = max(report.longest_chain, len(stages))

    # -- scoped chain reuse ------------------------------------------------------

    def _reuse_plan(self):
        """The ``(donor fastpath, dirty name set)`` a scoped hot-swap
        offered via ``router._fastpath_reuse``, or ``(None, None)`` when
        no donor is compatible.  A donor must match this compile's batch
        flavor and policy reuse key, carry per-chain compile units, and
        neither side may be metered or fault-wrapped (a wrapper lives on
        element *instances*, which spliced code would bypass)."""
        hint = getattr(self.router, "_fastpath_reuse", None)
        if not hint or self.metered:
            return None, None
        if getattr(self.router, "_fault_uncacheable", False):
            return None, None
        try:
            policy_key = self.policy.reuse_key()
        except Exception:  # noqa: BLE001 - an odd policy just declines reuse
            return None, None
        if policy_key is None:
            return None, None
        dirty = set(hint.get("dirty", ()))
        for donor in hint.get("fastpaths", ()):
            if donor is None or donor is self or donor.metered:
                continue
            if donor.batch != self.batch or not donor._chain_sources:
                continue
            if getattr(donor.router, "_fault_uncacheable", False):
                continue
            try:
                if donor.policy.reuse_key() != policy_key:
                    continue
            except Exception:  # noqa: BLE001
                continue
            return donor, dirty
        return None, None

    def _chain_closure(self, name, kind):
        """Every element name the compiled chain anchored at ``name``
        can touch: forward over push targets for push chains (dispatch
        fusion and jump tables only ever reach downstream), backward
        over pull sources for pull chains.  Neither crosses a push/pull
        boundary (a Queue's other side has no target/source edge)."""
        closure = set()
        frontier = [name]
        elements = self.router.elements
        while frontier:
            current = frontier.pop()
            if current in closure:
                continue
            closure.add(current)
            element = elements.get(current)
            if element is None:
                continue
            if kind == "push":
                for port in element._output_ports:
                    if port.target is not None:
                        frontier.append(port.target.name)
            else:
                for port in element._input_ports:
                    if port.source is not None:
                        frontier.append(port.source.name)
        return closure

    def _chain_reusable(self, key, donor, dirty, closures):
        """May ``donor``'s compile of chain ``key`` be spliced verbatim?
        Yes when the donor has its compile unit, every object it bound
        has a replay recipe, and no element the chain can touch is in
        the delta's dirty set (untouched closure ⇒ identical generated
        code, only the bound objects need re-resolving)."""
        if key not in donor.chains or key not in donor._chain_sources:
            return False
        binds = donor._chain_binds.get(key)
        if binds is None or any(donor._bind_specs.get(name) is None for name in binds):
            return False
        kind, name, _port = key
        closure = closures.get((kind, name))
        if closure is None:
            closure = closures[(kind, name)] = self._chain_closure(name, kind)
        return not (closure & dirty)

    def _reuse_chain(self, key, donor, lines, names):
        """Splice one untouched chain from ``donor``'s module into this
        compile: its source lines verbatim, its ``_bN`` bind slots
        (re-resolved against this router before exec), and fresh jump
        tables for the ones it registered.  Returns the ``(name, spec)``
        bind slots the caller must resolve into the namespace."""
        lines.extend(donor._chain_sources[key])
        table_map = {}
        for old_index in donor._chain_tables.get(key, ()):
            _table, old_element, mode = donor._jump_tables[old_index]
            table, new_index = self._register_jump_table(
                self.router.elements[old_element.name], mode
            )
            table_map[old_index] = new_index
        bind_names = list(donor._chain_binds[key])
        reused_binds = []
        for name in bind_names:
            spec = donor._bind_specs[name]
            if spec[0] == "table":
                spec = ("table", table_map[spec[1]])
            self._bind_specs[name] = spec
            reused_binds.append((name, spec))
        names[key] = donor._names[key]
        info = donor.chains[key]
        self.chains[key] = info
        self._chain_sources[key] = donor._chain_sources[key]
        self._chain_binds[key] = bind_names
        self._chain_tables[key] = sorted(table_map.values())
        report = self.report
        report.reused_chains += 1
        report.chain_lines["%s %s[%d]" % key] = info.lines
        if info.kind == "push":
            report.push_chains += 1
        else:
            report.pull_chains += 1
        report.inlined_calls += len(info.inlined)
        report.inlined_elements.update(info.inlined)
        report.longest_chain = max(report.longest_chain, len(info.inlined) + 1)
        return reused_binds

    def _compile(self):
        lines = [
            '"""Generated by repro.runtime.fastpath: one function per wired',
            "push/pull edge of the router.  Do not edit; regenerate with",
            'Router.compile_fastpath().  Dump via router.fastpath.source."""',
        ]
        names = {}  # chain key -> (fn name, batch fn name)
        donor, dirty = self._reuse_plan()
        index = 0
        if donor is not None:
            # Fresh chains number from the donor's watermark and bind
            # slots continue from its counter, so spliced code (which
            # keeps its original _push_N/_bN names) never collides.
            index = donor._next_index
            self._bind_counter = donor._bind_counter
        closures = {}  # (kind, element name) -> touchable-name closure
        reused_binds = []  # (_bN name, spec) to resolve before exec
        for element in self.router.elements.values():
            for port_index, port in enumerate(element._output_ports):
                if port.target is None:
                    continue
                key = ("push", element.name, port_index)
                if donor is not None and self._chain_reusable(key, donor, dirty, closures):
                    reused_binds.extend(self._reuse_chain(key, donor, lines, names))
                    continue
                self._current_chain_binds = []
                self._current_chain_tables = []
                start = len(lines)
                names[key] = self._emit_push(lines, index, element, port_index)
                self._chain_sources[key] = lines[start:]
                self._chain_binds[key] = self._current_chain_binds
                self._chain_tables[key] = self._current_chain_tables
                index += 1
            for port_index, port in enumerate(element._input_ports):
                if port.source is None:
                    continue
                key = ("pull", element.name, port_index)
                if donor is not None and self._chain_reusable(key, donor, dirty, closures):
                    reused_binds.extend(self._reuse_chain(key, donor, lines, names))
                    continue
                self._current_chain_binds = []
                self._current_chain_tables = []
                start = len(lines)
                names[key] = self._emit_pull(lines, index, element, port_index)
                self._chain_sources[key] = lines[start:]
                self._chain_binds[key] = self._current_chain_binds
                self._chain_tables[key] = self._current_chain_tables
                index += 1
            wired_outputs = sum(1 for p in element._output_ports if p.target is not None)
            if wired_outputs > 1:
                self.report.branch_elements += 1
                self.report.branch_ports += wired_outputs
        self._current_chain_binds = None
        self._current_chain_tables = None
        self._next_index = index
        self.source = "\n".join(lines) + "\n"
        self.report.source_lines = self.source.count("\n")
        code = compile(self.source, "<fastpath>", "exec")
        if reused_binds:
            from .codegen_cache import _resolve_spec

            for name, spec in reused_binds:
                self._namespace[name] = _resolve_spec(spec, self, self._jump_tables)
        exec(code, self._namespace)  # noqa: S102 - code generated above
        self._code = code
        self._names = names
        for key, (fn, batch_fn) in names.items():
            self._compiled[key] = (
                self._namespace[fn],
                self._namespace[batch_fn] if batch_fn else None,
            )
        # Fill the terminal jump tables: entry i is the compiled chain
        # for the terminal's output i.  "checked" tables (route tables)
        # drop silently on unwired ports, like Element.checked_push;
        # "plain" tables fall back to the reference port so misbehavior
        # (pushing an unwired port) fails the same way it would have.
        for table, element, mode in self._jump_tables:
            for port_index, port in enumerate(element._output_ports):
                compiled = names.get(("push", element.name, port_index))
                if compiled is not None:
                    table.append(self._namespace[compiled[0]])
                elif mode == "checked":
                    table.append(None)
                else:
                    table.append(port.push)

    # -- installation -------------------------------------------------------------

    def install(self):
        """Swap every wired port for its compiled fast port.  The
        reference ports are kept aside for :meth:`uninstall`."""
        if self.installed:
            return
        batching = self.batch
        saved = {}
        for name, element in self.router.elements.items():
            saved[name] = (element._output_ports, element._input_ports)
            new_outputs = []
            for port_index, port in enumerate(element._output_ports):
                compiled = self._compiled.get(("push", name, port_index))
                if compiled is None:
                    new_outputs.append(port)
                else:
                    new_outputs.append(
                        FastOutputPort(port, compiled[0], compiled[1] if batching else None)
                    )
            new_inputs = []
            for port_index, port in enumerate(element._input_ports):
                compiled = self._compiled.get(("pull", name, port_index))
                if compiled is None:
                    new_inputs.append(port)
                else:
                    new_inputs.append(
                        FastInputPort(port, compiled[0], compiled[1] if batching else None)
                    )
            element._output_ports = new_outputs
            element._input_ports = new_inputs
        self._saved_ports = saved
        self.installed = True

    def uninstall(self):
        """Restore the reference interpreter's ports."""
        if not self.installed:
            return
        for name, (outputs, inputs) in self._saved_ports.items():
            element = self.router.elements.get(name)
            if element is not None:
                element._output_ports = outputs
                element._input_ports = inputs
        self._saved_ports = None
        self.installed = False

    # -- debugging ----------------------------------------------------------------

    def dump(self, fh):
        """Write the generated module source to a file object."""
        fh.write(self.source)

    def chain_for(self, kind, element_name, port):
        """The ChainInfo compiled for one edge (debugging aid)."""
        return self.chains.get((kind, element_name, port))
