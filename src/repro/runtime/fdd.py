"""Forwarding decision diagrams: whole-graph symbolic compilation.

The fast path (:mod:`repro.runtime.fastpath`) inlines per-element code
but still *dispatches* per element: a classifier terminal calls its
compiled matcher, branches on the result, and each arm re-tests packet
bytes that the matcher already examined.  "A Fast Compiler for NetKAT"
compiles entire policies into BDD/FDD form where every packet field is
tested at most once per path; this module is that move applied to the
compiled chains.

:func:`build_diagram` expands a classifier's optimized decision tree
(:class:`repro.classifier.tree.DecisionTree` — a DAG of masked-word
tests) into an *ordered decision diagram plan*: a nested if/else
structure over named byte locations, where each location (a contiguous
byte slice or a masked 32-bit word) is materialized into a local at
most once per root-to-leaf path.  The chain compiler
(:meth:`FastPath._emit_classifier_diagram`) emits the plan in place of
the matcher call, fusing the per-output chain bodies — CheckIPHeader,
route lookup, TTL decrement and all — straight onto the diagram's
leaves, so a forwarded packet runs from device to queue through one
specialized root-to-leaf function with no matcher call at all.

Safety mirrors the adaptive tiers (Morpheus-style):

- **short packets** cannot be tested in-bounds the way the tree's
  interpreted traversal zero-pads them, so every diagram carries a
  *length gate*; packets under it fall back to the compiled matcher,
  which pads identically.
- **profile-guided ordering**: the tier-2 FDD policy walks the profiled
  hot exemplar through the tree and flips each diagram test so the hot
  side is the fall-through — the adaptive guard machinery (sampling
  dispatchers, guard-miss counters, deopt) is inherited unchanged from
  :class:`AdaptiveEngine`.
- **control-plane patches**: a rules update changes tree *content*
  that diagrams bake in, so :meth:`FDDEngine.on_table_patch` rebuilds
  only the chains that can reach the patched classifier (scoped donor
  reuse splices every untouched chain verbatim); route patches need no
  rebuild at all — compiled lookups read the live table through bound
  memo/lookup cells, exactly as in adaptive mode.

Cache addressing: diagram code inlines tree content, which a rules
patch changes *without* changing the graph fingerprint, so every FDD
policy folds a digest of the live tree signatures (diagram shapes)
into its codegen-cache key.
"""

from __future__ import annotations

import hashlib

from .adaptive import (
    AdaptiveEngine,
    OptimizedPolicy,
    ProfilingPolicy,
)
from .codegen_cache import default_cache
from .fastpath import ChainPolicy, FastPath

__all__ = [
    "DEFAULT_NODE_BUDGET",
    "DiagramPlan",
    "FDDEngine",
    "FDDOptimizedPolicy",
    "FDDPolicy",
    "FDDProfilingPolicy",
    "TUNABLES",
    "build_diagram",
    "classifier_hot_path",
    "router_trees",
    "trees_digest",
]

#: Expanding a DAG-shaped tree into nested if/else replicates shared
#: subtrees; past this many expanded test nodes a classifier keeps the
#: generic matcher emission (correct, just not diagram-fused).  Sized
#: so the paper's 17-rule screened-subnet IPFilter (107 expanded nodes)
#: still compiles to a diagram.
DEFAULT_NODE_BUDGET = 160

#: Parameter-space declaration for the autotuner (:mod:`repro.tune`).
#: The budget trades diagram coverage (too low and big classifiers fall
#: back to the generic matcher) against generated-code size.
TUNABLES = (
    {
        "name": "fdd.node_budget",
        "kind": "log_int",
        "low": 32,
        "high": 1024,
        "default": DEFAULT_NODE_BUDGET,
    },
)


class _BudgetExceeded(Exception):
    pass


def _loc_for(expr):
    """The cheapest load for one tree test: a contiguous byte slice
    when the mask covers whole bytes, else the masked 32-bit word.
    Returns ``(loc, cond)`` — ``loc`` identifies the materialized
    local, ``cond`` how to compare it."""
    mask_bytes = expr.mask.to_bytes(4, "big")
    set_bytes = [i for i in range(4) if mask_bytes[i]]
    if set_bytes and all(mask_bytes[i] == 0xFF for i in set_bytes):
        first, last = set_bytes[0], set_bytes[-1]
        if set_bytes == list(range(first, last + 1)):
            value_bytes = expr.value.to_bytes(4, "big")[first : last + 1]
            return (
                ("slice", expr.offset + first, expr.offset + last + 1),
                ("bytes", bytes(value_bytes)),
            )
    return ("word", expr.offset), ("masked", expr.mask, expr.value)


def _loc_name(loc):
    if loc[0] == "slice":
        return "_fdd_%d_%d" % (loc[1], loc[2])
    return "_fddw_%d" % loc[1]


def _loc_load(loc, data_var):
    if loc[0] == "slice":
        return "%s[%d:%d]" % (data_var, loc[1], loc[2])
    return "int.from_bytes(%s[%d:%d], 'big')" % (data_var, loc[1], loc[1] + 4)


def _loc_need(loc):
    """Bytes the gate must guarantee for this loc's in-bounds read to
    agree with the tree's zero-padding traversal."""
    if loc[0] == "slice":
        return loc[2]
    return loc[1] + 4


def _cond(name, cond, negate=False):
    if cond[0] == "bytes":
        return "%s %s %r" % (name, "!=" if negate else "==", cond[1])
    _, mask, value = cond
    op = "!=" if negate else "=="
    if mask == 0xFFFFFFFF:
        return "%s %s 0x%x" % (name, op, value)
    return "(%s & 0x%x) %s 0x%x" % (name, mask, op, value)


class DiagramPlan:
    """One classifier's expanded decision diagram, ready to emit.

    ``root`` is a nested node structure: ``("leaf", leaf_id, out)``
    (``out`` None = drop) or ``("test", loc, cond, swap, first,
    second)`` where ``swap`` means the emitted condition is negated and
    ``first`` is the tree's *no* side (profile-hot fall-through).
    ``gate`` is the contents length under which the compiled matcher
    must run instead; ``nodes``/``paths``/``loads_saved`` feed the
    diagram report.
    """

    __slots__ = ("root", "nodes", "paths", "gate", "loads_saved", "signature")

    def __init__(self, root, nodes, paths, gate, loads_saved, signature):
        self.root = root
        self.nodes = nodes
        self.paths = paths
        self.gate = gate
        self.loads_saved = loads_saved
        self.signature = signature

    def leaves(self):
        """Every ``(leaf_id, out)`` in emission order."""
        found = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node[0] == "leaf":
                found.append((node[1], node[2]))
            else:
                stack.append(node[5])
                stack.append(node[4])
        return found

    def emit(self, data_var, pad, leaf_render):
        """Render the diagram as source lines.  ``leaf_render(leaf_id,
        out, pad)`` supplies each leaf's body (fused chain, jump-table
        call, or drop count)."""
        lines = []
        self._emit(self.root, data_var, pad, leaf_render, frozenset(), lines)
        return lines

    def _emit(self, node, data_var, pad, leaf_render, have, lines):
        if node[0] == "leaf":
            lines.extend(leaf_render(node[1], node[2], pad))
            return
        _, loc, cond, swap, first, second = node
        name = _loc_name(loc)
        if loc not in have:
            lines.append(pad + "%s = %s" % (name, _loc_load(loc, data_var)))
            have = have | {loc}
        lines.append(pad + "if %s:" % _cond(name, cond, negate=swap))
        self._emit(first, data_var, pad + "    ", leaf_render, have, lines)
        lines.append(pad + "else:")
        self._emit(second, data_var, pad + "    ", leaf_render, have, lines)

    def as_dict(self):
        return {
            "nodes": self.nodes,
            "paths": self.paths,
            "gate": self.gate,
            "loads_saved": self.loads_saved,
        }


def build_diagram(tree, hot_path=None, node_budget=DEFAULT_NODE_BUDGET):
    """Expand ``tree`` into a :class:`DiagramPlan`, or None when the
    expansion would exceed ``node_budget`` test nodes (shared subtrees
    replicate) — the caller then keeps the generic matcher emission.

    ``hot_path`` maps 1-based tree positions to the branch the profiled
    hot flow takes there (``{pos: taken}``); those tests emit with the
    hot side as the fall-through.  Constant trees (no expressions —
    empty/'-' rule tables) become a single-leaf plan with gate 0.
    """
    from ..classifier.tree import is_leaf, leaf_output

    if tree is None:
        return None
    hot_path = hot_path or {}
    exprs = tree.exprs
    signature = tree.signature()
    if not exprs:
        root = ("leaf", 0, tree.constant_output)
        return DiagramPlan(root, 0, 1, 0, 0, signature)
    state = {"nodes": 0, "leaves": 0, "saved": 0, "gate": 0}

    def expand(target, have):
        if is_leaf(target):
            leaf_id = state["leaves"]
            state["leaves"] += 1
            return ("leaf", leaf_id, leaf_output(target))
        expr = exprs[target - 1]
        if expr.mask == 0:
            # A constant test (the optimizer normally folds these):
            # (word & 0) == value is True exactly when value is 0.
            return expand(expr.yes if expr.value == 0 else expr.no, have)
        state["nodes"] += 1
        if state["nodes"] > node_budget:
            raise _BudgetExceeded()
        loc, cond = _loc_for(expr)
        state["gate"] = max(state["gate"], _loc_need(loc))
        if loc in have:
            state["saved"] += 1
        else:
            have = have | {loc}
        swap = hot_path.get(target) is False
        first = expand(expr.no if swap else expr.yes, have)
        second = expand(expr.yes if swap else expr.no, have)
        return ("test", loc, cond, swap, first, second)

    try:
        root = expand(1, frozenset())
    except (_BudgetExceeded, RecursionError):
        return None
    return DiagramPlan(
        root, state["nodes"], state["leaves"], state["gate"], state["saved"], signature
    )


def classifier_hot_path(tree, hot_out, exemplar):
    """The ``(pos, taken)`` steps the profiled hot exemplar takes
    through ``tree``, or ``()`` when there is no exemplar or it does
    not actually reach ``hot_out`` (several leaves can share an
    output; orienting the wrong path would pessimize the hot flow)."""
    from ..classifier.tree import is_leaf, leaf_output

    if tree is None or not tree.exprs or exemplar is None:
        return ()
    path = []
    target = 1
    for _ in range(len(tree.exprs) + 1):
        expr = tree.exprs[target - 1]
        taken = expr.test(exemplar)
        path.append((target, taken))
        target = expr.yes if taken else expr.no
        if is_leaf(target):
            return tuple(path) if leaf_output(target) == hot_out else ()
    return ()


def router_trees(router):
    """``{name: tree}`` for every classifier element whose dispatch the
    chain compiler specializes (live-patchable tree walkers and the
    generated fast classifiers)."""
    from ..elements.classifiers import FastClassifierBase, _TreeClassifier

    trees = {}
    for name, element in router.elements.items():
        push = type(element).push
        if push is _TreeClassifier.push or push is FastClassifierBase.push:
            tree = getattr(element, "tree", None)
            if tree is not None:
                trees[name] = tree
    return trees


def trees_digest(trees):
    """Content digest over every live tree signature — the diagram-shape
    component of FDD cache keys.  A control-plane rules patch changes a
    tree without changing the graph fingerprint; this digest keeps the
    stale diagram entry from replaying."""
    canonical = sorted((name, tree.signature()) for name, tree in trees.items())
    return hashlib.sha256(repr(canonical).encode("utf-8")).hexdigest()[:16]


class FDDPolicy(ChainPolicy):
    """Tier 1 of FDD mode: the static policy plus whole-tree diagram
    emission for every classifier terminal, with cross-element fact
    fusion on every chain.  Plans are built eagerly so a cache-hit
    replay still carries them (for the diagram report and repatching)."""

    profiling = False
    tag = "fdd"
    fuse_facts = True

    def __init__(self, router, node_budget=DEFAULT_NODE_BUDGET):
        self.node_budget = node_budget
        self.trees = router_trees(router)
        self.digest = trees_digest(self.trees)
        self.plans = {}
        for name, tree in sorted(self.trees.items()):
            plan = self._build_plan(name, tree)
            if plan is not None:
                self.plans[name] = plan

    def _build_plan(self, name, tree):
        return build_diagram(tree, node_budget=self.node_budget)

    def cache_key(self):
        return ("fdd", self.node_budget, self.digest)

    def reuse_key(self):
        # Donor reuse across a rules patch: the dirty-set closure
        # already recompiles every chain that can reach the patched
        # classifier, and untouched closures see identical trees — so
        # the content digest must not veto the splice.
        return ("fdd", self.node_budget)

    def classifier_diagram(self, element):
        return self.plans.get(element.name)


class FDDProfilingPolicy(FDDPolicy):
    """The instrumented tier-1 flavor: identical diagrams plus the
    note hooks the profile store feeds on (diagram leaves note their
    output, the short-packet fallback notes the matcher's)."""

    profiling = True
    tag = "fdd-profiling"

    def __init__(self, router, store, node_budget=DEFAULT_NODE_BUDGET):
        super().__init__(router, node_budget=node_budget)
        self.store = store

    def cache_key(self):
        return ("fdd-profiling", self.node_budget, self.digest)

    def reuse_key(self):
        return ("fdd-profiling", self.node_budget)

    classifier_note = ProfilingPolicy.classifier_note
    route_note = ProfilingPolicy.route_note
    resolve = ProfilingPolicy.resolve


class FDDOptimizedPolicy(OptimizedPolicy):
    """Tier 2 of FDD mode: everything the adaptive optimized policy
    speculates (branch order, route/ARP constants, cold-arm pruning)
    plus profile-*ordered* diagrams — each test's hot side, per the
    profiled exemplar's root-to-leaf walk, becomes the fall-through.

    The per-element classifier guard is superseded wherever a plan
    exists (the diagram already puts the hot path first without the
    redundant pre-test); budget-fallback classifiers keep the guard."""

    tag = "fdd-optimized"
    fuse_facts = True

    def __init__(
        self,
        router,
        decisions,
        engine=None,
        exemplars=None,
        node_budget=DEFAULT_NODE_BUDGET,
    ):
        super().__init__(decisions, engine)
        self.node_budget = node_budget
        self.trees = router_trees(router)
        self.digest = trees_digest(self.trees)
        # Canonical (pos, taken) hot paths — not raw exemplar bytes —
        # so two runs profiling different packets of the same flow
        # shape produce the same cache key.
        self.hot_paths = {}
        for name, tree in sorted(self.trees.items()):
            decision = decisions.classifier.get(name)
            if not decision:
                continue
            hot_out = decision["order"][0]
            exemplar = (exemplars or {}).get(name, {}).get(hot_out)
            path = classifier_hot_path(tree, hot_out, exemplar)
            if path:
                self.hot_paths[name] = path
        self.plans = {}
        for name, tree in sorted(self.trees.items()):
            plan = build_diagram(
                tree,
                hot_path=dict(self.hot_paths.get(name, ())),
                node_budget=self.node_budget,
            )
            if plan is not None:
                self.plans[name] = plan
        canonical = sorted(self.hot_paths.items())
        self._hot_digest = hashlib.sha256(
            repr(canonical).encode("utf-8")
        ).hexdigest()[:16]

    def cache_key(self):
        return (
            "fdd-optimized",
            self.node_budget,
            self.digest,
            self.decisions.digest,
            self._hot_digest,
        )

    def reuse_key(self):
        return (
            "fdd-optimized",
            self.node_budget,
            self.decisions.digest,
            self._hot_digest,
        )

    def classifier_diagram(self, element):
        return self.plans.get(element.name)

    def classifier_guard(self, element):
        if element.name in self.plans:
            return None
        return super().classifier_guard(element)


class FDDEngine(AdaptiveEngine):
    """The FDD execution engine: the adaptive tiered engine with every
    policy swapped for its diagram-emitting counterpart.

    Tier 1 compiles each classifier's whole tree into its chains (with
    fact fusion down to the route lookup); the sampling dispatchers,
    promotion thresholds, guard-miss deopt and profile store are
    inherited unchanged.  Tier 2 re-emits the diagrams with
    profile-ordered tests and the usual route/ARP speculation.  A
    control-plane *rules* patch triggers :meth:`repatch_classifier` — a
    scoped rebuild that recompiles only the chains reaching the patched
    element and splices every other chain verbatim from the old
    compile; *route* patches fall through to the inherited deopt (the
    compiled lookup reads the live table, only speculation is stale).
    """

    mode_label = "fdd"
    tier_label = "fdd"

    def __init__(self, router, config=None, batch=False, node_budget=DEFAULT_NODE_BUDGET):
        self.node_budget = node_budget
        self.diagram_rebuilds = 0
        super().__init__(router, config=config, batch=batch)

    # -- policy factories --------------------------------------------------

    def _tier1_policy(self):
        return FDDPolicy(self.router, node_budget=self.node_budget)

    def _profiling_policy(self):
        return FDDProfilingPolicy(self.router, self.store, node_budget=self.node_budget)

    def _optimized_policy(self, decisions):
        return FDDOptimizedPolicy(
            self.router,
            decisions,
            engine=self,
            exemplars=self.store.classifier_exemplar,
            node_budget=self.node_budget,
        )

    # -- control-plane patching --------------------------------------------

    def on_table_patch(self, name, kind):
        if kind == "rules" and name in getattr(self.tier1.policy, "plans", {}):
            # The patched tree is baked into compiled diagrams; rebuild
            # just the chains that can reach it.
            self.repatch_classifier(name)
        else:
            # Route patches (and budget-fallback classifiers, which
            # dispatch through the live matcher cell) only invalidate
            # speculation; the inherited deopt is enough.
            super().on_table_patch(name, kind)

    def repatch_classifier(self, name):
        """Scoped diagram rebuild after a rules patch on ``name``:
        recompile tier 1 (both flavors) with the new tree, splicing
        every chain that cannot reach ``name`` verbatim from the old
        compile, then rearm the dispatchers and reattach supervision.
        Tier 2 and the profile restart cold, exactly as after a deopt."""
        router = self.router
        if self.metered:
            # Metered chains call the element's own push, which walks
            # the live tree — nothing baked, nothing to rebuild.
            self.deopt("control-plane patch of %s" % name, element_name=name)
            return
        supervisor = getattr(router, "supervisor", None)
        sup_config = supervisor.config if supervisor is not None else None
        was_installed = self.installed
        if supervisor is not None:
            supervisor.detach()
        old_tier1, old_profiled = self.tier1, self.profiled
        if was_installed:
            # Restore the reference ports *before* recompiling so the
            # new tier 1 saves them (not the old compiled ports) for
            # its own uninstall.
            self.uninstall()
        self.deopts.append("diagram repatch of %s" % name)
        self.store.reset()
        self._decisions_cache = None
        self.tier2_fp = None
        self._guard_counters = []
        self.states = {}
        self._reach_cache = {}
        self.diagram_rebuilds += 1
        router._fastpath_reuse = {
            "dirty": {name},
            "fastpaths": [old_tier1, old_profiled],
        }
        try:
            self.tier1 = FastPath(
                router,
                batch=self.batch,
                policy=self._tier1_policy(),
                cache=default_cache(),
            )
            self.profiled = FastPath(
                router,
                batch=self.batch,
                policy=self._profiling_policy(),
                cache=default_cache(),
            )
        finally:
            try:
                del router._fastpath_reuse
            except AttributeError:
                pass
        if was_installed:
            self.install()
        if supervisor is not None and was_installed:
            router._attach_supervisor(sup_config)

    # -- observability -----------------------------------------------------

    def diagram_report(self):
        """JSON-safe snapshot of the compiled diagrams: per-classifier
        node/path/gate counts, fused-test savings from the compile
        reports, rebuild history, and the codegen cache's hit rate."""
        policy = self.tier1.policy
        diagrams = {}
        totals = {"diagrams": 0, "nodes": 0, "paths": 0, "loads_saved": 0}
        for name, plan in sorted(getattr(policy, "plans", {}).items()):
            diagrams[name] = plan.as_dict()
            totals["diagrams"] += 1
            totals["nodes"] += plan.nodes
            totals["paths"] += plan.paths
            totals["loads_saved"] += plan.loads_saved
        fallbacks = sorted(
            set(getattr(policy, "trees", {})) - set(getattr(policy, "plans", {}))
        )
        report = {
            "mode": self.mode_label,
            "node_budget": self.node_budget,
            "diagrams": diagrams,
            "totals": totals,
            "budget_fallbacks": fallbacks,
            "rebuilds": self.diagram_rebuilds,
            "tier1": {
                "fdd_diagrams": self.tier1.report.fdd_diagrams,
                "fdd_nodes": self.tier1.report.fdd_nodes,
                "fdd_paths": self.tier1.report.fdd_paths,
                "fdd_tests_saved": self.tier1.report.fdd_tests_saved,
                "cache_hit": self.tier1.report.cache_hit,
            },
            "tier2": None,
            "codegen_cache": default_cache().stats(),
        }
        if self.tier2_fp is not None:
            tier2_policy = self.tier2_fp.policy
            report["tier2"] = {
                "fdd_diagrams": self.tier2_fp.report.fdd_diagrams,
                "fdd_nodes": self.tier2_fp.report.fdd_nodes,
                "fdd_paths": self.tier2_fp.report.fdd_paths,
                "fdd_tests_saved": self.tier2_fp.report.fdd_tests_saved,
                "cache_hit": self.tier2_fp.report.cache_hit,
                "hot_paths": {
                    name: len(path)
                    for name, path in sorted(
                        getattr(tier2_policy, "hot_paths", {}).items()
                    )
                },
            }
        return report
