"""RSS-style flow hashing: stable, seedable shard selection by flow key.

The sharded data plane (:mod:`repro.runtime.shard`) partitions ingress
frames across N worker shards the way receive-side scaling partitions
them across NIC queues: a hash of the flow identity — IPv4 source and
destination address, protocol, and (for TCP/UDP) the port pair — picks
the shard, so every packet of one flow always lands on the same worker
and per-flow ordering survives the fan-out.

Two properties are load-bearing and tested:

- **Process stability.**  The hash is ``zlib.crc32`` over the raw key
  bytes with an explicit seed — *never* Python's builtin ``hash()``,
  whose per-process randomization (PYTHONHASHSEED) would scatter one
  flow across different shards in different processes and silently
  break the multiprocessing backend's determinism.
- **Fragment co-sharding.**  IPv4 fragments carry no transport ports
  (only the first fragment does), so for any fragment — and, for
  consistency, for the whole datagram train — the key degrades to
  (proto, src, dst): every fragment of one datagram reaches the same
  shard, where reassembly-order-sensitive elements see them in arrival
  order.

Non-IP frames (ARP and friends) hash over the 14-byte Ethernet header,
which keeps e.g. all ARP traffic between one pair of stations on one
shard.

:func:`output_flow_key` is the *comparison* key the differential oracle
groups transmitted frames by — a refinement of the dispatch key (so one
output group is always produced by exactly one shard, hence internally
ordered) that additionally separates fragment trains by IP
identification and keys ICMP error messages by the *embedded* datagram
that provoked them.
"""

from __future__ import annotations

import zlib

__all__ = [
    "DEFAULT_SEED",
    "FlowHasher",
    "flow_key",
    "output_flow_key",
    "rendezvous_shard",
    "shard_of",
]

#: The default hash seed — an arbitrary odd constant, fixed so every
#: process (and every run) agrees on flow placement unless a caller
#: deliberately re-seeds.
DEFAULT_SEED = 0x5EED5EED

_ETHERTYPE_IP = 0x0800
_TCP = 6
_UDP = 17
#: ICMP types that embed the offending datagram (RFC 792): destination
#: unreachable, source quench, redirect, time exceeded, parameter
#: problem.  Their flow identity is the *inner* packet's.
_ICMP_ERROR_TYPES = (3, 4, 5, 11, 12)


def flow_key(frame):
    """The dispatch key for one Ethernet frame, as bytes.

    - IPv4 TCP/UDP, not a fragment: proto + src + dst + sport + dport
    - IPv4 fragment (MF set or offset non-zero), or no ports:
      proto + src + dst
    - anything else (ARP, short, non-IP): the 14-byte Ethernet header
    """
    if (
        len(frame) >= 34
        and frame[12] == 0x08
        and frame[13] == 0x00
        and frame[14] >> 4 == 4
    ):
        ihl = frame[14] & 0x0F
        proto = frame[23]
        addrs = frame[26:34]
        # Byte 20 carries the MF bit (0x20) and the offset's high bits
        # (0x1F); byte 21 the low offset bits.  DF (0x40) is not a
        # fragment indicator.
        if frame[20] & 0x3F or frame[21]:
            return b"\x04" + bytes((proto,)) + addrs
        if proto in (_TCP, _UDP):
            transport = 14 + ihl * 4
            if len(frame) >= transport + 4:
                return (
                    b"\x04" + bytes((proto,)) + addrs + frame[transport : transport + 4]
                )
        return b"\x04" + bytes((proto,)) + addrs
    return bytes(frame[:14])


def shard_of(frame, shards, seed=DEFAULT_SEED):
    """Which of ``shards`` workers owns this frame's flow."""
    if shards <= 1:
        return 0
    return zlib.crc32(flow_key(frame), seed) % shards


def rendezvous_shard(key, candidates, seed=DEFAULT_SEED):
    """Highest-random-weight (rendezvous) shard selection among an
    arbitrary *subset* of shards.

    The degraded-mode overlay: while shard ``i`` is down, its flows are
    re-homed onto the surviving ``candidates`` by scoring every
    (flow key, candidate) pair and taking the maximum.  Rendezvous
    hashing gives the two properties modular re-steering needs:

    - **Stability.** A flow's re-home target depends only on the flow
      key and the candidate set — not on arrival order or on which
      parent process computes it — so re-steered traffic stays per-flow
      sticky for as long as the candidate set holds.
    - **Minimal disruption.** When a second shard dies (or one
      recovers), only the flows scored onto the changed candidate move;
      flows homed elsewhere keep their placement, unlike a modulo over
      a shrunken count which reshuffles nearly everything.

    ``candidates`` is any non-empty iterable of shard indices; ties on
    the crc32 score break deterministically toward the lowest index.
    """
    best = None
    best_score = -1
    salted = zlib.crc32(bytes(key), seed)
    for index in sorted(candidates):
        score = zlib.crc32(index.to_bytes(4, "big"), salted)
        if score > best_score:
            best = index
            best_score = score
    if best is None:
        raise ValueError("rendezvous_shard needs at least one candidate shard")
    return best


class FlowHasher:
    """A seeded dispatcher: ``hasher(frame)`` -> shard index.

    Carrying the seed and shard count in one object keeps the hot
    dispatch loop free of default-argument plumbing, and lets the
    sharded router report exactly how traffic was partitioned.
    """

    __slots__ = ("shards", "seed")

    def __init__(self, shards, seed=DEFAULT_SEED):
        if shards < 1:
            raise ValueError("shards must be >= 1, not %r" % (shards,))
        self.shards = int(shards)
        self.seed = int(seed)

    def __call__(self, frame):
        if self.shards == 1:
            return 0
        return zlib.crc32(flow_key(frame), self.seed) % self.shards

    def key(self, frame):
        return flow_key(frame)

    def __repr__(self):
        return "FlowHasher(shards=%d, seed=0x%X)" % (self.shards, self.seed)


def _inner_flow(frame, offset, limit):
    """The flow tuple of an IP datagram embedded at ``offset`` (an ICMP
    error payload): (proto, src, dst, ports-or-b"").  None if it does
    not parse as IPv4."""
    if limit < offset + 20 or frame[offset] >> 4 != 4:
        return None
    ihl = frame[offset] & 0x0F
    proto = frame[offset + 9]
    addrs = bytes(frame[offset + 12 : offset + 20])
    ports = b""
    if proto in (_TCP, _UDP) and not (frame[offset + 6] & 0x1F or frame[offset + 7]):
        transport = offset + ihl * 4
        if limit >= transport + 4:
            ports = bytes(frame[transport : transport + 4])
    return (proto, addrs, ports)


def output_flow_key(frame):
    """The key the oracle groups *transmitted* frames by when comparing
    a sharded run against the single-shard reference.

    It refines :func:`flow_key` — every group maps into exactly one
    dispatch flow, so it is produced by one shard and its internal
    order is deterministic — while keeping groups fine enough that
    cross-flow interleaving never lands two shards' output in one
    group:

    - IPv4 fragments group per datagram: (src, dst, proto, IP id) —
      ports are absent from non-first fragments, and distinct datagrams
      (distinct ids) may interleave across runs of the fragmenter.
    - ICMP error messages group by the *embedded* datagram's flow —
      errors provoked by different flows (hence possibly different
      shards) share source/destination but must not share a group.
    - Non-IP frames (ARP) group by their full bytes: equal frames are
      interchangeable, so a group's sequence comparison degenerates to
      a count comparison, which the multiset check already covers.
    """
    if (
        len(frame) >= 34
        and frame[12] == 0x08
        and frame[13] == 0x00
        and frame[14] >> 4 == 4
    ):
        ihl = frame[14] & 0x0F
        proto = frame[23]
        addrs = bytes(frame[26:34])
        if frame[20] & 0x3F or frame[21]:
            return ("frag", addrs, proto, bytes(frame[18:20]))
        transport = 14 + ihl * 4
        if proto == 1 and len(frame) >= transport + 2:
            icmp_type = frame[transport]
            if icmp_type in _ICMP_ERROR_TYPES:
                inner = _inner_flow(frame, transport + 8, len(frame))
                if inner is not None:
                    return ("icmperr", inner)
        if proto in (_TCP, _UDP) and len(frame) >= transport + 4:
            return ("ip", proto, addrs, bytes(frame[transport : transport + 4]))
        return ("ip", proto, addrs)
    return ("raw", bytes(frame))
