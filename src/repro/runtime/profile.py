"""Execution profiles: one immutable value describing *how* a router
runs.

Five PRs grew the execution-mode surface one keyword at a time —
``set_mode(mode, batch)``, ``compile_fastpath(batch)``,
``attach_supervisor(config)``, ``hotswap(mode=, batch=,
**router_kwargs)`` — until every harness had to thread four loose
arguments through every layer.  :class:`ExecutionProfile` replaces the
sprawl: a frozen dataclass carrying the mode, the batch flavor, the
adaptive-engine configuration, and the supervision configuration, so a
whole execution regime travels as a single value.  ``Router.configure``
applies one; ``Router.profile`` reads the current one back; hot-swap and
the control plane carry one across router generations.

The legacy entry points (``Router.set_mode``,
``Router.attach_supervisor``, the loose ``Router(mode=...)``
constructor keywords) survive as thin shims that emit
``DeprecationWarning`` — the test suite promotes those to errors, so
in-tree code cannot regress onto them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .adaptive import AdaptiveConfig
from .recovery import RecoveryConfig
from .supervisor import SupervisorConfig

__all__ = ["ExecutionProfile", "TUNABLES"]

MODES = ("reference", "fast", "adaptive", "fdd")
SHARD_BACKENDS = ("thread", "process")

#: Parameter-space declaration for the autotuner (:mod:`repro.tune`):
#: the batch flavor is a profile-level knob, not an engine one.
TUNABLES = (
    {"name": "batch", "kind": "choice", "choices": [False, True], "default": False},
)


@dataclass(frozen=True)
class ExecutionProfile:
    """How a router executes: interpretation tier, batch flavor,
    adaptive-engine tuning, and supervision.

    Immutable and hashable-by-parts, so it can be carried across
    hot-swaps, stored in reports, and compared for equality.  Use
    :func:`dataclasses.replace` (or the ``with_*`` helpers) to derive
    variants.
    """

    mode: str = "reference"
    batch: bool = False
    adaptive: AdaptiveConfig | None = None
    supervised: bool = False
    supervisor: SupervisorConfig | None = None
    workers: int = 1
    shard_backend: str = "thread"
    #: Capacity of each shard's bounded SPSC handoff queue (thread
    #: backend); None means the backend default
    #: (:data:`repro.runtime.shard.DEFAULT_QUEUE_CAPACITY`).
    queue_capacity: int | None = None
    #: Split every bounded Click queue's capacity across the shards so
    #: aggregate capacity matches the single-plane router (the strict
    #: lossy-overflow contract; see docs/SHARDING.md).
    divide_capacity: bool = False
    #: FDD expansion budget for mode="fdd"; None means
    #: :data:`repro.runtime.fdd.DEFAULT_NODE_BUDGET`.
    node_budget: int | None = None
    #: Frames per pipelined chunk on the process shard backend; None
    #: means :data:`repro.runtime.shard.DEFAULT_CHUNK_FRAMES`.
    chunk_frames: int | None = None
    #: Self-healing for the sharded plane: a
    #: :class:`~repro.runtime.recovery.RecoveryConfig` turns on health
    #: detection, automatic restart with backoff, and the degraded-mode
    #: dispatch policy it names.  ``None`` keeps worker faults fatal.
    recovery: RecoveryConfig | None = None

    def __post_init__(self):
        if self.mode not in MODES:
            raise ValueError(
                "mode must be one of %s, not %r" % ("/".join(MODES), self.mode)
            )
        if self.batch and self.mode == "reference":
            raise ValueError(
                "batch dispatch requires mode 'fast', 'adaptive', or 'fdd'"
            )
        if self.adaptive is not None and not isinstance(self.adaptive, AdaptiveConfig):
            raise TypeError("adaptive must be an AdaptiveConfig or None")
        if self.supervisor is not None:
            if not isinstance(self.supervisor, SupervisorConfig):
                raise TypeError("supervisor must be a SupervisorConfig or None")
            # A supervision config implies supervision: normalize so
            # profile equality never depends on a redundant flag.
            object.__setattr__(self, "supervised", True)
        object.__setattr__(self, "batch", bool(self.batch))
        object.__setattr__(self, "supervised", bool(self.supervised))
        if not isinstance(self.workers, int) or isinstance(self.workers, bool):
            raise TypeError("workers must be an int, not %r" % (self.workers,))
        if self.workers < 1:
            raise ValueError("workers must be >= 1, not %d" % self.workers)
        if self.shard_backend not in SHARD_BACKENDS:
            raise ValueError(
                "shard_backend must be one of %s, not %r"
                % ("/".join(SHARD_BACKENDS), self.shard_backend)
            )
        for name in ("queue_capacity", "node_budget", "chunk_frames"):
            value = getattr(self, name)
            if value is None:
                continue
            if not isinstance(value, int) or isinstance(value, bool):
                raise TypeError("%s must be an int or None, not %r" % (name, value))
            if value < 1:
                raise ValueError("%s must be >= 1, not %d" % (name, value))
        object.__setattr__(self, "divide_capacity", bool(self.divide_capacity))
        if self.recovery is not None and not isinstance(self.recovery, RecoveryConfig):
            raise TypeError("recovery must be a RecoveryConfig or None")

    # -- constructors ------------------------------------------------------

    @classmethod
    def reference(cls, **kwargs):
        """The interpreting oracle."""
        return cls(mode="reference", **kwargs)

    @classmethod
    def fast(cls, batch=False, **kwargs):
        """The compiled fast path (optionally batched)."""
        return cls(mode="fast", batch=batch, **kwargs)

    @classmethod
    def tiered(cls, config=None, batch=False, **kwargs):
        """The adaptive tiered engine, optionally tuned by an
        :class:`AdaptiveConfig`."""
        return cls(mode="adaptive", adaptive=config, batch=batch, **kwargs)

    @classmethod
    def fdd(cls, config=None, batch=False, **kwargs):
        """The forwarding-decision-diagram engine: the tiered engine
        with classifier trees compiled into the chains as ordered
        decision diagrams (``config`` tunes the shared adaptive
        machinery)."""
        return cls(mode="fdd", adaptive=config, batch=batch, **kwargs)

    # -- derivation --------------------------------------------------------

    def with_supervision(self, config=None):
        """This profile, supervised (optionally with an explicit
        :class:`SupervisorConfig`)."""
        return replace(self, supervised=True, supervisor=config)

    def without_supervision(self):
        return replace(self, supervised=False, supervisor=None)

    def with_mode(self, mode, batch=None):
        """This profile running under a different execution tier."""
        batch = self.batch if batch is None else bool(batch)
        if mode == "reference":
            batch = False
        return replace(self, mode=mode, batch=batch)

    def with_workers(self, workers, backend=None, queue_capacity=None, divide_capacity=None):
        """This profile sharded across ``workers`` data-plane shards.
        ``backend`` selects ``"thread"`` or ``"process"`` workers;
        ``queue_capacity`` sizes each shard's bounded handoff queue;
        ``divide_capacity`` opts into splitting every bounded Click
        queue's capacity across the shards.  ``None`` keeps the current
        value for any of the three."""
        if backend is None:
            backend = self.shard_backend
        if queue_capacity is None:
            queue_capacity = self.queue_capacity
        if divide_capacity is None:
            divide_capacity = self.divide_capacity
        return replace(
            self,
            workers=workers,
            shard_backend=backend,
            queue_capacity=queue_capacity,
            divide_capacity=divide_capacity,
        )

    def with_recovery(self, policy="resteer", config=None, **knobs):
        """This profile with self-healing enabled on its sharded plane:
        an explicit :class:`~repro.runtime.recovery.RecoveryConfig`, or
        one built from ``policy`` and keyword knobs (``restart_budget``,
        ``backoff_base``, ``heartbeat_timeout``, ...)."""
        if config is None:
            config = RecoveryConfig(policy=policy, **knobs)
        return replace(self, recovery=config)

    def without_recovery(self):
        return replace(self, recovery=None)

    def with_tuning(self, tuned):
        """This profile with a searched knob assignment applied.

        ``tuned`` is a :class:`repro.tune.TunedProfile` (anything with a
        ``params`` mapping) or a raw params dict keyed by the dotted
        tunable names the runtime modules declare (``adaptive.*``,
        ``fdd.node_budget``, ``shard.queue_capacity``,
        ``shard.chunk_frames``, ``supervisor.*``, ``recovery.*``,
        ``batch``).  Unknown keys are ignored so artifacts stay
        forward-compatible.

        Construction-time shape is never changed: ``shard.workers`` is
        reported by the tuner but must be applied via
        :meth:`with_workers`; ``batch`` is dropped in reference mode
        (where it is invalid); ``supervisor.*`` applies only when the
        profile is supervised, and ``recovery.*`` only when a recovery
        config is already attached (:meth:`with_recovery`).
        """
        params = getattr(tuned, "params", tuned)
        changes = {}
        adaptive_kwargs = {
            key.split(".", 1)[1]: value
            for key, value in params.items()
            if key.startswith("adaptive.")
        }
        if adaptive_kwargs:
            base = self.adaptive.as_dict() if self.adaptive is not None else {}
            base.update(adaptive_kwargs)
            changes["adaptive"] = AdaptiveConfig(**base)
        if params.get("fdd.node_budget") is not None:
            changes["node_budget"] = int(params["fdd.node_budget"])
        if params.get("shard.queue_capacity") is not None:
            changes["queue_capacity"] = int(params["shard.queue_capacity"])
        if params.get("shard.chunk_frames") is not None:
            changes["chunk_frames"] = int(params["shard.chunk_frames"])
        if "batch" in params and self.mode != "reference":
            changes["batch"] = bool(params["batch"])
        supervisor_kwargs = {
            key.split(".", 1)[1]: value
            for key, value in params.items()
            if key.startswith("supervisor.")
        }
        if supervisor_kwargs and self.supervised:
            base = self.supervisor.as_dict() if self.supervisor is not None else {}
            base.update(supervisor_kwargs)
            changes["supervisor"] = SupervisorConfig(**base)
        recovery_kwargs = {
            key.split(".", 1)[1]: value
            for key, value in params.items()
            if key.startswith("recovery.")
        }
        if recovery_kwargs and self.recovery is not None:
            base = self.recovery.as_dict()
            base.update(recovery_kwargs)
            changes["recovery"] = RecoveryConfig(**base)
        if not changes:
            return self
        return replace(self, **changes)

    def shard_local(self):
        """The profile one shard runs under: identical execution tier,
        batch flavor, and supervision, but single-shard — what the
        sharded data plane hands each worker's inner router.  Recovery
        is stripped: self-healing is a property of the *plane*, not of
        any one shard's router."""
        if self.workers == 1 and self.shard_backend == "thread" and self.recovery is None:
            return self
        return replace(self, workers=1, shard_backend="thread", recovery=None)

    # -- presentation ------------------------------------------------------

    @property
    def label(self):
        """A compact human-readable tag, e.g. ``adaptive+batch+supervised``."""
        parts = [self.mode]
        if self.batch:
            parts.append("batch")
        if self.supervised:
            parts.append("supervised")
        if self.workers > 1:
            tag = "shard%d" % self.workers
            if self.shard_backend == "process":
                tag += "proc"
            parts.append(tag)
        if self.recovery is not None:
            parts.append("heal-%s" % self.recovery.policy)
        return "+".join(parts)

    def as_dict(self):
        """JSON-safe summary (configs by presence, not by value)."""
        return {
            "mode": self.mode,
            "batch": self.batch,
            "adaptive": self.adaptive is not None,
            "supervised": self.supervised,
            "supervisor": self.supervisor is not None,
            "workers": self.workers,
            "shard_backend": self.shard_backend,
            "queue_capacity": self.queue_capacity,
            "divide_capacity": self.divide_capacity,
            "node_budget": self.node_budget,
            "chunk_frames": self.chunk_frames,
            "recovery": self.recovery.policy if self.recovery is not None else None,
        }

    def __str__(self):
        return self.label
