"""Self-healing for the sharded data plane: health detection, automatic
restart with backoff, and degraded-mode flow re-steering.

The sharded plane (:mod:`repro.runtime.shard`) has had the *mechanisms*
of recovery since PR 7 — a per-shard command journal whose replay
reconstructs byte-identical shard state — but recovery itself was
operator-driven: a test harness called ``crash_worker`` by hand, and a
worker that died on its own silently blackholed its flows.  This module
closes the loop.  A :class:`RecoveryManager` rides along with every
``ShardedRouter`` whose profile carries a :class:`RecoveryConfig`, and
owns four jobs:

- **Detection.**  On the process backend, liveness is heartbeat-style:
  ``Process.is_alive()`` is polled at the top of every scheduler batch
  and every protocol ``recv`` waits at most ``heartbeat_timeout``
  seconds — a worker that neither answers nor exits is *hung* and gets
  reaped.  On the thread backend a dead worker cannot take the process
  with it, so detection is a watchdog progress deadline: the per-batch
  barrier polls each shard's sync event and declares the worker hung
  after ``watchdog_timeout`` seconds (the abandoned thread is fenced
  off by a generation counter so it can never touch rebuilt state).
- **Restart.**  A detected-down shard is rebuilt and its journal
  replayed, under seeded exponential backoff measured in *scheduler
  runs* (the plane's deterministic clock): attempt ``n`` waits
  ``min(backoff_base * backoff_factor**(n-1), backoff_limit)`` runs
  plus a seeded jitter draw.  ``restart_budget`` failed attempts trip
  the circuit breaker and bench the shard permanently.
- **Quarantine.**  A frame that kills the worker again during replay —
  attributed exactly, frame-by-frame — is not replayed forever: after
  ``quarantine_limit`` consecutive replay kills the frame is stripped
  from the journal, recorded as a :class:`QuarantineRecord` (the repro
  artifact), and dropped from all future dispatch.
- **Degraded dispatch.**  While a shard is down, its flows follow the
  profile's recovery *policy*: ``"buffer"`` (hold frames, bounded, and
  deliver them — journaled — the moment the shard returns; full
  per-flow order is preserved), ``"resteer"`` (re-home the flows onto
  survivors through a rendezvous overlay on
  :func:`repro.runtime.flowhash.rendezvous_shard`; per-flow order is
  preserved *from the re-home point*, and flows re-home back after
  recovery), or ``"fail-fast"`` (raise :class:`RecoveryError` — the
  explicit opt-out).  Benched shards re-steer under either non-fatal
  policy, since they are never coming back.

Everything the manager does is summarized by a :class:`RecoveryReport`
(detection latencies, MTTR in runs and seconds, restart/bench/
quarantine counts, frames re-steered/buffered/dropped), folded into
``ShardReport`` and the ``click-optimize``/``click-chaos`` CLIs.  The
degraded-mode wire contract is checked by
:func:`repro.verify.oracle.degraded_transmit_difference`.
"""

from __future__ import annotations

import random
import time

from .flowhash import DEFAULT_SEED, rendezvous_shard

__all__ = [
    "PoisonFrameError",
    "QuarantineRecord",
    "RECOVERY_POLICIES",
    "RecoveryConfig",
    "RecoveryError",
    "RecoveryManager",
    "RecoveryReport",
    "ReplayFrameError",
]

RECOVERY_POLICIES = ("buffer", "resteer", "fail-fast")


class RecoveryError(RuntimeError):
    """Recovery cannot proceed (no policy configured for a worker
    fault, a fail-fast policy met a down shard, or every shard is
    gone)."""


class PoisonFrameError(RuntimeError):
    """The exception an armed poison frame raises inside a thread-shard
    worker — the deterministic stand-in for a frame whose processing
    kills the worker."""

    def __init__(self, device, frame):
        self.device = device
        self.frame = bytes(frame)
        super().__init__(
            "poison frame (%d bytes) on %s killed the worker"
            % (len(self.frame), device)
        )


class ReplayFrameError(RuntimeError):
    """Journal replay died at an exactly attributed frame.

    Carries everything quarantine needs: the shard, the device the
    frame arrived on, the frame bytes, and the journal position as a
    ``(command index, frame index)`` pair.
    """

    def __init__(self, shard, device, frame, position, cause):
        self.shard = shard
        self.device = device
        self.frame = bytes(frame)
        self.position = tuple(position)
        self.cause = cause
        super().__init__(
            "shard %d replay killed by frame at journal position %r "
            "(device %s, %d bytes): %s"
            % (shard, self.position, device, len(self.frame), cause)
        )


class QuarantineRecord:
    """The repro record for one quarantined frame: enough to rebuild
    the failure (which shard, which device, the exact bytes, where in
    the journal it sat, and how many replays it killed first)."""

    __slots__ = ("shard", "device", "frame_hex", "position", "kills", "cause")

    def __init__(self, shard, device, frame, position, kills, cause):
        self.shard = int(shard)
        self.device = device
        self.frame_hex = bytes(frame).hex()
        self.position = tuple(position)
        self.kills = int(kills)
        self.cause = str(cause)

    def as_dict(self):
        data = {
            "cause": self.cause,
            "device": self.device,
            "frame_hex": self.frame_hex,
            "kills": self.kills,
            "position": list(self.position),
            "shard": self.shard,
        }
        return {key: data[key] for key in sorted(data)}

    def __repr__(self):
        return "QuarantineRecord(shard=%d, device=%r, %d bytes, kills=%d)" % (
            self.shard,
            self.device,
            len(self.frame_hex) // 2,
            self.kills,
        )


class RecoveryConfig:
    """Tuning knobs for detection, restart pacing, and degraded mode.

    Backoff is measured in scheduler runs — the sharded plane's
    deterministic clock — so a replayed trace heals at the same points
    every time; the three ``*_timeout`` knobs are wall-clock seconds,
    because hung-worker detection is inherently a real-time judgment.
    """

    __slots__ = (
        "policy",
        "restart_budget",
        "backoff_base",
        "backoff_factor",
        "backoff_limit",
        "jitter",
        "seed",
        "heartbeat_timeout",
        "watchdog_timeout",
        "prepare_timeout",
        "quarantine_limit",
        "buffer_limit",
        "max_records",
    )

    def __init__(
        self,
        policy="buffer",
        restart_budget=5,
        backoff_base=1,
        backoff_factor=2.0,
        backoff_limit=32,
        jitter=1,
        seed=DEFAULT_SEED,
        heartbeat_timeout=5.0,
        watchdog_timeout=5.0,
        prepare_timeout=5.0,
        quarantine_limit=2,
        buffer_limit=4096,
        max_records=64,
    ):
        if policy not in RECOVERY_POLICIES:
            raise ValueError(
                "recovery policy must be one of %s, not %r"
                % ("/".join(RECOVERY_POLICIES), policy)
            )
        self.policy = policy
        for name, value, low in (
            ("restart_budget", restart_budget, 1),
            ("backoff_base", backoff_base, 0),
            ("backoff_limit", backoff_limit, 1),
            ("jitter", jitter, 0),
            ("quarantine_limit", quarantine_limit, 1),
            ("buffer_limit", buffer_limit, 1),
            ("max_records", max_records, 1),
        ):
            if not isinstance(value, int) or isinstance(value, bool):
                raise TypeError("%s must be an int, not %r" % (name, value))
            if value < low:
                raise ValueError("%s must be >= %d, not %d" % (name, low, value))
            setattr(self, name, value)
        for name, value in (
            ("backoff_factor", backoff_factor),
            ("heartbeat_timeout", heartbeat_timeout),
            ("watchdog_timeout", watchdog_timeout),
            ("prepare_timeout", prepare_timeout),
        ):
            value = float(value)
            if not value > 0:
                raise ValueError("%s must be positive, not %r" % (name, value))
            setattr(self, name, value)
        self.seed = int(seed)

    def as_dict(self):
        data = {name: getattr(self, name) for name in self.__slots__}
        return {key: data[key] for key in sorted(data)}

    def __repr__(self):
        return "RecoveryConfig(policy=%r, restart_budget=%d)" % (
            self.policy,
            self.restart_budget,
        )


class _ShardHealth:
    """Per-shard recovery state: liveness, the backoff schedule, the
    degraded-mode buffer, and per-frame replay-kill counts."""

    __slots__ = (
        "index",
        "up",
        "benched",
        "bench_reason",
        "attempts",
        "restarts",
        "next_attempt_run",
        "kill_run",
        "down_run",
        "down_time",
        "down_reason",
        "buffer",
        "frame_kills",
        "singly",
    )

    def __init__(self, index):
        self.index = index
        self.up = True
        self.benched = False
        self.bench_reason = None
        self.attempts = 0  # consecutive failed restart attempts
        self.restarts = 0  # successful restarts over the shard's lifetime
        self.next_attempt_run = None
        self.kill_run = None  # when a fault hook killed it (detection base)
        self.down_run = None
        self.down_time = None
        self.down_reason = None
        self.buffer = []
        self.frame_kills = {}  # frame bytes -> consecutive replay kills
        self.singly = False  # next process replay runs frame-granular


class RecoveryManager:
    """Drives health detection, restart, and degraded dispatch for one
    :class:`~repro.runtime.shard.ShardedRouter`.

    The sharded router calls in at its natural seams —
    ``note_killed``/``note_dead`` at detection points, ``on_run_start``
    at the top of every scheduler batch, ``route_frame`` per dispatched
    frame — and provides the mechanics back (``_revive_shard``,
    ``_strip_journal_frame``, ``_deliver_buffered``).  The manager owns
    only policy and bookkeeping, so both backends share one recovery
    brain.
    """

    def __init__(self, router, config):
        self.router = router
        self.config = config
        self.workers = router.workers
        self._health = [_ShardHealth(index) for index in range(self.workers)]
        self._rngs = [
            random.Random(config.seed * 1000003 + index)
            for index in range(self.workers)
        ]
        self.quarantined = set()  # frame bytes dropped from all dispatch
        self.quarantine_records = []
        self.affected_flows = set()  # dispatch keys re-homed off a down shard
        self.detections = 0
        self.detection_latency_runs = []
        self.restart_attempts = 0
        self.restarts = 0
        self.mttr_runs = []
        self.mttr_seconds = []
        self.replay_depths = []
        self.frames_resteered = 0
        self.frames_buffered = 0
        self.buffer_drops = 0
        self.quarantine_drops = 0
        self.updates_recommitted = 0

    # -- liveness ----------------------------------------------------------

    def is_down(self, index):
        return not self._health[index].up

    def healthy_indices(self):
        return [health.index for health in self._health if health.up]

    def down_indices(self):
        """Down but not benched — shards recovery is still working on."""
        return [
            health.index
            for health in self._health
            if not health.up and not health.benched
        ]

    def benched_indices(self):
        return [health.index for health in self._health if health.benched]

    def note_killed(self, index):
        """A fault hook killed this worker; the *parent* does not act on
        this — detection happens at the next health seam, and the gap is
        the detection latency the report records."""
        health = self._health[index]
        if health.up and health.kill_run is None:
            health.kill_run = self.router._runs

    def note_dead(self, index, reason):
        """A health seam (barrier watchdog, heartbeat poll, protocol
        failure) found this worker dead or hung.  Marks it down and
        makes the first restart attempt due immediately."""
        health = self._health[index]
        if not health.up:
            return
        health.up = False
        health.down_run = self.router._runs
        health.down_time = time.monotonic()
        health.down_reason = reason
        health.attempts = 0
        health.next_attempt_run = health.down_run  # first attempt: no backoff
        self.detections += 1
        if len(self.detection_latency_runs) < self.config.max_records:
            base = health.kill_run if health.kill_run is not None else health.down_run
            self.detection_latency_runs.append(max(0, health.down_run - base))
        health.kill_run = None

    # -- degraded dispatch -------------------------------------------------

    def route_frame(self, home, name, frame):
        """Where one ingress frame goes while the plane is (possibly)
        degraded: its home shard when healthy, a rendezvous survivor or
        the buffer when not, ``None`` when the frame was consumed
        (buffered or dropped)."""
        if self.quarantined and bytes(frame) in self.quarantined:
            self.quarantine_drops += 1
            return None
        health = self._health[home]
        if health.up:
            return home
        policy = self.config.policy
        if policy == "fail-fast":
            raise RecoveryError(
                "shard %d is down (%s) under the fail-fast recovery policy"
                % (home, health.down_reason)
            )
        if policy == "resteer" or health.benched:
            healthy = self.healthy_indices()
            if not healthy:
                raise RecoveryError("no healthy shards left to re-steer onto")
            key = bytes(self.router.hasher.key(frame))
            # Record the re-homed flow: the degraded-contract oracle
            # holds exactly these flows to the weaker (multiset-only)
            # guarantee and everything else to strict per-flow order.
            self.affected_flows.add(key)
            target = rendezvous_shard(key, healthy, self.config.seed)
            self.frames_resteered += 1
            return target
        if len(health.buffer) >= self.config.buffer_limit:
            self.buffer_drops += 1
            return None
        health.buffer.append((name, frame))
        self.frames_buffered += 1
        return None

    # -- restart scheduling ------------------------------------------------

    def on_run_start(self):
        """Called at the top of every scheduler batch: attempt every
        restart whose backoff delay has elapsed."""
        now = self.router._runs
        for health in self._health:
            if health.up or health.benched:
                continue
            if health.next_attempt_run is not None and now >= health.next_attempt_run:
                self.attempt_restart(health.index)

    def _schedule_backoff(self, health):
        config = self.config
        delay = min(
            config.backoff_base * config.backoff_factor ** max(0, health.attempts - 1),
            config.backoff_limit,
        )
        delay = int(delay) + (
            self._rngs[health.index].randrange(config.jitter + 1)
            if config.jitter
            else 0
        )
        health.next_attempt_run = self.router._runs + max(1, delay)

    def bench(self, index, reason):
        """Trip the circuit breaker: the shard is out of the rotation
        for good; its flows re-steer (or fail fast) from here on."""
        health = self._health[index]
        health.benched = True
        health.bench_reason = reason
        health.next_attempt_run = None
        if health.buffer:
            # Buffered frames re-steer now that the shard is never
            # coming back; counters already counted them as buffered.
            buffered, health.buffer = health.buffer, []
            self.router._redispatch(buffered)

    def attempt_restart(self, index, force=False):
        """One restart attempt (or a forced chain of them): rebuild the
        shard and replay its journal, quarantining exactly attributed
        killer frames and benching the shard once the restart budget is
        gone.  Returns True when the shard came back up."""
        health = self._health[index]
        if health.up:
            return True
        if health.benched:
            return False
        router = self.router
        while True:
            self.restart_attempts += 1
            try:
                router._revive_shard(index, singly=health.singly)
            except ReplayFrameError as exc:
                health.attempts += 1
                key = bytes(exc.frame)
                kills = health.frame_kills.get(key, 0) + 1
                health.frame_kills[key] = kills
                if kills >= self.config.quarantine_limit:
                    self._quarantine(exc, kills)
                    continue  # journal is clean of the killer; retry now
            except Exception as exc:  # noqa: BLE001 - unattributed death
                health.attempts += 1
                if router.backend == "process" and not health.singly:
                    # Re-run the replay frame-granular so a killer frame
                    # (if that is what this was) gets attributed.
                    health.singly = True
                    continue
                health.down_reason = "%s: %s" % (type(exc).__name__, exc)
            else:
                self._mark_recovered(health)
                return True
            if health.attempts >= self.config.restart_budget:
                self.bench(
                    index,
                    "restart budget (%d) exhausted: %s"
                    % (self.config.restart_budget, health.down_reason),
                )
                return False
            if not force:
                self._schedule_backoff(health)
                return False

    def _mark_recovered(self, health):
        health.up = True
        health.restarts += 1
        health.attempts = 0
        health.singly = False
        health.frame_kills = {}
        health.next_attempt_run = None
        self.restarts += 1
        if len(self.mttr_runs) < self.config.max_records:
            self.mttr_runs.append(self.router._runs - health.down_run)
            self.mttr_seconds.append(
                round(time.monotonic() - health.down_time, 6)
            )
        if len(self.replay_depths) < self.config.max_records:
            self.replay_depths.append(len(self.router._journals[health.index]))
        health.down_run = None
        health.down_time = None
        health.down_reason = None
        if health.buffer:
            buffered, health.buffer = health.buffer, []
            self.router._deliver_buffered(health.index, buffered)

    def _quarantine(self, exc, kills):
        """Strip the attributed killer frame from the shard's journal,
        record the repro, and drop it from all future dispatch."""
        self.router._strip_journal_frame(exc.shard, exc.position)
        self.quarantined.add(bytes(exc.frame))
        if len(self.quarantine_records) < self.config.max_records:
            self.quarantine_records.append(
                QuarantineRecord(
                    exc.shard, exc.device, exc.frame, exc.position, kills, exc.cause
                )
            )

    def note_recommitted(self, count=1):
        self.updates_recommitted += count

    # -- observability -----------------------------------------------------

    def report(self):
        return RecoveryReport(self)


class RecoveryReport:
    """JSON-safe snapshot of the recovery manager's lifetime: what went
    down, how fast it was caught, how long it took to come back, and
    what degraded mode did to the traffic in between."""

    def __init__(self, manager):
        config = manager.config
        self.policy = config.policy
        self.config = config.as_dict()
        self.workers = manager.workers
        self.detections = manager.detections
        self.detection_latency_runs = list(manager.detection_latency_runs)
        self.restart_attempts = manager.restart_attempts
        self.restarts = manager.restarts
        self.mttr_runs = list(manager.mttr_runs)
        self.mttr_seconds = list(manager.mttr_seconds)
        self.replay_depths = list(manager.replay_depths)
        self.down = sorted(manager.down_indices())
        self.benched = sorted(manager.benched_indices())
        self.bench_reasons = {
            health.index: health.bench_reason
            for health in manager._health
            if health.benched
        }
        self.shard_restarts = [health.restarts for health in manager._health]
        self.frames_resteered = manager.frames_resteered
        self.affected_flows = len(manager.affected_flows)
        self.frames_buffered = manager.frames_buffered
        self.buffer_drops = manager.buffer_drops
        self.quarantine_drops = manager.quarantine_drops
        self.updates_recommitted = manager.updates_recommitted
        self.quarantined = [
            record.as_dict() for record in manager.quarantine_records
        ]

    def as_dict(self):
        data = {
            "affected_flows": self.affected_flows,
            "bench_reasons": {
                str(key): self.bench_reasons[key] for key in sorted(self.bench_reasons)
            },
            "benched": list(self.benched),
            "buffer_drops": self.buffer_drops,
            "config": self.config,
            "detection_latency_runs": list(self.detection_latency_runs),
            "detections": self.detections,
            "down": list(self.down),
            "frames_buffered": self.frames_buffered,
            "frames_resteered": self.frames_resteered,
            "mttr_runs": list(self.mttr_runs),
            "mttr_seconds": list(self.mttr_seconds),
            "policy": self.policy,
            "quarantine_drops": self.quarantine_drops,
            "quarantined": list(self.quarantined),
            "replay_depths": list(self.replay_depths),
            "restart_attempts": self.restart_attempts,
            "restarts": self.restarts,
            "shard_restarts": list(self.shard_restarts),
            "updates_recommitted": self.updates_recommitted,
            "workers": self.workers,
        }
        return {key: data[key] for key in sorted(data)}

    def format(self):
        lines = [
            "recovery (%s): %d detection(s), %d restart(s) in %d attempt(s), "
            "%d shard(s) benched"
            % (
                self.policy,
                self.detections,
                self.restarts,
                self.restart_attempts,
                len(self.benched),
            )
        ]
        if self.detection_latency_runs:
            lines.append(
                "  detection latency: %s run(s); MTTR: %s run(s)"
                % (self.detection_latency_runs, self.mttr_runs)
            )
        if self.frames_resteered or self.frames_buffered:
            lines.append(
                "  degraded traffic: %d re-steered, %d buffered (%d buffer drop(s))"
                % (self.frames_resteered, self.frames_buffered, self.buffer_drops)
            )
        if self.quarantined:
            lines.append(
                "  quarantined %d poison frame(s) (%d dispatch drop(s))"
                % (len(self.quarantined), self.quarantine_drops)
            )
        if self.updates_recommitted:
            lines.append(
                "  %d control-plane command(s) recommitted via replay"
                % self.updates_recommitted
            )
        for index in self.benched:
            lines.append(
                "  shard %d benched: %s" % (index, self.bench_reasons.get(index))
            )
        return "\n".join(lines)
