"""The sharded multi-worker data plane: N compiled routers behind an
RSS-style flow-hash dispatcher.

A :class:`ShardedRouter` partitions ingress traffic by flow key
(:mod:`repro.runtime.flowhash`) across ``profile.workers`` shards, each
owning a *full* router — built from the same configuration graph, run
under the same shard-local :class:`~repro.runtime.profile.ExecutionProfile`
(reference, fast, batch, adaptive, or supervised) — and reconciles the
shards' transmitted frames, element counters, and CycleMeters back into
one externally observable surface.

Two backends, selected by ``profile.shard_backend``:

- ``"thread"`` — in-process worker threads fed through bounded
  :class:`SPSCQueue` handoff queues, with a barrier after every
  scheduler batch.  Deterministic by construction (shard state merges
  in shard order at quiescence), which is what the differential oracle
  runs; parallel speedup is not the point here, equivalence is.
- ``"process"`` — ``multiprocessing`` (spawn) workers, each building
  its own router from the configuration *text* and rehydrating compiled
  chains from the codegen cache's validated disk layer
  (:meth:`~repro.runtime.codegen_cache.CodegenCache.save`), so the
  compile is paid once.  Frame batches pipeline to the workers in
  chunks so the parent's hashing/serialization overlaps shard
  execution — this is the backend the 1→N scale curve measures.

Ordering semantics: per-flow order is preserved (a flow maps to one
shard; the handoff queues and per-shard routers are FIFO); cross-flow,
cross-shard order is **not**.  The oracle therefore compares sharded
output per-flow byte-identical plus per-device multiset-identical
(:func:`repro.verify.oracle.sharded_transmit_difference`), never as one
global sequence.

Control-plane operations fan out to every shard: ARP inserts, epoch
bumps, forced deopts, hot-swaps, and — via :meth:`ShardedRouter.apply_update`
— incremental updates, which commit *transactionally*: a pure-data
delta is staged on every shard (all parsing and validation, no
mutation) and only then committed everywhere, so a rejected update
leaves all shards serving the old tables; a structural delta hot-swaps
shard by shard with rollback on failure.

Worker faults: ``worker_crash`` faults (:mod:`repro.sim.faults`) kill a
shard; recovery respawns it and replays the shard's command journal —
every frame batch, scheduler run, transmit-window mirror, and control
operation since birth — which, everything being deterministic,
reconstructs byte-identical shard state (the device-fail analog with a
supervisor-grade recovery story).

Cross-worker safety notes (the audit the thread backend forced):
``ELEMENT_CLASSES`` is a read-only registry after import; the dest-IP
intern cache (:data:`repro.net.packet._DEST_IP_CACHE`) is only touched
via single dict operations, which the GIL keeps atomic; the process-wide
codegen cache now serializes mutation behind an RLock (adaptive tier-2
recompiles can run on worker threads).  Shards share no mutable runtime
state — each has its own elements, devices, meter, and engine.
"""

from __future__ import annotations

import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import replace

from .flowhash import DEFAULT_SEED, FlowHasher
from .profile import ExecutionProfile

__all__ = [
    "DEFAULT_CHUNK_FRAMES",
    "DEFAULT_QUEUE_CAPACITY",
    "SPSCQueue",
    "ShardReport",
    "ShardedRouter",
    "TUNABLES",
    "divide_queue_capacities",
]

#: Default capacity of the bounded SPSC handoff queues (thread
#: backend).  Overridable per plane via
#: ``ExecutionProfile.with_workers(..., queue_capacity=...)``.
DEFAULT_QUEUE_CAPACITY = 256

#: Default frames per pipelined chunk on the process backend
#: (``ExecutionProfile.chunk_frames`` or the ``chunk_frames``
#: constructor keyword override it).
DEFAULT_CHUNK_FRAMES = 2048

#: Parameter-space declarations for the autotuner (:mod:`repro.tune`).
#: ``shard.workers`` is declared here so the space covers the whole
#: dispatch surface, but it is construction-time: the default search
#: pins it to the target plane's worker count, and
#: ``ExecutionProfile.with_tuning`` never applies it (use
#: ``with_workers``).
TUNABLES = (
    {
        "name": "shard.queue_capacity",
        "kind": "choice",
        "choices": [32, 64, 128, 256, 512, 1024, 2048],
        "default": DEFAULT_QUEUE_CAPACITY,
    },
    {
        "name": "shard.chunk_frames",
        "kind": "log_int",
        "low": 256,
        "high": 8192,
        "default": DEFAULT_CHUNK_FRAMES,
    },
    {"name": "shard.workers", "kind": "choice", "choices": [1, 2, 4, 8], "default": 1},
)

_DEVICE_CLASSES = ("PollDevice", "FromDevice", "ToDevice")

#: Element classes whose single argument is a bounded packet-queue
#: capacity — the queues ``divide_capacity`` splits across shards.
_BOUNDED_QUEUE_CLASSES = ("Queue", "FrontDropQueue")
#: Shard-local loopback devices never limit transmit on their own; the
#: parent mirrors the real device's window into ``tx_capacity`` before
#: every scheduler batch.
_SHARD_TX_CAPACITY = 1 << 30


class SPSCQueue:
    """A bounded single-producer single-consumer handoff queue.

    The parent (producer) enqueues command tuples; one worker
    (consumer) drains them.  ``put`` blocks when the queue is full —
    bounded capacity is the backpressure contract: a slow shard slows
    the dispatcher instead of growing an unbounded backlog.
    """

    __slots__ = ("_items", "_capacity", "_lock", "_not_empty", "_not_full", "high_water")

    def __init__(self, capacity=DEFAULT_QUEUE_CAPACITY):
        if capacity < 1:
            raise ValueError("capacity must be >= 1, not %r" % (capacity,))
        self._items = []
        self._capacity = capacity
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self.high_water = 0

    def put(self, item):
        with self._not_full:
            while len(self._items) >= self._capacity:
                self._not_full.wait()
            self._items.append(item)
            if len(self._items) > self.high_water:
                self.high_water = len(self._items)
            self._not_empty.notify()

    def get(self):
        with self._not_empty:
            while not self._items:
                self._not_empty.wait()
            item = self._items.pop(0)
            self._not_full.notify()
            return item

    def __len__(self):
        with self._lock:
            return len(self._items)


def _device_names_of(graph, devices=None):
    """The device names the shard mirrors, in deterministic flush
    order.  When the plane was handed a ``devices`` dict its keys are
    authoritative — element classes may have been renamed by the
    optimizers (``Devirtualize@@td`` still binds ``eth1``), so scanning
    declarations by class name only works on unoptimized graphs and is
    kept as the fallback when no devices were attached."""
    if devices:
        return list(devices)
    names = []
    for decl in graph.elements.values():
        if decl.class_name in _DEVICE_CLASSES:
            name = decl.config.split(",")[0].strip()
            if name and name not in names:
                names.append(name)
    return names


def divide_queue_capacities(graph, index, workers):
    """Shard ``index``'s view of ``graph`` under divide-capacity mode:
    every bounded queue's capacity is split across the ``workers``
    shards — floor share each, remainder to the lowest indices — so the
    plane's *aggregate* queue capacity matches the single-plane router
    and load-dependent loss stays within the sharding contract.

    Returns a fresh graph (text round trip; the caller's graph is the
    undivided source of truth).  A queue whose capacity is below the
    worker count cannot be divided without exceeding the single plane's
    aggregate (every shard queue needs at least one slot), so that
    raises.  Queue declarations whose argument is not a plain integer
    are left alone — the shard build will report them exactly as a
    single-plane build would.
    """
    if workers <= 1:
        return graph
    from ..core.toolchain import load_config, save_config
    from ..elements.infrastructure import Queue

    divided = load_config(save_config(graph), "<shard-divide>")
    for decl in divided.elements.values():
        if decl.class_name not in _BOUNDED_QUEUE_CLASSES:
            continue
        config = (decl.config or "").strip()
        try:
            capacity = int(config) if config else Queue.DEFAULT_CAPACITY
        except ValueError:
            continue
        if capacity < workers:
            from ..errors import ClickSemanticError

            raise ClickSemanticError(
                "divide_capacity cannot split %s(%d) across %d shards; "
                "every bounded queue needs capacity >= the worker count"
                % (decl.name, capacity, workers)
            )
        share = capacity // workers + (1 if index < capacity % workers else 0)
        decl.config = str(share)
    return divided


def _meter_delta(current, previous):
    """current - previous for two CycleMeter summaries (all fields are
    monotonic counts, so the delta is well-defined)."""
    delta = {}
    for key, value in current.items():
        if key == "dynamic":
            prev = previous.get("dynamic", {})
            delta[key] = {k: v - prev.get(k, 0) for k, v in value.items()}
        else:
            delta[key] = value - previous.get(key, 0)
    return delta


class ShardReport:
    """What the sharded data plane did: dispatch balance, flushes,
    crashes and journal replays, per-shard supervision summaries."""

    def __init__(self):
        self.workers = 0
        self.backend = "thread"
        self.seed = DEFAULT_SEED
        self.dispatched = []
        self.flushed = 0
        self.runs = 0
        self.updates = 0
        self.crashes = 0
        self.replays = 0
        self.queue_high_water = []
        self.supervisors = {}
        self.meter = None

    def as_dict(self):
        data = {
            "workers": self.workers,
            "backend": self.backend,
            "seed": self.seed,
            "dispatched": list(self.dispatched),
            "flushed": self.flushed,
            "runs": self.runs,
            "updates": self.updates,
            "crashes": self.crashes,
            "replays": self.replays,
            "queue_high_water": list(self.queue_high_water),
        }
        if self.supervisors:
            data["supervisors"] = dict(self.supervisors)
        if self.meter is not None:
            data["meter"] = self.meter
        return data

    def format(self):
        lines = [
            "sharded data plane: %d worker(s), %s backend, seed 0x%X"
            % (self.workers, self.backend, self.seed),
            "  dispatched per shard: %s" % (self.dispatched,),
            "  flushed %d frame(s) over %d scheduler batch(es)"
            % (self.flushed, self.runs),
        ]
        if self.crashes:
            lines.append(
                "  %d worker crash(es), %d journal replay(s)"
                % (self.crashes, self.replays)
            )
        return "\n".join(lines)


class _ThreadShard:
    """One in-process shard: its router, devices, meter, worker thread,
    and flush bookkeeping."""

    __slots__ = (
        "index",
        "router",
        "devices",
        "meter",
        "queue",
        "thread",
        "worked",
        "error",
        "flushed",
        "meter_snapshot",
    )

    def __init__(self, index, queue_capacity=DEFAULT_QUEUE_CAPACITY):
        self.index = index
        self.router = None
        self.devices = None
        self.meter = None
        self.queue = SPSCQueue(queue_capacity)
        self.thread = None
        self.worked = 0
        self.error = None
        self.flushed = {}
        self.meter_snapshot = {}


class _ProcessShard:
    """One multiprocessing shard: its process handle, pipe, and the
    parent-side mirror of its flush counters."""

    __slots__ = ("index", "process", "conn", "worked", "flushed", "meter_snapshot")

    def __init__(self, index):
        self.index = index
        self.process = None
        self.conn = None
        self.worked = 0
        self.flushed = {}
        self.meter_snapshot = {}

    def recv(self):
        try:
            return self.conn.recv()
        except (EOFError, ConnectionResetError, BrokenPipeError) as exc:
            exitcode = self.process.exitcode if self.process is not None else None
            raise RuntimeError(
                "shard worker %d died mid-protocol (exit code %r); if this "
                "happened at startup, the spawn backend re-imports __main__ "
                "— entry scripts need an if __name__ == '__main__' guard"
                % (self.index, exitcode)
            ) from exc


class _FanoutElementProxy:
    """Stands in for a named element on a sharded router: control-plane
    writes (ARP ``insert``) fan out to every shard's instance."""

    __slots__ = ("_sharded", "_name")

    def __init__(self, sharded, name):
        self._sharded = sharded
        self._name = name

    @property
    def name(self):
        return self._name

    def insert(self, ip, ether):
        self._sharded._fanout_insert(self._name, ip, ether)

    def __repr__(self):
        return "<fanout %s across %d shard(s)>" % (
            self._name,
            self._sharded.workers,
        )


def _apply_shard_control(router, devices, cmd, divider=None):
    """Apply one journaled control command to a single shard's router;
    returns the (possibly new) router.  Used both on the live path and
    during crash-replay, so it must be deterministic.  ``divider`` is
    the shard's divide-capacity transform (or None): journaled
    configurations are always the *undivided* text, so every path that
    materializes a graph on a shard runs it through the divider."""
    op = cmd[0]
    if op == "insert":
        element = router.find(cmd[1])
        if element is not None and hasattr(element, "insert"):
            element.insert(cmd[2], cmd[3])
    elif op == "bump_epochs":
        router.bump_arp_epochs()
    elif op == "deopt":
        router.force_deopt()
    elif op == "configure":
        router.configure(cmd[1].shard_local())
    elif op == "mirror":
        for name, capacity in cmd[1].items():
            device = devices.get(name)
            if device is not None and hasattr(device, "tx_capacity"):
                device.tx_capacity = capacity
    elif op == "hotswap":
        from ..core.toolchain import load_config
        from ..elements.hotswap import hotswap

        new_graph = load_config(cmd[1], "<shard-hotswap>")
        if divider is not None:
            new_graph = divider(new_graph)
        router = hotswap(router, new_graph).router
    elif op == "update":
        from ..control import ControlPlane

        update = cmd[1]
        if divider is not None:
            from ..core.toolchain import load_config

            update = divider(load_config(update, "<shard-update>"))
        plane = ControlPlane(router)
        plane.apply(update)
        router = plane.router
    else:
        raise ValueError("unknown shard control command %r" % (op,))
    return router


def _process_shard_main(
    conn, config_text, profile, device_names, cache_path, metered=False, shard_index=0
):
    """The multiprocessing worker: build one shard's router from the
    configuration text (rehydrating compiled chains from the shipped
    codegen-cache file) and serve the parent's command stream.  With
    ``metered`` the shard runs under its own CycleMeter, whose summary
    rides back on every ``collect`` for the parent to absorb.  The
    parent always ships *undivided* configuration text; under
    divide-capacity mode the worker derives its own shard view from
    ``shard_index`` and the profile's worker count."""
    from ..core.toolchain import load_config
    from ..elements.devices import LoopbackDevice
    from ..elements.runtime import build_router
    from .codegen_cache import default_cache

    if cache_path:
        try:
            default_cache().load(cache_path)
        except Exception:  # noqa: BLE001 - a bad cache file is survivable
            pass
    devices = OrderedDict(
        (name, LoopbackDevice(name, tx_capacity=_SHARD_TX_CAPACITY))
        for name in device_names
    )
    meter = None
    if metered:
        from ..sim.cpu import CycleMeter

        meter = CycleMeter()
    divider = None
    if profile.divide_capacity and profile.workers > 1:

        def divider(graph, _index=shard_index, _workers=profile.workers):
            return divide_queue_capacities(graph, _index, _workers)

    graph = load_config(config_text, "<shard>")
    if divider is not None:
        graph = divider(graph)
    router = build_router(
        graph,
        devices=devices,
        meter=meter,
        profile=profile.shard_local(),
    )
    flushed = {name: 0 for name in device_names}
    worked = 0
    pending_error = None
    staged = None  # (plane, staged batch, delta) between stage and commit
    while True:
        try:
            cmd = conn.recv()
        except (EOFError, OSError):
            break
        op = cmd[0]
        try:
            if op == "frames":
                for name, frame in cmd[1]:
                    devices[name].receive_frame(frame)
            elif op == "run":
                worked += router.run_tasks(cmd[1])
            elif op == "mirror":
                for name, capacity in cmd[1].items():
                    devices[name].tx_capacity = capacity
            elif op in ("insert", "bump_epochs", "deopt", "configure", "hotswap", "update"):
                router = _apply_shard_control(router, devices, cmd, divider=divider)
            elif op == "update_stage":
                from ..control import ControlPlane, ControlPlaneError

                plane = ControlPlane(router)
                try:
                    update = cmd[1]
                    if divider is not None:
                        update = divider(load_config(update, "<shard-update>"))
                    delta, _new_graph = plane.resolve(update)
                    if delta.empty:
                        conn.send(("staged", "empty"))
                    elif delta.structural:
                        conn.send(("staged", "structural"))
                    else:
                        batch = plane.stage_patch(delta)
                        if batch is None:
                            conn.send(("staged", "structural"))
                        else:
                            staged = (plane, batch, delta)
                            conn.send(("staged", "ok"))
                except ControlPlaneError as exc:
                    staged = None
                    conn.send(("staged", "rejected", str(exc)))
            elif op == "update_commit":
                plane, batch, delta = staged
                plane.commit_patch(batch, delta)
                router = plane.router
                staged = None
                conn.send(("committed",))
            elif op == "update_abort":
                staged = None
            elif op == "set_flushed":
                flushed = dict(cmd[1])
            elif op == "sync":
                conn.send(("synced", worked, pending_error))
                worked = 0
                pending_error = None
            elif op == "collect":
                fresh = {}
                for name in device_names:
                    frames = devices[name].transmitted
                    start = flushed[name]
                    if len(frames) > start:
                        fresh[name] = frames[start:]
                        flushed[name] = len(frames)
                meter = router.meter.summary() if router.meter is not None else None
                conn.send(("collected", fresh, meter))
            elif op == "counters":
                values = {}
                for name, element in sorted(router.elements.items()):
                    for handler, fn in sorted(element.read_handlers().items()):
                        value = fn()
                        if not isinstance(value, (int, float, str, bool, type(None))):
                            value = repr(value)
                        values["%s.%s" % (name, handler)] = value
                conn.send(("counters", values))
            elif op == "report":
                supervisor = router.supervisor
                conn.send(
                    ("report", supervisor.report().as_dict() if supervisor else None)
                )
            elif op == "stop":
                conn.send(("stopped",))
                break
        except Exception as exc:  # noqa: BLE001 - delivered at next sync
            pending_error = (type(exc).__name__, str(exc))
    conn.close()


class ShardedRouter:
    """Hash-sharded fan-out over N full routers.

    Mirrors the single-router driving surface — ``run_tasks``,
    ``find``/``insert`` fan-out, ``bump_arp_epochs``, ``force_deopt``,
    ``configure``/``profile``, ``retire`` — plus the sharded extras:
    :meth:`apply_update` (transactional control-plane commit across all
    shards), :meth:`hotswap_all`, :meth:`crash_worker` (fault-injection
    hook), :meth:`merged_counters`, and :meth:`report`.

    Built by :func:`repro.elements.runtime.build_router` whenever the
    profile carries ``workers > 1``; a plain ``Router`` refuses such a
    profile.  Shards (and worker threads/processes) start lazily on the
    first operation, so a fault injector can attach first.
    """

    is_sharded = True

    def __init__(
        self,
        graph,
        extra_classes=None,
        meter=None,
        devices=None,
        profile=None,
        hash_seed=DEFAULT_SEED,
        journal=None,
        chunk_frames=None,
    ):
        from ..errors import ClickSemanticError

        if graph.element_classes:
            raise ClickSemanticError(
                "sharded router requires a flattened configuration "
                "(compound classes remain: %s)" % ", ".join(graph.element_classes)
            )
        self.graph = graph
        self.meter = meter
        self.devices = {} if devices is None else devices
        self._extra_classes = extra_classes
        self._profile = profile if profile is not None else ExecutionProfile()
        self.hash_seed = int(hash_seed)
        if chunk_frames is None:
            chunk_frames = self._profile.chunk_frames or DEFAULT_CHUNK_FRAMES
        self.chunk_frames = int(chunk_frames)
        self._queue_capacity = self._profile.queue_capacity or DEFAULT_QUEUE_CAPACITY
        self.fault_injector = None
        self.retired = False
        self._started = False
        self._journal_flag = journal
        self._journals = []
        self._shards = []
        self._device_names = _device_names_of(graph, self.devices)
        self._dispatched = []
        self._flushed_total = 0
        self._runs = 0
        self._updates = 0
        self._crashes = 0
        self._replays = 0
        self._cache_path = None
        self._final_report = None
        self.hasher = FlowHasher(max(1, self._profile.workers), self.hash_seed)

    # -- profile surface ---------------------------------------------------

    @property
    def workers(self):
        return self._profile.workers

    @property
    def backend(self):
        return self._profile.shard_backend

    @property
    def profile(self):
        """The live :class:`ExecutionProfile`, workers and backend
        included.  (Shards run its ``shard_local()`` derivation.)"""
        if self._started and self.backend == "thread" and self._shards:
            local = self._shards[0].router.profile
            return replace(
                local, workers=self.workers, shard_backend=self.backend
            )
        return self._profile

    def configure(self, profile=None):
        """Apply a profile across every shard.  The execution tier,
        batch flavor, and supervision may change on a live plane;
        ``workers`` and ``shard_backend`` are construction-time — once
        the shards exist, changing them raises."""
        if profile is None:
            profile = ExecutionProfile()
        if self._started and (
            profile.workers != self.workers
            or profile.shard_backend != self.backend
        ):
            raise ValueError(
                "cannot reshard a live ShardedRouter (%d/%s -> %d/%s); "
                "build a new one"
                % (self.workers, self.backend, profile.workers, profile.shard_backend)
            )
        if self._started and (
            (profile.queue_capacity or DEFAULT_QUEUE_CAPACITY) != self._queue_capacity
            or profile.divide_capacity != self._profile.divide_capacity
        ):
            raise ValueError(
                "queue_capacity and divide_capacity are construction-time "
                "on a ShardedRouter; build a new one"
            )
        changed = profile != self._profile
        self._profile = profile
        self.hasher = FlowHasher(max(1, profile.workers), self.hash_seed)
        if self._started and changed:
            self._control(("configure", profile))
        return self

    # -- lifecycle ---------------------------------------------------------

    def _ensure_started(self):
        # retired wins over started: a control op on a closed plane must
        # raise, never enqueue to stopped workers (which would deadlock
        # at the next barrier).
        if self.retired:
            raise RuntimeError("this sharded router is retired")
        if self._started:
            return
        # Best-effort early validation: names scanned off recognizable
        # device declarations must resolve.  (Renamed device classes are
        # caught later, by the shard-local build itself.)
        for name in _device_names_of(self.graph):
            if self.devices.get(name) is None:
                from ..errors import ClickSemanticError

                raise ClickSemanticError("no such device %r" % name)
        self._started = True
        journal = self._journal_flag
        if journal is None:
            journal = self.fault_injector is not None
        self._journal_enabled = bool(journal)
        self._journals = [[] for _ in range(self.workers)]
        self._dispatched = [0] * self.workers
        if self.backend == "thread":
            self._start_thread_shards()
        else:
            self._start_process_shards()

    def _journal_cmd(self, index, cmd):
        if self._journal_enabled:
            self._journals[index].append(cmd)

    def _divider(self, index):
        """Shard ``index``'s divide-capacity graph transform
        (:func:`divide_queue_capacities` curried over this plane's
        worker count), or None when divide-capacity mode is off."""
        if not (self._profile.divide_capacity and self.workers > 1):
            return None
        workers = self.workers

        def divide(graph, _index=index, _workers=workers):
            return divide_queue_capacities(graph, _index, _workers)

        return divide

    # -- thread backend ----------------------------------------------------

    def _build_shard_router(self, index=0):
        from ..elements.devices import LoopbackDevice
        from ..elements.runtime import Router

        devices = OrderedDict(
            (name, LoopbackDevice(name, tx_capacity=_SHARD_TX_CAPACITY))
            for name in self._device_names
        )
        meter = None
        if self.meter is not None:
            from ..sim.cpu import CycleMeter

            meter = CycleMeter()
        graph = self.graph
        divider = self._divider(index)
        if divider is not None:
            graph = divider(graph)
        router = Router(
            graph,
            extra_classes=self._extra_classes,
            meter=meter,
            devices=devices,
            profile=self._profile.shard_local(),
        )
        return router, devices, meter

    def _start_thread_shards(self):
        for index in range(self.workers):
            shard = _ThreadShard(index, self._queue_capacity)
            shard.router, shard.devices, shard.meter = self._build_shard_router(index)
            shard.flushed = {name: 0 for name in self._device_names}
            shard.thread = threading.Thread(
                target=self._thread_main,
                args=(shard,),
                name="shard-%d" % index,
                daemon=True,
            )
            shard.thread.start()
            self._shards.append(shard)

    def _thread_main(self, shard):
        queue = shard.queue
        while True:
            cmd = queue.get()
            op = cmd[0]
            if op == "stop":
                break
            try:
                if op == "frames":
                    devices = shard.devices
                    for name, frame in cmd[1]:
                        devices[name].receive_frame(frame)
                elif op == "run":
                    shard.worked += shard.router.run_tasks(cmd[1])
                elif op == "sync":
                    cmd[1].set()
            except BaseException as exc:  # noqa: BLE001 - re-raised at the barrier
                if shard.error is None:
                    shard.error = exc
                if op == "sync":
                    cmd[1].set()

    def _barrier(self):
        """Quiesce every worker thread; re-raise the first shard error
        (an unsupervised shard must fail exactly like an unsupervised
        single router would)."""
        events = []
        for shard in self._shards:
            event = threading.Event()
            shard.queue.put(("sync", event))
            events.append(event)
        for event in events:
            event.wait()
        for shard in self._shards:
            if shard.error is not None:
                error, shard.error = shard.error, None
                raise error

    # -- process backend ---------------------------------------------------

    def _start_process_shards(self):
        import multiprocessing

        if self._extra_classes:
            raise ValueError(
                "the process backend rebuilds shards from configuration "
                "text and cannot ship extra_classes; use the thread backend"
            )
        from ..core.toolchain import save_config

        config_text = save_config(self.graph)
        self._cache_path = self._prewarm_cache()
        ctx = multiprocessing.get_context("spawn")
        for index in range(self.workers):
            shard = _ProcessShard(index)
            shard.flushed = {name: 0 for name in self._device_names}
            parent_conn, child_conn = ctx.Pipe()
            shard.process = ctx.Process(
                target=_process_shard_main,
                args=(
                    child_conn,
                    config_text,
                    self._profile,
                    list(self._device_names),
                    self._cache_path,
                    self.meter is not None,
                    index,
                ),
                daemon=True,
            )
            shard.process.start()
            child_conn.close()
            shard.conn = parent_conn
            self._shards.append(shard)

    def _prewarm_cache(self):
        """Compile the configuration once locally and write the codegen
        cache's disk layer; workers rehydrate compiled chains from it
        instead of paying compile/exec each."""
        if self._profile.mode == "reference":
            return None
        try:
            from .codegen_cache import default_cache

            router, _devices, _meter = self._build_shard_router()
            router.retire()
            handle, path = tempfile.mkstemp(prefix="repro-shard-cache-", suffix=".bin")
            os.close(handle)
            default_cache().save(path)
            return path
        except Exception:  # noqa: BLE001 - prewarm is an optimization only
            return None

    def _sync_process(self):
        for shard in self._shards:
            shard.conn.send(("sync",))
        worked = 0
        for shard in self._shards:
            reply = shard.recv()
            worked += reply[1]
            if reply[2] is not None:
                raise RuntimeError(
                    "shard %d: %s: %s" % (shard.index, reply[2][0], reply[2][1])
                )
        return worked

    # -- driving -----------------------------------------------------------

    def run_tasks(self, iterations=1):
        """One sharded scheduler batch: mirror the real devices'
        transmit windows into the shards, drain and hash-partition the
        ingress rings, run every shard ``iterations`` passes, then
        flush shard output back to the real devices in shard order."""
        if self.retired:
            return 0
        self._ensure_started()
        self._runs += 1
        caps = self._mirror_caps()
        batches = self._drain_and_partition()
        if self.backend == "thread":
            return self._run_thread(iterations, caps, batches)
        return self._run_process(iterations, caps, batches)

    def _mirror_caps(self):
        """Per-shard transmit-capacity mirrors: a shard-local device may
        hold at most (what it already holds) + (the real device's
        current ring room) — a downed or full real device blocks the
        shard's ToDevice exactly as it blocks the reference router's."""
        caps = []
        for shard_index in range(self.workers):
            local = {}
            for name in self._device_names:
                device = self.devices.get(name)
                room = device.tx_room() if device is not None else 0
                held = self._shard_transmitted_len(shard_index, name)
                local[name] = held + max(0, room)
            caps.append(local)
        return caps

    def _shard_transmitted_len(self, index, name):
        if self.backend == "thread":
            return len(self._shards[index].devices[name].transmitted)
        return self._shards[index].flushed[name]

    def _drain_and_partition(self):
        hasher = self.hasher
        dispatched = self._dispatched
        batches = [[] for _ in range(self.workers)]
        for name in self._device_names:
            device = self.devices.get(name)
            if device is None:
                continue
            dequeue = device.rx_dequeue
            while True:
                frame = dequeue()
                if frame is None:
                    break
                index = hasher(frame)
                batches[index].append((name, frame))
                dispatched[index] += 1
        return batches

    def _run_thread(self, iterations, caps, batches):
        before = sum(shard.worked for shard in self._shards)
        for index, shard in enumerate(self._shards):
            mirror = ("mirror", caps[index])
            self._journal_cmd(index, mirror)
            for name, capacity in caps[index].items():
                shard.devices[name].tx_capacity = capacity
            if batches[index]:
                frames = ("frames", batches[index])
                self._journal_cmd(index, frames)
                shard.queue.put(frames)
            run = ("run", iterations)
            self._journal_cmd(index, run)
            shard.queue.put(run)
        self._barrier()
        self._flush_thread()
        return max(0, sum(shard.worked for shard in self._shards) - before)

    def _flush_thread(self):
        flushed = 0
        for shard in self._shards:
            for name in self._device_names:
                frames = shard.devices[name].transmitted
                start = shard.flushed[name]
                if len(frames) > start:
                    self._deliver(name, frames[start:])
                    flushed += len(frames) - start
                    shard.flushed[name] = len(frames)
            if shard.meter is not None and self.meter is not None:
                summary = shard.meter.summary()
                self.meter.absorb(_meter_delta(summary, shard.meter_snapshot))
                shard.meter_snapshot = summary
        self._flushed_total += flushed

    def _deliver(self, name, frames):
        """Append shard output to the real device.  ``tx_enqueue`` keeps
        capacity/fault accounting honest; a refusal must still not lose
        the frame (it already left a shard's ring), so it lands on the
        transmitted list directly."""
        device = self.devices.get(name)
        for frame in frames:
            if not device.tx_enqueue(frame):
                device.transmitted.append(bytes(frame))

    def _run_process(self, iterations, caps, batches):
        from ..elements.devices import PollDevice

        chunk = max(1, self.chunk_frames)
        total = sum(len(batch) for batch in batches)
        for index, shard in enumerate(self._shards):
            mirror = ("mirror", caps[index])
            self._journal_cmd(index, mirror)
            shard.conn.send(mirror)
        if total <= chunk:
            for index, shard in enumerate(self._shards):
                if batches[index]:
                    frames = ("frames", batches[index])
                    self._journal_cmd(index, frames)
                    shard.conn.send(frames)
                run = ("run", iterations)
                self._journal_cmd(index, run)
                shard.conn.send(run)
        else:
            # Pipeline: deliver each shard's frames in chunks with a
            # partial run after each, so workers execute while the
            # parent hashes and serializes the next chunk; a final full
            # run guarantees at least ``iterations`` passes after the
            # last frame arrives (the drain the caller sized).
            per_shard_chunk = max(PollDevice.BURST, chunk // self.workers)
            positions = [0] * self.workers
            spent = [0] * self.workers
            while True:
                progressed = False
                for index, shard in enumerate(self._shards):
                    batch = batches[index]
                    position = positions[index]
                    if position >= len(batch):
                        continue
                    progressed = True
                    part = batch[position : position + per_shard_chunk]
                    positions[index] = position + len(part)
                    frames = ("frames", part)
                    self._journal_cmd(index, frames)
                    shard.conn.send(frames)
                    passes = len(part) // PollDevice.BURST + 1
                    spent[index] += passes
                    run = ("run", passes)
                    self._journal_cmd(index, run)
                    shard.conn.send(run)
                if not progressed:
                    break
            for index, shard in enumerate(self._shards):
                run = ("run", max(1, iterations))
                self._journal_cmd(index, run)
                shard.conn.send(run)
        worked = self._sync_process()
        self._flush_process()
        return worked

    def _flush_process(self):
        flushed = 0
        for shard in self._shards:
            shard.conn.send(("collect",))
        for shard in self._shards:
            reply = shard.recv()
            fresh, meter = reply[1], reply[2]
            for name in self._device_names:
                frames = fresh.get(name)
                if frames:
                    self._deliver(name, frames)
                    shard.flushed[name] += len(frames)
                    flushed += len(frames)
            if meter is not None and self.meter is not None:
                self.meter.absorb(_meter_delta(meter, shard.meter_snapshot))
                shard.meter_snapshot = meter
        self._flushed_total += flushed

    # -- control-plane fan-out ---------------------------------------------

    def _control(self, cmd):
        """Fan one journaled control command out to every shard, at
        quiescence."""
        self._ensure_started()
        if self.backend == "thread":
            self._barrier()
            for index, shard in enumerate(self._shards):
                self._journal_cmd(index, cmd)
                shard.router = _apply_shard_control(
                    shard.router, shard.devices, cmd, divider=self._divider(index)
                )
        else:
            for index, shard in enumerate(self._shards):
                self._journal_cmd(index, cmd)
                shard.conn.send(cmd)

    def find(self, name):
        """A fan-out proxy for the named element (None when the
        configuration has no such element) — control writes through it
        reach every shard."""
        if name not in self.graph.elements:
            return None
        return _FanoutElementProxy(self, name)

    def _fanout_insert(self, name, ip, ether):
        self._control(("insert", name, ip, ether))

    def bump_arp_epochs(self):
        """Invalidate every shard's baked ARP header guards; returns the
        per-shard element count (identical on every shard)."""
        self._ensure_started()
        bumped = sum(
            1
            for decl in self.graph.elements.values()
            if decl.class_name == "ARPQuerier"
        )
        self._control(("bump_epochs",))
        return bumped

    def force_deopt(self, reason="forced"):
        """Force every shard's adaptive engine back to tier 1; True when
        the profile runs adaptively (mirrors ``Router.force_deopt``)."""
        self._control(("deopt",))
        return self._profile.mode == "adaptive"

    def hotswap_all(self, new_graph):
        """Hot-swap every shard to ``new_graph`` (text or graph).  Each
        per-shard swap is transactional; a failure after some shards
        swapped rolls the finished ones back to the old configuration.
        Returns self (the sharded router's identity is stable)."""
        from ..core.toolchain import load_config, save_config

        if isinstance(new_graph, str):
            text = new_graph
        else:
            text = save_config(new_graph)
        self._ensure_started()
        if self.backend != "thread":
            self._control(("hotswap", text))
            self._set_graph(text)
            return self
        self._barrier()
        old_text = save_config(self.graph)
        done = []
        try:
            for index, shard in enumerate(self._shards):
                shard.router = _apply_shard_control(
                    shard.router,
                    shard.devices,
                    ("hotswap", text),
                    divider=self._divider(index),
                )
                done.append(index)
        except Exception:
            for index in done:
                shard = self._shards[index]
                shard.router = _apply_shard_control(
                    shard.router,
                    shard.devices,
                    ("hotswap", old_text),
                    divider=self._divider(index),
                )
            raise
        for index in range(self.workers):
            self._journal_cmd(index, ("hotswap", text))
        self._set_graph(text)
        return self

    def _set_graph(self, text):
        from ..core.toolchain import load_config

        graph = load_config(text, "<shard-graph>")
        if graph.element_classes:
            from ..core.flatten import flatten

            graph = flatten(graph)
        self.graph = graph
        self._device_names = _device_names_of(graph, self.devices)

    def apply_update(self, update):
        """Install one control-plane update on *every* shard
        transactionally.

        Pure-data deltas use two-phase commit: phase one stages the
        parsed, validated new tables on every shard (no mutation);
        only when every shard staged cleanly does phase two commit them
        all — a rejection anywhere leaves every shard serving the old
        tables.  Structural deltas hot-swap shard by shard with
        rollback on failure.  Returns shard 0's
        :class:`~repro.elements.hotswap.SwapReport`."""
        self._ensure_started()
        self._updates += 1
        if self.backend == "process":
            return self._apply_update_process(update)
        from ..control import ControlPlane

        self._barrier()
        if self._divider(0) is not None:
            return self._apply_update_divided(update)
        planes = [ControlPlane(shard.router) for shard in self._shards]
        delta, new_graph = planes[0].resolve(update)
        if delta.empty:
            return planes[0].apply(delta)
        text = self._update_text(update, delta, new_graph)
        if not delta.structural:
            staged = []
            for plane in planes:
                batch = plane.stage_patch(delta)
                if batch is None:
                    break
                staged.append(batch)
            if len(staged) == len(planes):
                report = None
                for plane, batch in zip(planes, staged):
                    committed = plane.commit_patch(batch, delta)
                    if report is None:
                        report = committed
                for index in range(self.workers):
                    self._journal_cmd(index, ("update", text))
                return report
        # Structural (or not patchable in place): per-shard transactional
        # swaps, rolled back together on failure.
        from ..core.toolchain import save_config

        old_text = save_config(self.graph)
        done = []
        report = None
        try:
            for index, plane in enumerate(planes):
                committed = plane.apply(update)
                done.append(index)
                if report is None:
                    report = committed
        except Exception:
            for index in done:
                ControlPlane(planes[index].router).apply(old_text)
                self._shards[index].router = planes[index].router
            raise
        for index, plane in enumerate(planes):
            self._shards[index].router = plane.router
        for index in range(self.workers):
            self._journal_cmd(index, ("update", text))
        self._set_graph(text)
        return report

    def _update_text(self, update, delta, new_graph):
        """The update as configuration text (the journal's replayable
        form), materializing the delta against the live graph when the
        caller passed a bare GraphDelta."""
        from ..core.toolchain import save_config

        if isinstance(update, str):
            return update
        if new_graph is None:
            new_graph = delta.apply_to(self.graph)
        return save_config(new_graph)

    def _apply_update_divided(self, update):
        """Control-plane update under divide-capacity mode (thread
        backend): the undivided update is the journaled source of truth,
        but every shard must install its *divided* view, so the shared
        in-place staging path (which would diff undivided capacities
        against divided live queues) is skipped in favor of per-shard
        transactional applies with divided rollback."""
        from ..control import ControlPlane
        from ..core.toolchain import load_config, save_config
        from ..graph.diff import GraphDelta

        if isinstance(update, str):
            new_graph = load_config(update, "<shard-update>")
        elif isinstance(update, GraphDelta):
            new_graph = update.apply_to(self.graph)
        else:
            new_graph = update
        text = save_config(new_graph)
        old_text = save_config(self.graph)
        planes = [ControlPlane(shard.router) for shard in self._shards]
        done = []
        report = None
        try:
            for index, plane in enumerate(planes):
                committed = plane.apply(self._divider(index)(new_graph))
                done.append(index)
                if report is None:
                    report = committed
        except Exception:
            old_graph = load_config(old_text, "<shard-rollback>")
            for index in done:
                ControlPlane(planes[index].router).apply(
                    self._divider(index)(old_graph)
                )
                self._shards[index].router = planes[index].router
            raise
        for index, plane in enumerate(planes):
            self._shards[index].router = plane.router
        for index in range(self.workers):
            self._journal_cmd(index, ("update", text))
        self._set_graph(text)
        return report

    def _apply_update_process(self, update):
        from ..control import ControlPlaneError

        delta = None
        new_graph = None
        if isinstance(update, str):
            text = update
        else:
            from ..graph.diff import GraphDelta, diff_graphs

            if isinstance(update, GraphDelta):
                delta, new_graph = update, None
            else:
                delta, new_graph = diff_graphs(self.graph, update), update
            text = self._update_text(update, delta, new_graph)
        for shard in self._shards:
            shard.conn.send(("update_stage", text))
        verdicts = [shard.recv() for shard in self._shards]
        rejected = [v for v in verdicts if v[1] == "rejected"]
        if rejected:
            for shard in self._shards:
                shard.conn.send(("update_abort",))
            raise ControlPlaneError(rejected[0][2])
        if all(v[1] == "empty" for v in verdicts):
            from ..elements.hotswap import SwapReport

            return SwapReport("no-op", profile=self._profile.label)
        if all(v[1] == "ok" for v in verdicts):
            for shard in self._shards:
                shard.conn.send(("update_commit",))
            for shard in self._shards:
                shard.recv()
            for index in range(self.workers):
                self._journal_cmd(index, ("update", text))
            from ..elements.hotswap import SwapReport

            report = SwapReport("in-place", profile=self._profile.label)
            report.elements_patched = len(
                delta.changed if delta is not None else ()
            )
            return report
        # Structural somewhere: full per-shard apply (each shard's
        # ControlPlane is transactional on its own).
        for shard in self._shards:
            shard.conn.send(("update_abort",))
            shard.conn.send(("update", text))
        self._sync_process()
        for index in range(self.workers):
            self._journal_cmd(index, ("update", text))
        self._set_graph(text)
        from ..elements.hotswap import SwapReport

        return SwapReport("scoped-swap", profile=self._profile.label)

    # -- worker faults -----------------------------------------------------

    def crash_worker(self, index):
        """Kill shard ``index`` and recover it: a fresh shard replays
        the journal — every frame batch, scheduler run, transmit
        mirror, and control op since birth — reconstructing
        byte-identical state (everything in the pipeline is
        deterministic).  The fault injector's ``worker_crash`` fault
        calls this; a no-op index is ignored."""
        self._ensure_started()
        index = index % self.workers
        if not self._journal_enabled:
            raise RuntimeError(
                "worker_crash needs the command journal; build the "
                "ShardedRouter with journal=True or attach a fault injector "
                "before the first operation"
            )
        self._crashes += 1
        if self.backend == "thread":
            self._crash_thread(index)
        else:
            self._crash_process(index)
        self._replays += 1

    def _crash_thread(self, index):
        self._barrier()
        shard = self._shards[index]
        shard.queue.put(("stop",))
        shard.thread.join(timeout=10)
        shard.router, shard.devices, shard.meter = self._build_shard_router(index)
        shard.worked = 0
        shard.error = None
        for cmd in self._journals[index]:
            op = cmd[0]
            if op == "frames":
                for name, frame in cmd[1]:
                    shard.devices[name].receive_frame(frame)
            elif op == "run":
                shard.router.run_tasks(cmd[1])
            else:
                shard.router = _apply_shard_control(
                    shard.router, shard.devices, cmd, divider=self._divider(index)
                )
        # Replayed work was genuinely re-executed, but its meter charges
        # were already absorbed before the crash: re-baseline so only
        # post-recovery work flows to the parent meter.
        if shard.meter is not None:
            shard.meter_snapshot = shard.meter.summary()
        shard.queue = SPSCQueue(self._queue_capacity)
        shard.thread = threading.Thread(
            target=self._thread_main,
            args=(shard,),
            name="shard-%d" % index,
            daemon=True,
        )
        shard.thread.start()

    def _crash_process(self, index):
        import multiprocessing

        from ..core.toolchain import save_config

        shard = self._shards[index]
        try:
            shard.process.terminate()
            shard.process.join(timeout=10)
            shard.conn.close()
        except Exception:  # noqa: BLE001 - it crashed; cleanup is best effort
            pass
        ctx = multiprocessing.get_context("spawn")
        parent_conn, child_conn = ctx.Pipe()
        shard.process = ctx.Process(
            target=_process_shard_main,
            args=(
                child_conn,
                save_config(self.graph),
                self._profile,
                list(self._device_names),
                self._cache_path,
                self.meter is not None,
                index,
            ),
            daemon=True,
        )
        shard.process.start()
        child_conn.close()
        shard.conn = parent_conn
        for cmd in self._journals[index]:
            shard.conn.send(cmd)
        # The parent already consumed everything it flushed before the
        # crash; realign the worker's collect cursor so replayed frames
        # are not delivered twice.
        shard.conn.send(("set_flushed", dict(shard.flushed)))
        shard.conn.send(("sync",))
        reply = shard.recv()
        if reply[2] is not None:
            raise RuntimeError(
                "shard %d replay failed: %s: %s" % (index, reply[2][0], reply[2][1])
            )
        shard.worked = 0
        if shard.meter_snapshot or self.meter is not None:
            shard.conn.send(("collect",))
            collected = shard.recv()
            # Drop the replayed frames (already flushed) and re-baseline
            # the meter like the thread backend does.
            if collected[2] is not None:
                shard.meter_snapshot = collected[2]

    # -- observability -----------------------------------------------------

    def merged_counters(self):
        """Every element read handler, reconciled across shards: numeric
        values sum; non-numeric values report shard 0's."""
        self._ensure_started()
        if self.backend == "thread":
            self._barrier()
            per_shard = []
            for shard in self._shards:
                values = {}
                for name, element in sorted(shard.router.elements.items()):
                    for handler, fn in sorted(element.read_handlers().items()):
                        value = fn()
                        if not isinstance(value, (int, float, str, bool, type(None))):
                            value = repr(value)
                        values["%s.%s" % (name, handler)] = value
                per_shard.append(values)
        else:
            per_shard = []
            for shard in self._shards:
                shard.conn.send(("counters",))
            for shard in self._shards:
                per_shard.append(shard.recv()[1])
        merged = {}
        for values in per_shard:
            for key, value in values.items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    merged.setdefault(key, value)
                else:
                    merged[key] = merged.get(key, 0) + value
        return merged

    def report(self):
        """A :class:`ShardReport` of the plane's lifetime so far (the
        last one captured is returned after :meth:`close`)."""
        if self.retired and self._final_report is not None:
            return self._final_report
        report = ShardReport()
        report.workers = self.workers
        report.backend = self.backend
        report.seed = self.hash_seed
        report.dispatched = list(self._dispatched) or [0] * self.workers
        report.flushed = self._flushed_total
        report.runs = self._runs
        report.updates = self._updates
        report.crashes = self._crashes
        report.replays = self._replays
        if self._started and self.backend == "thread":
            self._barrier()
            report.queue_high_water = [s.queue.high_water for s in self._shards]
            for shard in self._shards:
                supervisor = shard.router.supervisor
                if supervisor is not None:
                    report.supervisors["shard-%d" % shard.index] = (
                        supervisor.report().as_dict()
                    )
        elif self._started:
            for shard in self._shards:
                shard.conn.send(("report",))
            for shard in self._shards:
                reply = shard.recv()
                if reply[1] is not None:
                    report.supervisors["shard-%d" % shard.index] = reply[1]
        if self.meter is not None:
            report.meter = self.meter.summary()
        return report

    # -- teardown ----------------------------------------------------------

    def close(self):
        """Stop every worker and release the plane.  Idempotent; the
        final :class:`ShardReport` stays readable via :meth:`report`."""
        if self.retired:
            return
        if self._started:
            try:
                self._final_report = self.report()
            except Exception:  # noqa: BLE001 - teardown must not raise
                self._final_report = None
            if self.backend == "thread":
                for shard in self._shards:
                    shard.queue.put(("stop",))
                for shard in self._shards:
                    shard.thread.join(timeout=10)
            else:
                for shard in self._shards:
                    try:
                        shard.conn.send(("stop",))
                        shard.recv()
                    except Exception:  # noqa: BLE001
                        pass
                    try:
                        shard.conn.close()
                        shard.process.join(timeout=10)
                        if shard.process.is_alive():
                            shard.process.terminate()
                    except Exception:  # noqa: BLE001
                        pass
        if self._cache_path:
            try:
                os.unlink(self._cache_path)
            except OSError:
                pass
            self._cache_path = None
        self.retired = True

    def retire(self):
        """Decommission (hot-swap parity with ``Router.retire``)."""
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:  # noqa: BLE001
            pass
