"""The sharded multi-worker data plane: N compiled routers behind an
RSS-style flow-hash dispatcher.

A :class:`ShardedRouter` partitions ingress traffic by flow key
(:mod:`repro.runtime.flowhash`) across ``profile.workers`` shards, each
owning a *full* router — built from the same configuration graph, run
under the same shard-local :class:`~repro.runtime.profile.ExecutionProfile`
(reference, fast, batch, adaptive, or supervised) — and reconciles the
shards' transmitted frames, element counters, and CycleMeters back into
one externally observable surface.

Two backends, selected by ``profile.shard_backend``:

- ``"thread"`` — in-process worker threads fed through bounded
  :class:`SPSCQueue` handoff queues, with a barrier after every
  scheduler batch.  Deterministic by construction (shard state merges
  in shard order at quiescence), which is what the differential oracle
  runs; parallel speedup is not the point here, equivalence is.
- ``"process"`` — ``multiprocessing`` (spawn) workers, each building
  its own router from the configuration *text* and rehydrating compiled
  chains from the codegen cache's validated disk layer
  (:meth:`~repro.runtime.codegen_cache.CodegenCache.save`), so the
  compile is paid once.  Frame batches pipeline to the workers in
  chunks so the parent's hashing/serialization overlaps shard
  execution — this is the backend the 1→N scale curve measures.

Ordering semantics: per-flow order is preserved (a flow maps to one
shard; the handoff queues and per-shard routers are FIFO); cross-flow,
cross-shard order is **not**.  The oracle therefore compares sharded
output per-flow byte-identical plus per-device multiset-identical
(:func:`repro.verify.oracle.sharded_transmit_difference`), never as one
global sequence.

Control-plane operations fan out to every shard: ARP inserts, epoch
bumps, forced deopts, hot-swaps, and — via :meth:`ShardedRouter.apply_update`
— incremental updates, which commit *transactionally*: a pure-data
delta is staged on every shard (all parsing and validation, no
mutation) and only then committed everywhere, so a rejected update
leaves all shards serving the old tables; a structural delta hot-swaps
shard by shard with rollback on failure.

Worker faults: ``worker_crash`` faults (:mod:`repro.sim.faults`) kill a
shard; recovery respawns it and replays the shard's command journal —
every frame batch, scheduler run, transmit-window mirror, and control
operation since birth — which, everything being deterministic,
reconstructs byte-identical shard state (the device-fail analog with a
supervisor-grade recovery story).

Self-healing: when the profile carries a
:class:`~repro.runtime.recovery.RecoveryConfig`, a
:class:`~repro.runtime.recovery.RecoveryManager` closes the loop
autonomously — liveness heartbeats (process backend) and barrier
watchdog deadlines (thread backend) detect dead or hung workers without
an operator, journal replay restarts them under seeded exponential
backoff with a restart budget and poison-frame quarantine, and while a
shard is down its flows follow the profile's recovery policy: buffered
for redelivery, re-steered onto survivors through a rendezvous overlay,
or failed fast.  The journal-then-send invariant makes this safe: every
command is journaled *before* delivery is attempted, so a command
refused by a dying worker is reconstructed by replay, never lost —
and a down shard's partial output is never flushed (replay regenerates
deterministic output, and the flush cursor delivers everything past it
exactly once).

Cross-worker safety notes (the audit the thread backend forced):
``ELEMENT_CLASSES`` is a read-only registry after import; the dest-IP
intern cache (:data:`repro.net.packet._DEST_IP_CACHE`) is only touched
via single dict operations, which the GIL keeps atomic; the process-wide
codegen cache now serializes mutation behind an RLock (adaptive tier-2
recompiles can run on worker threads).  Shards share no mutable runtime
state — each has its own elements, devices, meter, and engine.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time as _time
from collections import OrderedDict
from dataclasses import replace

from .flowhash import DEFAULT_SEED, FlowHasher
from .profile import ExecutionProfile
from .recovery import PoisonFrameError, RecoveryError, ReplayFrameError

_monotonic = _time.monotonic

__all__ = [
    "DEFAULT_CHUNK_FRAMES",
    "DEFAULT_QUEUE_CAPACITY",
    "SPSCQueue",
    "ShardReport",
    "ShardedRouter",
    "TUNABLES",
    "divide_queue_capacities",
]

#: Default capacity of the bounded SPSC handoff queues (thread
#: backend).  Overridable per plane via
#: ``ExecutionProfile.with_workers(..., queue_capacity=...)``.
DEFAULT_QUEUE_CAPACITY = 256

#: Default frames per pipelined chunk on the process backend
#: (``ExecutionProfile.chunk_frames`` or the ``chunk_frames``
#: constructor keyword override it).
DEFAULT_CHUNK_FRAMES = 2048

#: Parameter-space declarations for the autotuner (:mod:`repro.tune`).
#: ``shard.workers`` is declared here so the space covers the whole
#: dispatch surface, but it is construction-time: the default search
#: pins it to the target plane's worker count, and
#: ``ExecutionProfile.with_tuning`` never applies it (use
#: ``with_workers``).
TUNABLES = (
    {
        "name": "shard.queue_capacity",
        "kind": "choice",
        "choices": [32, 64, 128, 256, 512, 1024, 2048],
        "default": DEFAULT_QUEUE_CAPACITY,
    },
    {
        "name": "shard.chunk_frames",
        "kind": "log_int",
        "low": 256,
        "high": 8192,
        "default": DEFAULT_CHUNK_FRAMES,
    },
    {"name": "shard.workers", "kind": "choice", "choices": [1, 2, 4, 8], "default": 1},
)

_DEVICE_CLASSES = ("PollDevice", "FromDevice", "ToDevice")

#: Element classes whose single argument is a bounded packet-queue
#: capacity — the queues ``divide_capacity`` splits across shards.
_BOUNDED_QUEUE_CLASSES = ("Queue", "FrontDropQueue")
#: Shard-local loopback devices never limit transmit on their own; the
#: parent mirrors the real device's window into ``tx_capacity`` before
#: every scheduler batch.
_SHARD_TX_CAPACITY = 1 << 30


class SPSCQueue:
    """A bounded single-producer single-consumer handoff queue.

    The parent (producer) enqueues command tuples; one worker
    (consumer) drains them.  ``put`` blocks when the queue is full —
    bounded capacity is the backpressure contract: a slow shard slows
    the dispatcher instead of growing an unbounded backlog.
    """

    __slots__ = ("_items", "_capacity", "_lock", "_not_empty", "_not_full", "high_water")

    def __init__(self, capacity=DEFAULT_QUEUE_CAPACITY):
        if capacity < 1:
            raise ValueError("capacity must be >= 1, not %r" % (capacity,))
        self._items = []
        self._capacity = capacity
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self.high_water = 0

    def put(self, item, timeout=None):
        """Enqueue one item; blocks while full.  With ``timeout`` (in
        seconds) returns False instead of blocking forever — the
        recovery path's escape hatch when the consumer is dead or hung
        and the queue will never drain."""
        with self._not_full:
            if timeout is None:
                while len(self._items) >= self._capacity:
                    self._not_full.wait()
            else:
                deadline = _monotonic() + timeout
                while len(self._items) >= self._capacity:
                    remaining = deadline - _monotonic()
                    if remaining <= 0 or not self._not_full.wait(remaining):
                        if len(self._items) < self._capacity:
                            break
                        if deadline - _monotonic() <= 0:
                            return False
            self._items.append(item)
            if len(self._items) > self.high_water:
                self.high_water = len(self._items)
            self._not_empty.notify()
            return True

    def get(self):
        with self._not_empty:
            while not self._items:
                self._not_empty.wait()
            item = self._items.pop(0)
            self._not_full.notify()
            return item

    def __len__(self):
        with self._lock:
            return len(self._items)


def _device_names_of(graph, devices=None):
    """The device names the shard mirrors, in deterministic flush
    order.  When the plane was handed a ``devices`` dict its keys are
    authoritative — element classes may have been renamed by the
    optimizers (``Devirtualize@@td`` still binds ``eth1``), so scanning
    declarations by class name only works on unoptimized graphs and is
    kept as the fallback when no devices were attached."""
    if devices:
        return list(devices)
    names = []
    for decl in graph.elements.values():
        if decl.class_name in _DEVICE_CLASSES:
            name = decl.config.split(",")[0].strip()
            if name and name not in names:
                names.append(name)
    return names


def divide_queue_capacities(graph, index, workers):
    """Shard ``index``'s view of ``graph`` under divide-capacity mode:
    every bounded queue's capacity is split across the ``workers``
    shards — floor share each, remainder to the lowest indices — so the
    plane's *aggregate* queue capacity matches the single-plane router
    and load-dependent loss stays within the sharding contract.

    Returns a fresh graph (text round trip; the caller's graph is the
    undivided source of truth).  A queue whose capacity is below the
    worker count cannot be divided without exceeding the single plane's
    aggregate (every shard queue needs at least one slot), so that
    raises.  Queue declarations whose argument is not a plain integer
    are left alone — the shard build will report them exactly as a
    single-plane build would.
    """
    if workers <= 1:
        return graph
    from ..core.toolchain import load_config, save_config
    from ..elements.infrastructure import Queue

    divided = load_config(save_config(graph), "<shard-divide>")
    for decl in divided.elements.values():
        if decl.class_name not in _BOUNDED_QUEUE_CLASSES:
            continue
        config = (decl.config or "").strip()
        try:
            capacity = int(config) if config else Queue.DEFAULT_CAPACITY
        except ValueError:
            continue
        if capacity < workers:
            from ..errors import ClickSemanticError

            raise ClickSemanticError(
                "divide_capacity cannot split %s(%d) across %d shards; "
                "every bounded queue needs capacity >= the worker count"
                % (decl.name, capacity, workers)
            )
        share = capacity // workers + (1 if index < capacity % workers else 0)
        decl.config = str(share)
    return divided


def _meter_delta(current, previous):
    """current - previous for two CycleMeter summaries (all fields are
    monotonic counts, so the delta is well-defined)."""
    delta = {}
    for key, value in current.items():
        if key == "dynamic":
            prev = previous.get("dynamic", {})
            delta[key] = {k: v - prev.get(k, 0) for k, v in value.items()}
        else:
            delta[key] = value - previous.get(key, 0)
    return delta


class ShardReport:
    """What the sharded data plane did: dispatch balance, flushes,
    crashes and journal replays, per-shard supervision summaries, and
    (when self-healing is on) the recovery manager's summary."""

    def __init__(self):
        self.workers = 0
        self.backend = "thread"
        self.seed = DEFAULT_SEED
        self.dispatched = []
        self.flushed = 0
        self.runs = 0
        self.updates = 0
        self.crashes = 0
        self.replays = 0
        self.queue_high_water = []
        self.supervisors = {}
        self.recovery = None
        self.meter = None

    def as_dict(self):
        """JSON-safe summary with deterministic ordering — keys sorted,
        list order stable — so chaos/CI artifacts diff cleanly (the PR 8
        codegen-cache report convention)."""
        data = {
            "backend": self.backend,
            "crashes": self.crashes,
            "dispatched": list(self.dispatched),
            "flushed": self.flushed,
            "queue_high_water": list(self.queue_high_water),
            "replays": self.replays,
            "runs": self.runs,
            "seed": self.seed,
            "updates": self.updates,
            "workers": self.workers,
        }
        if self.supervisors:
            data["supervisors"] = {
                key: self.supervisors[key] for key in sorted(self.supervisors)
            }
        if self.recovery is not None:
            data["recovery"] = self.recovery
        if self.meter is not None:
            data["meter"] = self.meter
        return {key: data[key] for key in sorted(data)}

    def format(self):
        lines = [
            "sharded data plane: %d worker(s), %s backend, seed 0x%X"
            % (self.workers, self.backend, self.seed),
            "  dispatched per shard: %s" % (self.dispatched,),
            "  flushed %d frame(s) over %d scheduler batch(es)"
            % (self.flushed, self.runs),
        ]
        if self.crashes:
            lines.append(
                "  %d worker crash(es), %d journal replay(s)"
                % (self.crashes, self.replays)
            )
        if self.recovery is not None:
            lines.append(
                "  recovery (%s): %d detection(s), %d restart(s), "
                "%d benched, %d re-steered, %d buffered, %d quarantined"
                % (
                    self.recovery.get("policy"),
                    self.recovery.get("detections", 0),
                    self.recovery.get("restarts", 0),
                    len(self.recovery.get("benched", ())),
                    self.recovery.get("frames_resteered", 0),
                    self.recovery.get("frames_buffered", 0),
                    len(self.recovery.get("quarantined", ())),
                )
            )
        return "\n".join(lines)


class _ThreadShard:
    """One in-process shard: its router, devices, meter, worker thread,
    and flush bookkeeping."""

    __slots__ = (
        "index",
        "router",
        "devices",
        "meter",
        "queue",
        "thread",
        "worked",
        "error",
        "flushed",
        "meter_snapshot",
        "dead",
        "generation",
        "poisons",
    )

    def __init__(self, index, queue_capacity=DEFAULT_QUEUE_CAPACITY):
        self.index = index
        self.router = None
        self.devices = None
        self.meter = None
        self.queue = SPSCQueue(queue_capacity)
        self.thread = None
        self.worked = 0
        self.error = None
        self.flushed = {}
        self.meter_snapshot = {}
        # Recovery bookkeeping: ``dead`` is set by the worker itself on
        # a fatal error (or a ``die`` fault); ``generation`` fences off
        # abandoned (hung) worker threads — a stale generation exits
        # without touching rebuilt state; ``poisons`` is the armed
        # kill-frame set the worker checks at frame delivery.
        self.dead = False
        self.generation = 0
        self.poisons = set()


class _ProcessShard:
    """One multiprocessing shard: its process handle, pipe, and the
    parent-side mirror of its flush counters."""

    __slots__ = ("index", "process", "conn", "worked", "flushed", "meter_snapshot")

    def __init__(self, index):
        self.index = index
        self.process = None
        self.conn = None
        self.worked = 0
        self.flushed = {}
        self.meter_snapshot = {}

    def recv(self):
        try:
            return self.conn.recv()
        except (EOFError, ConnectionResetError, BrokenPipeError) as exc:
            exitcode = self.process.exitcode if self.process is not None else None
            raise RuntimeError(
                "shard worker %d died mid-protocol (exit code %r); if this "
                "happened at startup, the spawn backend re-imports __main__ "
                "— entry scripts need an if __name__ == '__main__' guard"
                % (self.index, exitcode)
            ) from exc


class _FanoutElementProxy:
    """Stands in for a named element on a sharded router: control-plane
    writes (ARP ``insert``) fan out to every shard's instance."""

    __slots__ = ("_sharded", "_name")

    def __init__(self, sharded, name):
        self._sharded = sharded
        self._name = name

    @property
    def name(self):
        return self._name

    def insert(self, ip, ether):
        self._sharded._fanout_insert(self._name, ip, ether)

    def __repr__(self):
        return "<fanout %s across %d shard(s)>" % (
            self._name,
            self._sharded.workers,
        )


def _apply_shard_control(router, devices, cmd, divider=None):
    """Apply one journaled control command to a single shard's router;
    returns the (possibly new) router.  Used both on the live path and
    during crash-replay, so it must be deterministic.  ``divider`` is
    the shard's divide-capacity transform (or None): journaled
    configurations are always the *undivided* text, so every path that
    materializes a graph on a shard runs it through the divider."""
    op = cmd[0]
    if op == "insert":
        element = router.find(cmd[1])
        if element is not None and hasattr(element, "insert"):
            element.insert(cmd[2], cmd[3])
    elif op == "bump_epochs":
        router.bump_arp_epochs()
    elif op == "deopt":
        router.force_deopt()
    elif op == "configure":
        router.configure(cmd[1].shard_local())
    elif op == "mirror":
        for name, capacity in cmd[1].items():
            device = devices.get(name)
            if device is not None and hasattr(device, "tx_capacity"):
                device.tx_capacity = capacity
    elif op == "hotswap":
        from ..core.toolchain import load_config
        from ..elements.hotswap import hotswap

        new_graph = load_config(cmd[1], "<shard-hotswap>")
        if divider is not None:
            new_graph = divider(new_graph)
        router = hotswap(router, new_graph).router
    elif op == "update":
        from ..control import ControlPlane

        update = cmd[1]
        if divider is not None:
            from ..core.toolchain import load_config

            update = divider(load_config(update, "<shard-update>"))
        plane = ControlPlane(router)
        plane.apply(update)
        router = plane.router
    else:
        raise ValueError("unknown shard control command %r" % (op,))
    return router


def _process_shard_main(
    conn, config_text, profile, device_names, cache_path, metered=False, shard_index=0
):
    """The multiprocessing worker: build one shard's router from the
    configuration text (rehydrating compiled chains from the shipped
    codegen-cache file) and serve the parent's command stream.  With
    ``metered`` the shard runs under its own CycleMeter, whose summary
    rides back on every ``collect`` for the parent to absorb.  The
    parent always ships *undivided* configuration text; under
    divide-capacity mode the worker derives its own shard view from
    ``shard_index`` and the profile's worker count."""
    from ..core.toolchain import load_config
    from ..elements.devices import LoopbackDevice
    from ..elements.runtime import build_router
    from .codegen_cache import default_cache

    if cache_path:
        try:
            default_cache().load(cache_path)
        except Exception:  # noqa: BLE001 - a bad cache file is survivable
            pass
    devices = OrderedDict(
        (name, LoopbackDevice(name, tx_capacity=_SHARD_TX_CAPACITY))
        for name in device_names
    )
    meter = None
    if metered:
        from ..sim.cpu import CycleMeter

        meter = CycleMeter()
    divider = None
    if profile.divide_capacity and profile.workers > 1:

        def divider(graph, _index=shard_index, _workers=profile.workers):
            return divide_queue_capacities(graph, _index, _workers)

    graph = load_config(config_text, "<shard>")
    if divider is not None:
        graph = divider(graph)
    router = build_router(
        graph,
        devices=devices,
        meter=meter,
        profile=profile.shard_local(),
    )
    flushed = {name: 0 for name in device_names}
    worked = 0
    pending_error = None
    staged = None  # (plane, staged batch, delta) between stage and commit
    poisons = set()  # armed kill frames (worker_poison faults)
    while True:
        try:
            cmd = conn.recv()
        except (EOFError, OSError):
            break
        op = cmd[0]
        try:
            if op == "frames":
                for name, frame in cmd[1]:
                    if poisons and bytes(frame) in poisons:
                        # A poison frame kills the worker the hard way:
                        # no exception protocol, just a dead process for
                        # the parent's health machinery to find.
                        os._exit(3)
                    devices[name].receive_frame(frame)
            elif op == "run":
                worked += router.run_tasks(cmd[1])
            elif op == "poison":
                poisons.add(bytes(cmd[1]))
            elif op == "hang":
                _time.sleep(cmd[1])
            elif op == "mirror":
                for name, capacity in cmd[1].items():
                    devices[name].tx_capacity = capacity
            elif op in ("insert", "bump_epochs", "deopt", "configure", "hotswap", "update"):
                router = _apply_shard_control(router, devices, cmd, divider=divider)
            elif op == "update_stage":
                from ..control import ControlPlane, ControlPlaneError

                plane = ControlPlane(router)
                try:
                    update = cmd[1]
                    if divider is not None:
                        update = divider(load_config(update, "<shard-update>"))
                    delta, _new_graph = plane.resolve(update)
                    if delta.empty:
                        conn.send(("staged", "empty"))
                    elif delta.structural:
                        conn.send(("staged", "structural"))
                    else:
                        batch = plane.stage_patch(delta)
                        if batch is None:
                            conn.send(("staged", "structural"))
                        else:
                            staged = (plane, batch, delta)
                            conn.send(("staged", "ok"))
                except ControlPlaneError as exc:
                    staged = None
                    conn.send(("staged", "rejected", str(exc)))
            elif op == "update_commit":
                plane, batch, delta = staged
                plane.commit_patch(batch, delta)
                router = plane.router
                staged = None
                conn.send(("committed",))
            elif op == "update_abort":
                staged = None
            elif op == "set_flushed":
                flushed = dict(cmd[1])
            elif op == "sync":
                conn.send(("synced", worked, pending_error))
                worked = 0
                pending_error = None
            elif op == "collect":
                fresh = {}
                for name in device_names:
                    frames = devices[name].transmitted
                    start = flushed[name]
                    if len(frames) > start:
                        fresh[name] = frames[start:]
                        flushed[name] = len(frames)
                meter = router.meter.summary() if router.meter is not None else None
                conn.send(("collected", fresh, meter))
            elif op == "counters":
                values = {}
                for name, element in sorted(router.elements.items()):
                    for handler, fn in sorted(element.read_handlers().items()):
                        value = fn()
                        if not isinstance(value, (int, float, str, bool, type(None))):
                            value = repr(value)
                        values["%s.%s" % (name, handler)] = value
                conn.send(("counters", values))
            elif op == "report":
                supervisor = router.supervisor
                conn.send(
                    ("report", supervisor.report().as_dict() if supervisor else None)
                )
            elif op == "stop":
                conn.send(("stopped",))
                break
        except Exception as exc:  # noqa: BLE001 - delivered at next sync
            pending_error = (type(exc).__name__, str(exc))
    conn.close()


class ShardedRouter:
    """Hash-sharded fan-out over N full routers.

    Mirrors the single-router driving surface — ``run_tasks``,
    ``find``/``insert`` fan-out, ``bump_arp_epochs``, ``force_deopt``,
    ``configure``/``profile``, ``retire`` — plus the sharded extras:
    :meth:`apply_update` (transactional control-plane commit across all
    shards), :meth:`hotswap_all`, :meth:`crash_worker` (fault-injection
    hook), :meth:`merged_counters`, and :meth:`report`.

    Built by :func:`repro.elements.runtime.build_router` whenever the
    profile carries ``workers > 1``; a plain ``Router`` refuses such a
    profile.  Shards (and worker threads/processes) start lazily on the
    first operation, so a fault injector can attach first.
    """

    is_sharded = True

    def __init__(
        self,
        graph,
        extra_classes=None,
        meter=None,
        devices=None,
        profile=None,
        hash_seed=DEFAULT_SEED,
        journal=None,
        chunk_frames=None,
    ):
        from ..errors import ClickSemanticError

        if graph.element_classes:
            raise ClickSemanticError(
                "sharded router requires a flattened configuration "
                "(compound classes remain: %s)" % ", ".join(graph.element_classes)
            )
        self.graph = graph
        self.meter = meter
        self.devices = {} if devices is None else devices
        self._extra_classes = extra_classes
        self._profile = profile if profile is not None else ExecutionProfile()
        self.hash_seed = int(hash_seed)
        if chunk_frames is None:
            chunk_frames = self._profile.chunk_frames or DEFAULT_CHUNK_FRAMES
        self.chunk_frames = int(chunk_frames)
        self._queue_capacity = self._profile.queue_capacity or DEFAULT_QUEUE_CAPACITY
        self.fault_injector = None
        self.retired = False
        self._started = False
        self._journal_flag = journal
        self._journals = []
        self._shards = []
        self._device_names = _device_names_of(graph, self.devices)
        self._dispatched = []
        self._flushed_total = 0
        self._runs = 0
        self._updates = 0
        self._crashes = 0
        self._replays = 0
        self._cache_path = None
        self._final_report = None
        self._recovery = None
        self.hasher = FlowHasher(max(1, self._profile.workers), self.hash_seed)

    # -- profile surface ---------------------------------------------------

    @property
    def workers(self):
        return self._profile.workers

    @property
    def backend(self):
        return self._profile.shard_backend

    @property
    def profile(self):
        """The live :class:`ExecutionProfile`, workers and backend
        included.  (Shards run its ``shard_local()`` derivation.)"""
        if self._started and self.backend == "thread" and self._shards:
            local = self._shards[0].router.profile
            return replace(
                local,
                workers=self.workers,
                shard_backend=self.backend,
                recovery=self._profile.recovery,
            )
        return self._profile

    def configure(self, profile=None):
        """Apply a profile across every shard.  The execution tier,
        batch flavor, and supervision may change on a live plane;
        ``workers`` and ``shard_backend`` are construction-time — once
        the shards exist, changing them raises."""
        if profile is None:
            profile = ExecutionProfile()
        if self._started and (
            profile.workers != self.workers
            or profile.shard_backend != self.backend
        ):
            raise ValueError(
                "cannot reshard a live ShardedRouter (%d/%s -> %d/%s); "
                "build a new one"
                % (self.workers, self.backend, profile.workers, profile.shard_backend)
            )
        if self._started and (
            (profile.queue_capacity or DEFAULT_QUEUE_CAPACITY) != self._queue_capacity
            or profile.divide_capacity != self._profile.divide_capacity
        ):
            raise ValueError(
                "queue_capacity and divide_capacity are construction-time "
                "on a ShardedRouter; build a new one"
            )
        changed = profile != self._profile
        self._profile = profile
        self.hasher = FlowHasher(max(1, profile.workers), self.hash_seed)
        if self._started and changed:
            self._control(("configure", profile))
        return self

    # -- lifecycle ---------------------------------------------------------

    def _ensure_started(self):
        # retired wins over started: a control op on a closed plane must
        # raise, never enqueue to stopped workers (which would deadlock
        # at the next barrier).
        if self.retired:
            raise RuntimeError("this sharded router is retired")
        if self._started:
            return
        # Best-effort early validation: names scanned off recognizable
        # device declarations must resolve.  (Renamed device classes are
        # caught later, by the shard-local build itself.)
        for name in _device_names_of(self.graph):
            if self.devices.get(name) is None:
                from ..errors import ClickSemanticError

                raise ClickSemanticError("no such device %r" % name)
        self._started = True
        if self._profile.recovery is not None:
            from .recovery import RecoveryManager

            self._recovery = RecoveryManager(self, self._profile.recovery)
        journal = self._journal_flag
        if journal is None:
            # Self-healing needs the journal (replay is the restart
            # mechanism), as does manual fault injection.
            journal = self.fault_injector is not None or self._recovery is not None
        self._journal_enabled = bool(journal)
        self._journals = [[] for _ in range(self.workers)]
        self._dispatched = [0] * self.workers
        if self.backend == "thread":
            self._start_thread_shards()
        else:
            self._start_process_shards()

    def _journal_cmd(self, index, cmd):
        if self._journal_enabled:
            self._journals[index].append(cmd)

    def _divider(self, index):
        """Shard ``index``'s divide-capacity graph transform
        (:func:`divide_queue_capacities` curried over this plane's
        worker count), or None when divide-capacity mode is off."""
        if not (self._profile.divide_capacity and self.workers > 1):
            return None
        workers = self.workers

        def divide(graph, _index=index, _workers=workers):
            return divide_queue_capacities(graph, _index, _workers)

        return divide

    # -- thread backend ----------------------------------------------------

    def _build_shard_router(self, index=0):
        from ..elements.devices import LoopbackDevice
        from ..elements.runtime import Router

        devices = OrderedDict(
            (name, LoopbackDevice(name, tx_capacity=_SHARD_TX_CAPACITY))
            for name in self._device_names
        )
        meter = None
        if self.meter is not None:
            from ..sim.cpu import CycleMeter

            meter = CycleMeter()
        graph = self.graph
        divider = self._divider(index)
        if divider is not None:
            graph = divider(graph)
        router = Router(
            graph,
            extra_classes=self._extra_classes,
            meter=meter,
            devices=devices,
            profile=self._profile.shard_local(),
        )
        return router, devices, meter

    def _start_thread_shards(self):
        for index in range(self.workers):
            shard = _ThreadShard(index, self._queue_capacity)
            shard.router, shard.devices, shard.meter = self._build_shard_router(index)
            shard.flushed = {name: 0 for name in self._device_names}
            self._spawn_thread_worker(shard)
            self._shards.append(shard)

    def _spawn_thread_worker(self, shard):
        shard.thread = threading.Thread(
            target=self._thread_main,
            args=(shard, shard.generation),
            name="shard-%d" % shard.index,
            daemon=True,
        )
        shard.thread.start()

    def _thread_main(self, shard, generation):
        queue = shard.queue
        recovering = self._recovery is not None
        while True:
            cmd = queue.get()
            if shard.generation != generation:
                # This worker was abandoned by the watchdog and the
                # shard rebuilt around it: exit without touching the
                # fresh state (the command came off the stale queue).
                break
            op = cmd[0]
            if op == "stop":
                break
            if op == "die":
                # Fault injection: the worker "crashes" between
                # commands, exactly as an OS kill would land for the
                # process backend.
                shard.dead = True
                break
            try:
                if op == "frames":
                    devices = shard.devices
                    poisons = shard.poisons
                    for name, frame in cmd[1]:
                        if poisons and bytes(frame) in poisons:
                            raise PoisonFrameError(name, frame)
                        devices[name].receive_frame(frame)
                elif op == "run":
                    worked = shard.router.run_tasks(cmd[1])
                    if shard.generation == generation:
                        shard.worked += worked
                elif op == "hang":
                    # Fault injection: stop making progress.  The
                    # barrier's watchdog deadline fires, the shard is
                    # rebuilt, and the generation fence retires this
                    # thread when the sleep ends.
                    _time.sleep(cmd[1])
                elif op == "poison":
                    shard.poisons.add(bytes(cmd[1]))
                elif op == "sync":
                    cmd[1].set()
            except BaseException as exc:  # noqa: BLE001 - re-raised at the barrier
                if shard.error is None:
                    shard.error = exc
                if recovering:
                    # Under recovery an escaped exception is worker
                    # death, not a parked error: mark the shard down
                    # and stop consuming.  Detection happens at the
                    # next barrier.
                    shard.dead = True
                    if op == "sync":
                        cmd[1].set()
                    break
                if op == "sync":
                    cmd[1].set()

    def _queue_put(self, shard, cmd):
        """Enqueue one command to a thread shard.  Without recovery
        this is a plain (possibly blocking) put; with recovery a put
        that cannot complete within the heartbeat window marks the
        worker dead — its queue will never drain — and returns False.
        Callers journal *before* putting, so a refused command is
        recovered by replay, never lost."""
        if self._recovery is None:
            shard.queue.put(cmd)
            return True
        if shard.dead or not shard.thread.is_alive():
            self._recovery.note_dead(shard.index, "worker thread died")
            return False
        if shard.queue.put(cmd, timeout=self._recovery.config.heartbeat_timeout):
            return True
        shard.generation += 1  # fence the stalled worker off
        self._recovery.note_dead(shard.index, "handoff queue stalled")
        return False

    def _barrier(self):
        """Quiesce every worker thread; re-raise the first shard error
        (an unsupervised shard must fail exactly like an unsupervised
        single router would).  Under recovery this is also the thread
        backend's health seam: a worker that died is recorded instead
        of raised, and one that stops progressing past the watchdog
        deadline is abandoned behind the generation fence."""
        recovery = self._recovery
        events = []
        for shard in self._shards:
            if recovery is not None and recovery.is_down(shard.index):
                events.append(None)
                continue
            event = threading.Event()
            if not self._queue_put(shard, ("sync", event)):
                events.append(None)
                continue
            events.append(event)
        if recovery is None:
            for event in events:
                event.wait()
        else:
            deadline = recovery.config.watchdog_timeout
            for shard, event in zip(self._shards, events):
                if event is None:
                    continue
                waited = 0.0
                while not event.wait(0.05):
                    if shard.dead or not shard.thread.is_alive():
                        break
                    waited += 0.05
                    if waited >= deadline:
                        # No progress within the watchdog window: hung.
                        # Abandon the thread (the generation fence
                        # retires it) and mark the shard down.
                        shard.generation += 1
                        shard.dead = True
                        break
        for shard in self._shards:
            if recovery is not None and shard.dead and not recovery.is_down(shard.index):
                reason = "worker hung past the watchdog deadline"
                if shard.error is not None:
                    reason = "%s: %s" % (type(shard.error).__name__, shard.error)
                    shard.error = None
                recovery.note_dead(shard.index, reason)
        for shard in self._shards:
            if shard.error is not None:
                if recovery is not None and recovery.is_down(shard.index):
                    shard.error = None
                    continue
                error, shard.error = shard.error, None
                raise error

    # -- process backend ---------------------------------------------------

    def _start_process_shards(self):
        if self._extra_classes:
            raise ValueError(
                "the process backend rebuilds shards from configuration "
                "text and cannot ship extra_classes; use the thread backend"
            )
        self._cache_path = self._prewarm_cache()
        for index in range(self.workers):
            shard = _ProcessShard(index)
            shard.flushed = {name: 0 for name in self._device_names}
            self._spawn_process_shard(shard)
            self._shards.append(shard)

    def _spawn_process_shard(self, shard):
        """Start (or restart) one process-backend worker, attaching a
        fresh pipe.  The previous process, if any, must already be
        reaped (:meth:`_reap_process`)."""
        import multiprocessing

        from ..core.toolchain import save_config

        ctx = multiprocessing.get_context("spawn")
        parent_conn, child_conn = ctx.Pipe()
        shard.process = ctx.Process(
            target=_process_shard_main,
            args=(
                child_conn,
                save_config(self.graph),
                self._profile,
                list(self._device_names),
                self._cache_path,
                self.meter is not None,
                shard.index,
            ),
            daemon=True,
        )
        shard.process.start()
        child_conn.close()
        shard.conn = parent_conn

    def _reap_process(self, shard, kill=False):
        """Join a dead (or doomed) worker with a timeout and close the
        parent's pipe end, so crash/recover cycles leak neither child
        processes nor file descriptors."""
        process, conn = shard.process, shard.conn
        if process is not None:
            try:
                if kill and process.is_alive():
                    process.kill()
                process.join(timeout=10)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=10)
                process.close()
            except Exception:  # noqa: BLE001 - it crashed; cleanup is best effort
                pass
            shard.process = None
        if conn is not None:
            try:
                conn.close()
            except Exception:  # noqa: BLE001
                pass
            shard.conn = None

    def _poll_health(self):
        """Heartbeat liveness sweep (process backend): a worker that
        exited is detected here, before the batch dispatches."""
        recovery = self._recovery
        for shard in self._shards:
            if recovery.is_down(shard.index):
                continue
            if shard.process is None or not shard.process.is_alive():
                exitcode = shard.process.exitcode if shard.process else None
                self._reap_process(shard)
                recovery.note_dead(
                    shard.index, "worker process exited (code %r)" % (exitcode,)
                )

    def _proc_send(self, shard, cmd):
        """Send one command to a process shard; under recovery a broken
        pipe marks the shard dead and returns False (the command is
        journaled first, so replay covers it)."""
        recovery = self._recovery
        if recovery is None:
            shard.conn.send(cmd)
            return True
        if recovery.is_down(shard.index):
            return False
        try:
            shard.conn.send(cmd)
            return True
        except (BrokenPipeError, ConnectionResetError, OSError):
            exitcode = shard.process.exitcode if shard.process else None
            self._reap_process(shard)
            recovery.note_dead(
                shard.index, "pipe to worker broke (exit code %r)" % (exitcode,)
            )
            return False

    def _proc_recv(self, shard, timeout=None):
        """Receive one protocol reply; under recovery a worker that
        neither answers within the deadline (the heartbeat window by
        default) nor exits is hung (reaped + marked dead), and a dead
        pipe marks the shard dead.  Returns None when the shard went
        down instead of answering."""
        recovery = self._recovery
        if recovery is None:
            return shard.recv()
        if timeout is None:
            timeout = recovery.config.heartbeat_timeout
        try:
            while not shard.conn.poll(timeout):
                if shard.process is None or not shard.process.is_alive():
                    raise EOFError("worker exited mid-protocol")
                # Alive but silent past the heartbeat window: hung.
                exitcode = shard.process.exitcode
                self._reap_process(shard, kill=True)
                recovery.note_dead(
                    shard.index,
                    "worker hung past the heartbeat window (exit code %r)"
                    % (exitcode,),
                )
                return None
            return shard.conn.recv()
        except (EOFError, ConnectionResetError, BrokenPipeError, OSError):
            exitcode = shard.process.exitcode if shard.process else None
            self._reap_process(shard)
            recovery.note_dead(
                shard.index, "worker died mid-protocol (exit code %r)" % (exitcode,)
            )
            return None

    def _prewarm_cache(self):
        """Compile the configuration once locally and write the codegen
        cache's disk layer; workers rehydrate compiled chains from it
        instead of paying compile/exec each."""
        if self._profile.mode == "reference":
            return None
        try:
            from .codegen_cache import default_cache

            router, _devices, _meter = self._build_shard_router()
            router.retire()
            handle, path = tempfile.mkstemp(prefix="repro-shard-cache-", suffix=".bin")
            os.close(handle)
            default_cache().save(path)
            return path
        except Exception:  # noqa: BLE001 - prewarm is an optimization only
            return None

    def _sync_process(self):
        recovery = self._recovery
        pending = []
        for shard in self._shards:
            if recovery is not None and recovery.is_down(shard.index):
                continue
            if self._proc_send(shard, ("sync",)):
                pending.append(shard)
        worked = 0
        for shard in pending:
            reply = self._proc_recv(shard)
            if reply is None:
                continue  # went down instead of answering; noted
            worked += reply[1]
            if reply[2] is not None:
                if recovery is not None:
                    # A worker-side error under recovery is treated as
                    # worker death: rebuild + replay clears it (or
                    # attributes it to a poison frame).
                    self._reap_process(shard, kill=True)
                    recovery.note_dead(
                        shard.index,
                        "worker error: %s: %s" % (reply[2][0], reply[2][1]),
                    )
                    continue
                raise RuntimeError(
                    "shard %d: %s: %s" % (shard.index, reply[2][0], reply[2][1])
                )
        return worked

    # -- driving -----------------------------------------------------------

    def run_tasks(self, iterations=1):
        """One sharded scheduler batch: mirror the real devices'
        transmit windows into the shards, drain and hash-partition the
        ingress rings, run every shard ``iterations`` passes, then
        flush shard output back to the real devices in shard order."""
        if self.retired:
            return 0
        self._ensure_started()
        self._runs += 1
        if self._recovery is not None:
            if self.backend == "process":
                self._poll_health()
            # Restarts happen *before* this batch's dispatch, so a
            # recovered shard re-homes its traffic (and drains its
            # buffer) starting with this run.
            self._recovery.on_run_start()
        caps = self._mirror_caps()
        batches = self._drain_and_partition()
        if self.backend == "thread":
            return self._run_thread(iterations, caps, batches)
        return self._run_process(iterations, caps, batches)

    def _mirror_caps(self):
        """Per-shard transmit-capacity mirrors: a shard-local device may
        hold at most (what it already holds) + (the real device's
        current ring room) — a downed or full real device blocks the
        shard's ToDevice exactly as it blocks the reference router's."""
        caps = []
        for shard_index in range(self.workers):
            local = {}
            for name in self._device_names:
                device = self.devices.get(name)
                room = device.tx_room() if device is not None else 0
                held = self._shard_transmitted_len(shard_index, name)
                local[name] = held + max(0, room)
            caps.append(local)
        return caps

    def _shard_transmitted_len(self, index, name):
        if self.backend == "thread":
            return len(self._shards[index].devices[name].transmitted)
        return self._shards[index].flushed[name]

    def _drain_and_partition(self):
        hasher = self.hasher
        dispatched = self._dispatched
        recovery = self._recovery
        degraded = recovery is not None and (
            recovery.down_indices()
            or recovery.benched_indices()
            or recovery.quarantined
        )
        batches = [[] for _ in range(self.workers)]
        for name in self._device_names:
            device = self.devices.get(name)
            if device is None:
                continue
            dequeue = device.rx_dequeue
            while True:
                frame = dequeue()
                if frame is None:
                    break
                index = hasher(frame)
                if degraded:
                    index = recovery.route_frame(index, name, frame)
                    if index is None:
                        continue  # buffered or dropped
                batches[index].append((name, frame))
                dispatched[index] += 1
        return batches

    def _redispatch(self, buffered):
        """Re-route a benched shard's buffered frames through the
        degraded policy (they re-steer — the shard is never coming
        back) and deliver them immediately.  Called by the recovery
        manager from :meth:`RecoveryManager.bench`."""
        recovery = self._recovery
        batches = {}
        for name, frame in buffered:
            index = recovery.route_frame(self.hasher(frame), name, frame)
            if index is None:
                continue
            batches.setdefault(index, []).append((name, frame))
            self._dispatched[index] += 1
        for index, batch in sorted(batches.items()):
            self._send_frames(index, batch)

    def _send_frames(self, index, batch):
        """Journal-then-send one frame batch to a live shard."""
        frames = ("frames", batch)
        self._journal_cmd(index, frames)
        if self.backend == "thread":
            self._queue_put(self._shards[index], frames)
        else:
            self._proc_send(self._shards[index], frames)

    def _deliver_buffered(self, index, buffered):
        """A recovered shard's buffered frames, delivered in arrival
        order (journaled — they are now part of the shard's history)."""
        self._send_frames(index, list(buffered))
        self._dispatched[index] += len(buffered)

    def _run_thread(self, iterations, caps, batches):
        recovery = self._recovery
        before = sum(shard.worked for shard in self._shards)
        for index, shard in enumerate(self._shards):
            if recovery is not None and recovery.is_down(index):
                # A down shard gets no mirror/run commands (and no
                # journal entries for them): nothing was dispatched to
                # it this batch, so replay reconstructs it exactly up
                # to its death point.
                continue
            mirror = ("mirror", caps[index])
            self._journal_cmd(index, mirror)
            for name, capacity in caps[index].items():
                shard.devices[name].tx_capacity = capacity
            if batches[index]:
                frames = ("frames", batches[index])
                self._journal_cmd(index, frames)
                if not self._queue_put(shard, frames):
                    continue
            run = ("run", iterations)
            self._journal_cmd(index, run)
            self._queue_put(shard, run)
        self._barrier()
        self._flush_thread()
        return max(0, sum(shard.worked for shard in self._shards) - before)

    def _flush_thread(self):
        recovery = self._recovery
        flushed = 0
        for shard in self._shards:
            if recovery is not None and recovery.is_down(shard.index):
                # Never flush a down shard's partial output: the dying
                # run may have stopped mid-batch, and replay regenerates
                # deterministic output past the flush cursor exactly
                # once.
                continue
            for name in self._device_names:
                frames = shard.devices[name].transmitted
                start = shard.flushed[name]
                if len(frames) > start:
                    self._deliver(name, frames[start:])
                    flushed += len(frames) - start
                    shard.flushed[name] = len(frames)
            if shard.meter is not None and self.meter is not None:
                summary = shard.meter.summary()
                self.meter.absorb(_meter_delta(summary, shard.meter_snapshot))
                shard.meter_snapshot = summary
        self._flushed_total += flushed

    def _deliver(self, name, frames):
        """Append shard output to the real device.  ``tx_enqueue`` keeps
        capacity/fault accounting honest; a refusal must still not lose
        the frame (it already left a shard's ring), so it lands on the
        transmitted list directly."""
        device = self.devices.get(name)
        for frame in frames:
            if not device.tx_enqueue(frame):
                device.transmitted.append(bytes(frame))

    def _run_process(self, iterations, caps, batches):
        from ..elements.devices import PollDevice

        recovery = self._recovery
        chunk = max(1, self.chunk_frames)
        total = sum(len(batch) for batch in batches)
        for index, shard in enumerate(self._shards):
            if recovery is not None and recovery.is_down(index):
                continue
            mirror = ("mirror", caps[index])
            self._journal_cmd(index, mirror)
            self._proc_send(shard, mirror)
        if total <= chunk:
            for index, shard in enumerate(self._shards):
                if recovery is not None and recovery.is_down(index):
                    continue
                if batches[index]:
                    frames = ("frames", batches[index])
                    self._journal_cmd(index, frames)
                    if not self._proc_send(shard, frames):
                        continue
                run = ("run", iterations)
                self._journal_cmd(index, run)
                self._proc_send(shard, run)
        else:
            # Pipeline: deliver each shard's frames in chunks with a
            # partial run after each, so workers execute while the
            # parent hashes and serializes the next chunk; a final full
            # run guarantees at least ``iterations`` passes after the
            # last frame arrives (the drain the caller sized).
            per_shard_chunk = max(PollDevice.BURST, chunk // self.workers)
            positions = [0] * self.workers
            spent = [0] * self.workers
            while True:
                progressed = False
                for index, shard in enumerate(self._shards):
                    batch = batches[index]
                    position = positions[index]
                    if position >= len(batch):
                        continue
                    if recovery is not None and recovery.is_down(index):
                        # Died mid-pipeline: the unsent remainder of its
                        # batch was never journaled, so it re-routes
                        # through the degraded policy instead of being
                        # lost.
                        positions[index] = len(batch)
                        self._dispatched[index] -= len(batch) - position
                        self._redispatch(batch[position:])
                        continue
                    progressed = True
                    part = batch[position : position + per_shard_chunk]
                    positions[index] = position + len(part)
                    frames = ("frames", part)
                    self._journal_cmd(index, frames)
                    if not self._proc_send(shard, frames):
                        continue
                    passes = len(part) // PollDevice.BURST + 1
                    spent[index] += passes
                    run = ("run", passes)
                    self._journal_cmd(index, run)
                    self._proc_send(shard, run)
                if not progressed:
                    break
            for index, shard in enumerate(self._shards):
                if recovery is not None and recovery.is_down(index):
                    continue
                run = ("run", max(1, iterations))
                self._journal_cmd(index, run)
                self._proc_send(shard, run)
        worked = self._sync_process()
        self._flush_process()
        return worked

    def _flush_process(self):
        recovery = self._recovery
        flushed = 0
        pending = []
        for shard in self._shards:
            if recovery is not None and recovery.is_down(shard.index):
                continue
            if self._proc_send(shard, ("collect",)):
                pending.append(shard)
        for shard in pending:
            reply = self._proc_recv(shard)
            if reply is None:
                continue
            fresh, meter = reply[1], reply[2]
            for name in self._device_names:
                frames = fresh.get(name)
                if frames:
                    self._deliver(name, frames)
                    shard.flushed[name] += len(frames)
                    flushed += len(frames)
            if meter is not None and self.meter is not None:
                self.meter.absorb(_meter_delta(meter, shard.meter_snapshot))
                shard.meter_snapshot = meter
        self._flushed_total += flushed

    # -- control-plane fan-out ---------------------------------------------

    def _control(self, cmd):
        """Fan one journaled control command out to every shard, at
        quiescence.  A down shard is journaled but not touched: the
        command reaches it through replay when it comes back (counted
        as a recommit)."""
        self._ensure_started()
        recovery = self._recovery
        if self.backend == "thread":
            self._barrier()
            for index, shard in enumerate(self._shards):
                self._journal_cmd(index, cmd)
                if recovery is not None and recovery.is_down(index):
                    recovery.note_recommitted()
                    continue
                shard.router = _apply_shard_control(
                    shard.router, shard.devices, cmd, divider=self._divider(index)
                )
        else:
            for index, shard in enumerate(self._shards):
                self._journal_cmd(index, cmd)
                if recovery is not None and recovery.is_down(index):
                    recovery.note_recommitted()
                    continue
                self._proc_send(shard, cmd)

    def find(self, name):
        """A fan-out proxy for the named element (None when the
        configuration has no such element) — control writes through it
        reach every shard."""
        if name not in self.graph.elements:
            return None
        return _FanoutElementProxy(self, name)

    def _fanout_insert(self, name, ip, ether):
        self._control(("insert", name, ip, ether))

    def bump_arp_epochs(self):
        """Invalidate every shard's baked ARP header guards; returns the
        per-shard element count (identical on every shard)."""
        self._ensure_started()
        bumped = sum(
            1
            for decl in self.graph.elements.values()
            if decl.class_name == "ARPQuerier"
        )
        self._control(("bump_epochs",))
        return bumped

    def force_deopt(self, reason="forced"):
        """Force every shard's adaptive engine back to tier 1; True when
        the profile runs adaptively (mirrors ``Router.force_deopt``)."""
        self._control(("deopt",))
        return self._profile.mode == "adaptive"

    def hotswap_all(self, new_graph):
        """Hot-swap every shard to ``new_graph`` (text or graph).  Each
        per-shard swap is transactional; a failure after some shards
        swapped rolls the finished ones back to the old configuration.
        Returns self (the sharded router's identity is stable)."""
        from ..core.toolchain import load_config, save_config

        if isinstance(new_graph, str):
            text = new_graph
        else:
            text = save_config(new_graph)
        self._ensure_started()
        if self.backend != "thread":
            self._control(("hotswap", text))
            self._set_graph(text)
            return self
        self._barrier()
        old_text = save_config(self.graph)
        live = self._live_shards()
        done = []
        try:
            for shard in live:
                shard.router = _apply_shard_control(
                    shard.router,
                    shard.devices,
                    ("hotswap", text),
                    divider=self._divider(shard.index),
                )
                done.append(shard)
        except Exception:
            for shard in done:
                shard.router = _apply_shard_control(
                    shard.router,
                    shard.devices,
                    ("hotswap", old_text),
                    divider=self._divider(shard.index),
                )
            raise
        recovery = self._recovery
        for index in range(self.workers):
            self._journal_cmd(index, ("hotswap", text))
            if recovery is not None and recovery.is_down(index):
                recovery.note_recommitted()
        self._set_graph(text)
        return self

    def _set_graph(self, text):
        from ..core.toolchain import load_config

        graph = load_config(text, "<shard-graph>")
        if graph.element_classes:
            from ..core.flatten import flatten

            graph = flatten(graph)
        self.graph = graph
        self._device_names = _device_names_of(graph, self.devices)

    def apply_update(self, update):
        """Install one control-plane update on *every* shard
        transactionally.

        Pure-data deltas use two-phase commit: phase one stages the
        parsed, validated new tables on every shard (no mutation);
        only when every shard staged cleanly does phase two commit them
        all — a rejection anywhere leaves every shard serving the old
        tables.  Structural deltas hot-swap shard by shard with
        rollback on failure.  Returns shard 0's
        :class:`~repro.elements.hotswap.SwapReport`."""
        self._ensure_started()
        self._updates += 1
        if self.backend == "process":
            return self._apply_update_process(update)
        from ..control import ControlPlane

        self._barrier()
        if self._divider(0) is not None:
            return self._apply_update_divided(update)
        live = self._live_shards()
        planes = [ControlPlane(shard.router) for shard in live]
        delta, new_graph = planes[0].resolve(update)
        if delta.empty:
            return planes[0].apply(delta)
        text = self._update_text(update, delta, new_graph)
        if not delta.structural:
            staged = []
            for plane in planes:
                batch = plane.stage_patch(delta)
                if batch is None:
                    break
                staged.append(batch)
            if len(staged) == len(planes):
                self._fire_commit_hook()
                report = None
                for plane, batch in zip(planes, staged):
                    committed = plane.commit_patch(batch, delta)
                    if report is None:
                        report = committed
                self._journal_update(text)
                return report
        # Structural (or not patchable in place): per-shard transactional
        # swaps, rolled back together on failure.
        from ..core.toolchain import save_config

        old_text = save_config(self.graph)
        done = []
        report = None
        try:
            for position, plane in enumerate(planes):
                committed = plane.apply(update)
                done.append(position)
                if report is None:
                    report = committed
        except Exception:
            for position in done:
                ControlPlane(planes[position].router).apply(old_text)
                live[position].router = planes[position].router
            raise
        for position, plane in enumerate(planes):
            live[position].router = plane.router
        self._journal_update(text)
        self._set_graph(text)
        return report

    def _live_shards(self):
        """The shards an update can reach right now; raises when the
        whole plane is down."""
        recovery = self._recovery
        if recovery is None:
            return list(self._shards)
        live = [
            shard
            for shard in self._shards
            if not recovery.is_down(shard.index)
        ]
        if not live:
            raise RecoveryError("every shard is down; nothing to update")
        return live

    def _journal_update(self, text):
        """Journal a committed update to *every* shard — down shards
        included, so replay re-commits it the moment they return."""
        recovery = self._recovery
        for index in range(self.workers):
            self._journal_cmd(index, ("update", text))
            if recovery is not None and recovery.is_down(index):
                recovery.note_recommitted()

    def _fire_commit_hook(self):
        """The fault injector's window between "every shard staged"
        and "first shard committed" — where a ``worker_kill`` with
        ``phase="commit"`` lands."""
        injector = self.fault_injector
        hook = getattr(injector, "on_commit_phase", None)
        if hook is not None:
            hook(self._updates)

    def _update_text(self, update, delta, new_graph):
        """The update as configuration text (the journal's replayable
        form), materializing the delta against the live graph when the
        caller passed a bare GraphDelta."""
        from ..core.toolchain import save_config

        if isinstance(update, str):
            return update
        if new_graph is None:
            new_graph = delta.apply_to(self.graph)
        return save_config(new_graph)

    def _apply_update_divided(self, update):
        """Control-plane update under divide-capacity mode (thread
        backend): the undivided update is the journaled source of truth,
        but every shard must install its *divided* view, so the shared
        in-place staging path (which would diff undivided capacities
        against divided live queues) is skipped in favor of per-shard
        transactional applies with divided rollback."""
        from ..control import ControlPlane
        from ..core.toolchain import load_config, save_config
        from ..graph.diff import GraphDelta

        if isinstance(update, str):
            new_graph = load_config(update, "<shard-update>")
        elif isinstance(update, GraphDelta):
            new_graph = update.apply_to(self.graph)
        else:
            new_graph = update
        text = save_config(new_graph)
        old_text = save_config(self.graph)
        live = self._live_shards()
        planes = [ControlPlane(shard.router) for shard in live]
        done = []
        report = None
        try:
            for position, plane in enumerate(planes):
                committed = plane.apply(self._divider(live[position].index)(new_graph))
                done.append(position)
                if report is None:
                    report = committed
        except Exception:
            old_graph = load_config(old_text, "<shard-rollback>")
            for position in done:
                ControlPlane(planes[position].router).apply(
                    self._divider(live[position].index)(old_graph)
                )
                live[position].router = planes[position].router
            raise
        for position, plane in enumerate(planes):
            live[position].router = plane.router
        self._journal_update(text)
        self._set_graph(text)
        return report

    def _apply_update_process(self, update, _retry=False):
        from ..control import ControlPlaneError

        recovery = self._recovery
        delta = None
        new_graph = None
        if isinstance(update, str):
            text = update
        else:
            from ..graph.diff import GraphDelta, diff_graphs

            if isinstance(update, GraphDelta):
                delta, new_graph = update, None
            else:
                delta, new_graph = diff_graphs(self.graph, update), update
            text = self._update_text(update, delta, new_graph)
        if recovery is not None:
            self._poll_health()
        live = self._live_shards()
        prepare = recovery.config.prepare_timeout if recovery is not None else None
        # Phase one: stage on every live shard, bounded by the prepare
        # timeout — a worker that dies or hangs mid-stage must not wedge
        # the whole plane's control path.
        staged = []
        verdicts = []
        for shard in live:
            if self._proc_send(shard, ("update_stage", text)):
                staged.append(shard)
        for shard in staged:
            verdict = self._proc_recv(shard, timeout=prepare)
            if verdict is not None:
                verdicts.append((shard, verdict))
        if recovery is not None and len(verdicts) < len(live):
            # Someone died during stage: abort the survivors, bring the
            # dead back (their journals have no trace of this update),
            # and run the whole update once more on the full plane.
            for shard, _verdict in verdicts:
                self._proc_send(shard, ("update_abort",))
            return self._retry_update_process(update, _retry)
        rejected = [(s, v) for s, v in verdicts if v[1] == "rejected"]
        if rejected:
            for shard, _verdict in verdicts:
                self._proc_send(shard, ("update_abort",))
            raise ControlPlaneError(rejected[0][1][2])
        if all(v[1] == "empty" for _s, v in verdicts):
            from ..elements.hotswap import SwapReport

            return SwapReport("no-op", profile=self._profile.label)
        if all(v[1] == "ok" for _s, v in verdicts):
            self._fire_commit_hook()
            committed = []
            lost = False
            for shard, _verdict in verdicts:
                if self._proc_send(shard, ("update_commit",)):
                    committed.append(shard)
                else:
                    lost = True
            confirmed = []
            for shard in committed:
                if self._proc_recv(shard, timeout=prepare) is not None:
                    confirmed.append(shard)
                else:
                    lost = True
            if lost:
                # Phase two broke: a worker died between stage and
                # commit (or mid-commit).  Roll the confirmed survivors
                # back to the old tables, restore the dead, and retry
                # the update once against the whole plane.
                self._rollback_committed(confirmed)
                return self._retry_update_process(update, _retry)
            self._journal_update(text)
            from ..elements.hotswap import SwapReport

            report = SwapReport("in-place", profile=self._profile.label)
            report.elements_patched = len(
                delta.changed if delta is not None else ()
            )
            return report
        # Structural somewhere: full per-shard apply (each shard's
        # ControlPlane is transactional on its own).
        for shard, _verdict in verdicts:
            self._proc_send(shard, ("update_abort",))
            self._proc_send(shard, ("update", text))
        self._sync_process()
        self._journal_update(text)
        self._set_graph(text)
        from ..elements.hotswap import SwapReport

        return SwapReport("scoped-swap", profile=self._profile.label)

    def _rollback_committed(self, shards):
        """Mid-commit failure: surviving shards that already committed
        re-apply the *old* configuration, so every live shard serves
        the same tables while the dead one recovers."""
        from ..core.toolchain import save_config

        old_text = save_config(self.graph)
        pending = []
        for shard in shards:
            if self._proc_send(shard, ("update", old_text)):
                pending.append(shard)
        for shard in pending:
            if self._proc_send(shard, ("sync",)):
                self._proc_recv(shard)

    def _retry_update_process(self, update, already_retried):
        """Force the dead shards back up (no backoff — the control
        plane is blocked on them) and re-run the update across the
        whole plane, once."""
        if self._recovery is None or already_retried:
            raise RecoveryError(
                "a worker died during a two-phase update and the retry "
                "also failed; the plane is inconsistent"
            )
        for index in list(self._recovery.down_indices()):
            self._recovery.attempt_restart(index, force=True)
        return self._apply_update_process(update, _retry=True)

    # -- worker faults -----------------------------------------------------

    def crash_worker(self, index):
        """Kill shard ``index`` and recover it *synchronously*: a fresh
        shard replays the journal — every frame batch, scheduler run,
        transmit mirror, and control op since birth — reconstructing
        byte-identical state (everything in the pipeline is
        deterministic).  The fault injector's ``worker_crash`` fault
        calls this; contrast :meth:`kill_worker`, which only kills and
        leaves detection and restart to the recovery manager."""
        self._ensure_started()
        index = index % self.workers
        if not self._journal_enabled:
            raise RuntimeError(
                "worker_crash needs the command journal; build the "
                "ShardedRouter with journal=True or attach a fault injector "
                "before the first operation"
            )
        self._crashes += 1
        self._revive_shard(index)

    def kill_worker(self, index):
        """Kill shard ``index`` and walk away — the self-healing path's
        entry point (``worker_kill`` faults).  Detection happens at the
        next health seam; restart follows the backoff schedule.
        Requires a recovery policy on the profile."""
        self._ensure_started()
        index = index % self.workers
        if self._recovery is None:
            raise RecoveryError(
                "worker_kill needs a recovery policy on the profile "
                "(ExecutionProfile.with_recovery); use worker_crash for "
                "synchronous journal-replay recovery without one"
            )
        if self._recovery.is_down(index):
            return
        self._recovery.note_killed(index)
        shard = self._shards[index]
        if self.backend == "thread":
            shard.queue.put(("die",), timeout=1.0)
        elif shard.process is not None and shard.process.is_alive():
            shard.process.kill()

    def hang_worker(self, index, seconds=30.0):
        """Wedge shard ``index`` (``worker_hang`` faults): the worker
        sleeps instead of progressing, so the watchdog/heartbeat
        machinery — not a crash — has to find it.  Not journaled: a
        hang is transient wall-clock behavior, not shard history."""
        self._ensure_started()
        index = index % self.workers
        if self._recovery is None:
            raise RecoveryError(
                "worker_hang needs a recovery policy on the profile "
                "(ExecutionProfile.with_recovery)"
            )
        if self._recovery.is_down(index):
            return
        self._recovery.note_killed(index)
        cmd = ("hang", float(seconds))
        shard = self._shards[index]
        if self.backend == "thread":
            shard.queue.put(cmd, timeout=1.0)
        else:
            self._proc_send(shard, cmd)

    def arm_poison(self, frame):
        """Arm a poison frame (``worker_poison`` faults) on every
        shard: processing it kills the worker, deterministically —
        journaled, so replay re-dies on it until quarantine strips it
        and records the repro."""
        self._ensure_started()
        if not self._journal_enabled:
            raise RuntimeError(
                "worker_poison needs the command journal; attach a fault "
                "injector or a recovery policy before the first operation"
            )
        data = bytes(frame)
        cmd = ("poison", data)
        if self.backend == "thread":
            self._barrier()
            for index, shard in enumerate(self._shards):
                self._journal_cmd(index, cmd)
                if self._recovery is not None and self._recovery.is_down(index):
                    continue
                shard.poisons.add(data)
        else:
            for index, shard in enumerate(self._shards):
                self._journal_cmd(index, cmd)
                if self._recovery is not None and self._recovery.is_down(index):
                    continue
                self._proc_send(shard, cmd)

    # -- restart + journal replay ------------------------------------------

    def _revive_shard(self, index, singly=False):
        """Rebuild one shard and replay its journal.  The recovery
        manager's restart mechanism (and ``crash_worker``'s recovery
        half).  Raises :class:`ReplayFrameError` when the replay died
        at an exactly attributed frame, so the caller can quarantine
        it."""
        if self.backend == "thread":
            self._revive_thread(index)
        else:
            self._revive_process(index, singly=singly)
        self._replays += 1

    def _revive_thread(self, index):
        shard = self._shards[index]
        # Retire whatever worker is attached — gracefully when alive
        # (manual crash_worker), by the generation fence when hung.
        shard.generation += 1
        thread = shard.thread
        if thread is not None and thread.is_alive():
            shard.queue.put(("stop",), timeout=0.1)
            thread.join(timeout=0.5 if self._recovery is not None else 10)
        shard.router, shard.devices, shard.meter = self._build_shard_router(index)
        shard.worked = 0
        shard.error = None
        shard.dead = False
        shard.poisons = set()
        self._replay_thread_journal(shard, index)
        # Replayed work was genuinely re-executed, but its meter charges
        # were already absorbed before the crash: re-baseline so only
        # post-recovery work flows to the parent meter.  The flush
        # cursor (``shard.flushed``) is deliberately preserved: replay
        # regenerated *all* output, and only frames past the cursor
        # were never delivered.
        if shard.meter is not None:
            shard.meter_snapshot = shard.meter.summary()
        shard.queue = SPSCQueue(self._queue_capacity)
        self._spawn_thread_worker(shard)

    def _replay_thread_journal(self, shard, index):
        """Re-execute the journal against the freshly built shard,
        parent-side, attributing any death to the exact frame."""
        divider = self._divider(index)
        for position, cmd in enumerate(self._journals[index]):
            op = cmd[0]
            if op == "frames":
                for fpos, (name, frame) in enumerate(cmd[1]):
                    if shard.poisons and bytes(frame) in shard.poisons:
                        raise ReplayFrameError(
                            index, name, frame, (position, fpos),
                            "armed poison frame",
                        )
                    try:
                        shard.devices[name].receive_frame(frame)
                    except Exception as exc:  # noqa: BLE001 - attributed
                        raise ReplayFrameError(
                            index, name, frame, (position, fpos),
                            "%s: %s" % (type(exc).__name__, exc),
                        ) from exc
            elif op == "run":
                shard.router.run_tasks(cmd[1])
            elif op == "poison":
                shard.poisons.add(bytes(cmd[1]))
            else:
                shard.router = _apply_shard_control(
                    shard.router, shard.devices, cmd, divider=divider
                )

    def _revive_process(self, index, singly=False):
        """Respawn a process shard and resend its journal.  The fast
        path ships the whole journal and syncs once; ``singly`` replays
        command by command — frames one at a time — so a killer frame
        is attributed exactly (the slow path the manager falls back to
        after an unattributed batch-replay death)."""
        shard = self._shards[index]
        self._reap_process(shard, kill=True)
        self._spawn_process_shard(shard)
        journal = self._journals[index]
        if singly:
            for position, cmd in enumerate(journal):
                if cmd[0] == "frames":
                    for fpos, (name, frame) in enumerate(cmd[1]):
                        self._replay_send(
                            shard, ("frames", [(name, frame)]),
                            index, name, frame, (position, fpos),
                        )
                else:
                    self._replay_send(shard, cmd, index, None, b"", (position, 0))
        else:
            for cmd in journal:
                shard.conn.send(cmd)
        # The parent already consumed everything it flushed before the
        # crash; realign the worker's collect cursor so replayed frames
        # are not delivered twice.
        shard.conn.send(("set_flushed", dict(shard.flushed)))
        shard.conn.send(("sync",))
        reply = self._replay_reply(shard)
        if reply[2] is not None:
            raise RuntimeError(
                "shard %d replay failed: %s: %s" % (index, reply[2][0], reply[2][1])
            )
        shard.worked = 0
        # Deliver the replay's regenerated-but-unflushed output (the
        # dying run's frames, which the parent never collected) and
        # re-baseline the meter like the thread backend does.
        shard.conn.send(("collect",))
        collected = self._replay_reply(shard)
        for name in self._device_names:
            frames = collected[1].get(name)
            if frames:
                self._deliver(name, frames)
                shard.flushed[name] += len(frames)
                self._flushed_total += len(frames)
        if collected[2] is not None:
            shard.meter_snapshot = collected[2]

    def _replay_send(self, shard, cmd, index, name, frame, position):
        """One singly-replay step: send, sync, and convert any death
        into a frame-attributed :class:`ReplayFrameError`."""
        try:
            shard.conn.send(cmd)
            shard.conn.send(("sync",))
            reply = self._replay_reply(shard)
            if reply[2] is not None:
                raise RuntimeError("%s: %s" % (reply[2][0], reply[2][1]))
        except ReplayFrameError:
            raise
        except Exception as exc:  # noqa: BLE001 - attributed below
            if cmd[0] != "frames":
                raise
            raise ReplayFrameError(
                index, name, frame, position, "%s: %s" % (type(exc).__name__, exc)
            ) from exc

    def _replay_reply(self, shard):
        """Wait for a replay sync; bounded by the heartbeat window when
        self-healing (a hung replay must not wedge the restart path),
        blocking like the manual crash path otherwise."""
        if self._recovery is None:
            return shard.recv()
        timeout = max(10.0, self._recovery.config.heartbeat_timeout * 4)
        if not shard.conn.poll(timeout):
            raise RuntimeError("shard %d replay hung" % shard.index)
        return shard.conn.recv()

    def _strip_journal_frame(self, index, position):
        """Quarantine's surgical edit: remove one attributed frame from
        the journal (dropping its command when emptied), so the next
        replay runs clean."""
        cmd_pos, frame_pos = position
        journal = self._journals[index]
        frames = list(journal[cmd_pos][1])
        del frames[frame_pos]
        if frames:
            journal[cmd_pos] = ("frames", frames)
        else:
            del journal[cmd_pos]

    # -- observability -----------------------------------------------------

    def merged_counters(self):
        """Every element read handler, reconciled across shards: numeric
        values sum; non-numeric values report shard 0's."""
        self._ensure_started()
        recovery = self._recovery
        if self.backend == "thread":
            self._barrier()
            per_shard = []
            for shard in self._shards:
                if recovery is not None and recovery.is_down(shard.index):
                    continue
                values = {}
                for name, element in sorted(shard.router.elements.items()):
                    for handler, fn in sorted(element.read_handlers().items()):
                        value = fn()
                        if not isinstance(value, (int, float, str, bool, type(None))):
                            value = repr(value)
                        values["%s.%s" % (name, handler)] = value
                per_shard.append(values)
        else:
            per_shard = []
            pending = []
            for shard in self._shards:
                if recovery is not None and recovery.is_down(shard.index):
                    continue
                if self._proc_send(shard, ("counters",)):
                    pending.append(shard)
            for shard in pending:
                reply = self._proc_recv(shard)
                if reply is not None:
                    per_shard.append(reply[1])
        merged = {}
        for values in per_shard:
            for key, value in values.items():
                if isinstance(value, bool) or not isinstance(value, (int, float)):
                    merged.setdefault(key, value)
                else:
                    merged[key] = merged.get(key, 0) + value
        return merged

    def report(self):
        """A :class:`ShardReport` of the plane's lifetime so far (the
        last one captured is returned after :meth:`close`)."""
        if self.retired and self._final_report is not None:
            return self._final_report
        report = ShardReport()
        report.workers = self.workers
        report.backend = self.backend
        report.seed = self.hash_seed
        report.dispatched = list(self._dispatched) or [0] * self.workers
        report.flushed = self._flushed_total
        report.runs = self._runs
        report.updates = self._updates
        report.crashes = self._crashes
        report.replays = self._replays
        recovery = self._recovery
        if self._started and self.backend == "thread":
            self._barrier()
            report.queue_high_water = [s.queue.high_water for s in self._shards]
            for shard in self._shards:
                if recovery is not None and recovery.is_down(shard.index):
                    continue
                supervisor = shard.router.supervisor
                if supervisor is not None:
                    report.supervisors["shard-%d" % shard.index] = (
                        supervisor.report().as_dict()
                    )
        elif self._started:
            pending = []
            for shard in self._shards:
                if recovery is not None and recovery.is_down(shard.index):
                    continue
                if self._proc_send(shard, ("report",)):
                    pending.append(shard)
            for shard in pending:
                reply = self._proc_recv(shard)
                if reply is not None and reply[1] is not None:
                    report.supervisors["shard-%d" % shard.index] = reply[1]
        if recovery is not None:
            report.recovery = recovery.report().as_dict()
        if self.meter is not None:
            report.meter = self.meter.summary()
        return report

    # -- teardown ----------------------------------------------------------

    def close(self):
        """Stop every worker and release the plane.  Idempotent; the
        final :class:`ShardReport` stays readable via :meth:`report`."""
        if self.retired:
            return
        if self._started:
            try:
                self._final_report = self.report()
            except Exception:  # noqa: BLE001 - teardown must not raise
                self._final_report = None
            if self.backend == "thread":
                for shard in self._shards:
                    shard.generation += 1  # fence off hung workers
                    if shard.thread is not None and shard.thread.is_alive():
                        try:
                            shard.queue.put(("stop",), timeout=0.5)
                        except Exception:  # noqa: BLE001
                            pass
                for shard in self._shards:
                    if shard.thread is not None:
                        # A hung worker never joins; it is a daemon
                        # behind the generation fence, so don't wait.
                        shard.thread.join(timeout=1 if shard.dead else 10)
            else:
                for shard in self._shards:
                    if shard.conn is not None and shard.process is not None:
                        try:
                            if shard.process.is_alive():
                                shard.conn.send(("stop",))
                                if shard.conn.poll(5):
                                    shard.conn.recv()
                        except Exception:  # noqa: BLE001
                            pass
                    self._reap_process(shard, kill=True)
        if self._cache_path:
            try:
                os.unlink(self._cache_path)
            except OSError:
                pass
            self._cache_path = None
        self.retired = True

    def retire(self):
        """Decommission (hot-swap parity with ``Router.retire``)."""
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:  # noqa: BLE001
            pass
